//! Offline stand-in for the `crossbeam` crate, backed by `std::thread`.
//!
//! Only the surface this workspace uses is provided:
//! `crossbeam::thread::scope(|s| { s.spawn(|_| ...) })` returning a
//! `Result`, with join handles whose `join()` reports worker panics.
//! Since Rust 1.63 the standard library has scoped threads, so the shim
//! is a thin adapter that keeps crossbeam's closure signature (the spawn
//! closure receives the scope, allowing nested spawns).

pub mod thread {
    /// A scope in which threads borrowing local data can be spawned.
    ///
    /// `Copy` so it can be smuggled into spawned closures by value,
    /// which is how the crossbeam signature (`FnOnce(&Scope) -> T`) is
    /// reproduced on top of `std::thread::Scope`.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish; `Err` carries the panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker. The closure receives the scope itself (so it
        /// can spawn further workers), matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Run `f` with a thread scope; all spawned workers are joined before
    /// this returns. Unlike crossbeam, a panicking worker that was joined
    /// by `f` itself does not poison the scope; an *unjoined* panicking
    /// worker propagates the panic (std semantics) rather than returning
    /// `Err` — every call site in this workspace joins its handles.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_borrowing_workers() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let n = crate::thread::scope(|s| {
            let outer = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21);
                inner.join().unwrap() * 2
            });
            outer.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn worker_panic_surfaces_in_join() {
        let caught = crate::thread::scope(|s| {
            let h = s.spawn(|_| -> u32 { panic!("worker died") });
            h.join().is_err()
        })
        .unwrap();
        assert!(caught);
    }
}
