//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The workspace builds in environments with no crates.io access, so the
//! external locks are replaced by thin wrappers over the standard library
//! that reproduce the parking_lot API surface actually used here:
//! `Mutex::lock`, `RwLock::read` / `RwLock::write` — all infallible.
//! Poisoning (which parking_lot does not have) is deliberately swallowed
//! by recovering the inner guard, so panic-in-critical-section behaves
//! like the real crate rather than cascading `PoisonError`s.

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's infallible `lock()`.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

/// A reader-writer lock with parking_lot's infallible `read()`/`write()`.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poison_is_swallowed() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
