//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The workspace builds with no crates.io access, so the pieces of rand
//! it actually uses are reimplemented here: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! `gen`, `gen_bool` and `gen_range` over integer and float ranges.
//!
//! `StdRng` is SplitMix64 — not cryptographic, but statistically solid
//! for the synthetic-trace generation and property tests in this repo,
//! and fully deterministic for a given seed (which is all the callers
//! rely on; they never persist streams across versions).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]`.
///
/// A single blanket [`SampleRange`] impl per range shape hangs off this
/// trait — mirroring real rand's structure, which is what lets the
/// compiler unify unsuffixed literals in `gen_range(2..20)` with the
/// type demanded by the surrounding expression.
pub trait SampleUniform: Copy {
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}
sample_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// User-facing extension methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        <f64 as Standard>::sample(self) < p
    }

    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(0..=0u32);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn uniformity_is_plausible() {
        // Chi-square-ish sanity: 16 buckets over u64 space stay within
        // ±10% of expected occupancy on 160k draws.
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 16];
        for _ in 0..160_000 {
            buckets[(rng.gen::<u64>() >> 60) as usize] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "bucket={b}");
        }
    }
}
