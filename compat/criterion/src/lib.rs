//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds with no crates.io access, so the benchmark
//! harness API its `[[bench]]` targets use is reimplemented here:
//! `Criterion`, `benchmark_group` with `sample_size` / `throughput` /
//! `bench_function` / `bench_with_input` / `finish`, `Bencher::iter` and
//! `iter_with_setup`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical analysis, each benchmark runs a
//! fixed warm-up plus `sample_size` timed iterations and prints the
//! median and minimum per-iteration wall time — enough to compare
//! codecs or frameworks locally without any external dependency.

use std::fmt;
use std::time::{Duration, Instant};

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Declared workload size, echoed in the report.
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Times one benchmark routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iterations: usize,
}

impl Bencher {
    fn run(iterations: usize) -> Self {
        Self {
            samples: Vec::with_capacity(iterations),
            iterations,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    pub fn iter_with_setup<S, O, Setup, Routine>(&mut self, mut setup: Setup, mut routine: Routine)
    where
        Setup: FnMut() -> S,
        Routine: FnMut(S) -> O,
    {
        black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str, throughput: Option<&Throughput>) {
        if self.samples.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let rate = match throughput {
            Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
                let mbps = *n as f64 / 1e6 / median.as_secs_f64();
                format!("  {mbps:>10.1} MB/s")
            }
            Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
                let eps = *n as f64 / median.as_secs_f64();
                format!("  {eps:>10.0} elem/s")
            }
            _ => String::new(),
        };
        println!("{label:<48} median {:>12?}  min {:>12?}{rate}", median, min);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        let mut bencher = Bencher::run(self.sample_size);
        f(&mut bencher);
        bencher.report(&label, self.throughput.as_ref());
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        let mut bencher = Bencher::run(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&label, self.throughput.as_ref());
        self
    }

    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::run(20);
        f(&mut bencher);
        bencher.report(id, None);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher::run(5);
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.samples.len(), 5);
        assert_eq!(calls, 6); // warm-up + samples

        let mut b = Bencher::run(3);
        b.iter_with_setup(|| vec![1u8; 64], |v| v.len());
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2).throughput(Throughput::Bytes(1024));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::from_parameter("x"), &41u64, |b, &n| {
            b.iter(|| n + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
