//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds with no crates.io access, so the property-testing
//! surface its tests use is reimplemented here: the `proptest!`,
//! `prop_compose!`, `prop_oneof!`, `prop_assert!` and `prop_assert_eq!`
//! macros, `Strategy` with `prop_map`, `Just`, `any::<T>()`, numeric
//! ranges and tuples as strategies, string strategies from a regex-like
//! pattern, and `proptest::collection::vec`.
//!
//! Semantics differ from real proptest in two deliberate ways: failing
//! cases are *not* shrunk (the failing input is printed as-is), and the
//! RNG seed is derived from the test name, so runs are deterministic.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Per-test configuration (only case count is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest};
}

/// Run each embedded `#[test]` function over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Compose named strategies into a derived-value strategy.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident ($($param:ident : $pty:ty),* $(,)?)
        ($($arg:ident in $strat:expr),* $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(
                move |rng: &mut $crate::test_runner::TestRng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), rng);)*
                    $body
                },
            )
        }
    };
}

/// Uniform choice between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new()$(.or($strat))+
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}
