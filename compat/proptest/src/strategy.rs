//! Value-generation strategies: numeric ranges, `Just`, `any`, tuples,
//! mapped strategies, unions (`prop_oneof!`) and regex-like string
//! patterns.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for producing values of `Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A strategy derived from another by a mapping function.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy wrapping a sampling closure (used by `prop_compose!`).
pub struct FnStrategy<F>(F);

impl<F> FnStrategy<F> {
    pub fn new(f: F) -> Self {
        Self(f)
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform union of same-valued strategies (built by `prop_oneof!`).
#[allow(clippy::type_complexity)]
pub struct OneOf<T> {
    arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>,
}

impl<T> OneOf<T> {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self { arms: Vec::new() }
    }

    pub fn or<S>(mut self, strategy: S) -> Self
    where
        S: Strategy<Value = T> + 'static,
    {
        self.arms.push(Box::new(move |rng| strategy.sample(rng)));
        self
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

/// Types with a canonical whole-domain strategy, see [`any`].
pub trait Arbitrary: Sized {
    fn generate(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn generate(rng: &mut TestRng) -> Self {
                // Bias toward the classic boundary values so tests see
                // them early, like real proptest's edge weighting.
                match rng.below(16) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn generate(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Whole-domain strategy for `T` (with boundary-value bias for integers).
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::generate(rng)
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
range_strategy_float!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// One parsed element of a string pattern: a character source plus a
/// repetition count range.
struct PatternPiece {
    atom: Atom,
    min: usize,
    max: usize,
}

enum Atom {
    /// `[a-z0-9_.-]`: inclusive character ranges (literals are 1-char ranges).
    Class(Vec<(char, char)>),
    /// `.`: any printable ASCII character.
    AnyChar,
    Literal(char),
}

/// Parse the regex subset used by the workspace's tests: literals,
/// `.`, `[...]` classes with ranges, `\x` escapes, and the repetition
/// suffixes `{n}`, `{m,n}`, `?`, `*`, `+`.
fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::AnyChar
            }
            '\\' => {
                i += 1;
                let c = *chars.get(i).expect("dangling escape in pattern");
                i += 1;
                Atom::Literal(c)
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    // `x-y` is a range unless `-` is the class's last char.
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // consume ']'
                Atom::Class(ranges)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated repetition")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => {
                        let lo = lo.trim().parse().expect("bad repetition bound");
                        let hi = if hi.trim().is_empty() {
                            lo + 16
                        } else {
                            hi.trim().parse().expect("bad repetition bound")
                        };
                        (lo, hi)
                    }
                    None => {
                        let n = body.trim().parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        pieces.push(PatternPiece { atom, min, max });
    }
    pieces
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::AnyChar => char::from_u32(rng.usize_in(0x20, 0x7e) as u32).unwrap(),
        Atom::Class(ranges) => {
            let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
            char::from_u32(rng.usize_in(lo as usize, hi as usize) as u32)
                .expect("class range crosses a surrogate gap")
        }
    }
}

/// String patterns act as strategies, e.g. `"[a-z][a-z0-9_]{0,8}"`.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let count = rng.usize_in(piece.min, piece.max);
            for _ in 0..count {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(0xBEEF)
    }

    #[test]
    fn ranges_and_just_and_map() {
        let mut rng = rng();
        for _ in 0..200 {
            let v = (10u32..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-3i64..=3).sample(&mut rng);
            assert!((-3..=3).contains(&w));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
        assert_eq!(Just(7u8).sample(&mut rng), 7);
        let doubled = (1u32..5).prop_map(|v| v * 2).sample(&mut rng);
        assert!(doubled % 2 == 0 && (2..10).contains(&doubled));
    }

    #[test]
    fn any_hits_boundaries_eventually() {
        let mut rng = rng();
        let samples: Vec<i16> = (0..400).map(|_| any::<i16>().sample(&mut rng)).collect();
        assert!(samples.contains(&i16::MIN));
        assert!(samples.contains(&i16::MAX));
        assert!(samples.contains(&0));
    }

    #[test]
    fn tuples_compose() {
        let mut rng = rng();
        let (a, b) = (0u8..8, 0u16..100).sample(&mut rng);
        assert!(a < 8 && b < 100);
        let (x, y, z) = (0u8..2, Just(5i32), 0.0f64..1.0).sample(&mut rng);
        assert!(x < 2 && y == 5 && (0.0..1.0).contains(&z));
    }

    #[test]
    fn string_patterns_respect_shape() {
        let mut rng = rng();
        for _ in 0..200 {
            let phone = "[0-9]{4,8}".sample(&mut rng);
            assert!((4..=8).contains(&phone.len()), "{phone:?}");
            assert!(phone.bytes().all(|b| b.is_ascii_digit()));

            let ident = "[a-z][a-z0-9_]{0,8}".sample(&mut rng);
            assert!(!ident.is_empty() && ident.len() <= 9);
            assert!(ident.as_bytes()[0].is_ascii_lowercase());

            let mixed = "[A-Za-z0-9_.-]{1,12}".sample(&mut rng);
            assert!((1..=12).contains(&mixed.len()));
            assert!(mixed
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b"_.-".contains(&b)));

            let free = ".{0,200}".sample(&mut rng);
            assert!(free.len() <= 200);
            assert!(free.bytes().all(|b| (0x20..=0x7e).contains(&b)));
        }
    }

    #[test]
    fn oneof_only_yields_arm_values() {
        let mut rng = rng();
        let strat = OneOf::new().or(Just(1u8)).or(Just(2)).or(Just(3));
        let mut seen = [false; 4];
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((1..=3).contains(&v));
            seen[v as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
