//! Collection strategies: `proptest::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive length bounds for a generated collection.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `S` and length in `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_in(self.size.lo, self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_respects_size_forms() {
        let mut rng = TestRng::from_seed(4);
        for _ in 0..100 {
            assert_eq!(vec(any::<u8>(), 5usize).sample(&mut rng).len(), 5);
            let open = vec(any::<u8>(), 0..4).sample(&mut rng);
            assert!(open.len() < 4);
            let closed = vec(any::<u8>(), 2..=6).sample(&mut rng);
            assert!((2..=6).contains(&closed.len()));
        }
    }
}
