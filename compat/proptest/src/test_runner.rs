//! The deterministic RNG behind every strategy.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Wrapper around the workspace's deterministic `StdRng`, seeded from the
/// test name so every test gets an independent, reproducible stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(h)
    }

    pub fn from_seed(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }

    /// Uniform usize in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty size range {lo}..={hi}");
        lo + self.below((hi - lo + 1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn named_streams_are_stable_and_distinct() {
        let mut a1 = TestRng::for_test("alpha");
        let mut a2 = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("beta");
        let xs: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn bounds_hold() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let v = rng.usize_in(3, 5);
            assert!((3..=5).contains(&v));
        }
    }
}
