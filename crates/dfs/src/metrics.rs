//! Usage and traffic counters for the simulated filesystem.

use std::sync::atomic::{AtomicU64, Ordering};

/// Point-in-time filesystem statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfsMetrics {
    /// Number of files in the namespace.
    pub n_files: u64,
    /// Number of live blocks.
    pub n_blocks: u64,
    /// Sum of file lengths (what `du` on HDFS reports pre-replication).
    pub logical_bytes: u64,
    /// Bytes across all datanode replicas (logical × replication).
    pub physical_bytes: u64,
    /// Completed read operations.
    pub reads: u64,
    /// Completed write operations.
    pub writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Completed delete operations.
    pub deletes: u64,
    /// Logical bytes freed by deletes.
    pub bytes_deleted: u64,
    /// Replica blocks reclaimed from datanodes by deletes.
    pub replicas_freed: u64,
    /// Reads that failed mid-file after transferring some blocks.
    pub partial_reads: u64,
    /// Bytes actually transferred by failed reads before the error. Kept
    /// separate from `bytes_read` so complete-read accounting stays exact
    /// while chaos runs still see every byte that crossed the wire.
    pub bytes_read_partial: u64,
}

/// Internal atomic counters.
#[derive(Debug, Default)]
pub(crate) struct MetricsInner {
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    deletes: AtomicU64,
    bytes_deleted: AtomicU64,
    replicas_freed: AtomicU64,
    partial_reads: AtomicU64,
    bytes_read_partial: AtomicU64,
}

impl MetricsInner {
    pub(crate) fn record_read(&self, bytes: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// A read failed mid-file after moving `bytes` of block data.
    pub(crate) fn record_partial_read(&self, bytes: u64) {
        self.partial_reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read_partial.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_write(&self, bytes: u64, _replication: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_delete(&self, logical: u64, replicas: u64) {
        self.deletes.fetch_add(1, Ordering::Relaxed);
        self.bytes_deleted.fetch_add(logical, Ordering::Relaxed);
        self.replicas_freed.fetch_add(replicas, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(
        &self,
        n_files: u64,
        n_blocks: u64,
        logical_bytes: u64,
        physical_bytes: u64,
    ) -> DfsMetrics {
        DfsMetrics {
            n_files,
            n_blocks,
            logical_bytes,
            physical_bytes,
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            bytes_deleted: self.bytes_deleted.load(Ordering::Relaxed),
            replicas_freed: self.replicas_freed.load(Ordering::Relaxed),
            partial_reads: self.partial_reads.load(Ordering::Relaxed),
            bytes_read_partial: self.bytes_read_partial.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsInner::default();
        m.record_read(10);
        m.record_read(20);
        m.record_write(5, 3);
        let s = m.snapshot(1, 2, 5, 15);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes_read, 30);
        assert_eq!(s.bytes_written, 5);
        assert_eq!(s.n_files, 1);
        assert_eq!(s.physical_bytes, 15);
    }

    #[test]
    fn partial_reads_count_separately() {
        let m = MetricsInner::default();
        m.record_read(100);
        m.record_partial_read(40);
        let s = m.snapshot(0, 0, 0, 0);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_read, 100);
        assert_eq!(s.partial_reads, 1);
        assert_eq!(s.bytes_read_partial, 40);
    }

    #[test]
    fn deletes_are_counted_not_dropped() {
        let m = MetricsInner::default();
        m.record_delete(1000, 3);
        m.record_delete(500, 2);
        let s = m.snapshot(0, 0, 0, 0);
        assert_eq!(s.deletes, 2);
        assert_eq!(s.bytes_deleted, 1500);
        assert_eq!(s.replicas_freed, 5);
    }
}
