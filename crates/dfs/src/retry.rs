//! Bounded exponential backoff for transient storage faults.
//!
//! Transient errors (RPC timeouts, brief node hiccups) are retried inside
//! the filesystem itself — callers only ever see an error once the policy's
//! attempt budget *and* deadline are both spent, mirroring the HDFS client
//! behaviour the paper's testbed relied on.

use std::time::Duration;

/// Retry policy applied to transient read/write faults.
///
/// Backoff for attempt `n` (0-based) is `base_backoff_us << n`, capped at
/// `max_backoff_us`. The whole operation additionally respects a total
/// `deadline_us` budget: once it is exceeded no further attempts are made
/// even if `max_attempts` is not yet reached. `deadline_us == 0` means
/// **no time budget** — only `max_attempts` bounds the operation (so
/// [`RetryPolicy::none`] is fail-fast through its single attempt, not
/// through a degenerate 0 µs deadline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per block operation (1 = no retries).
    pub max_attempts: u32,
    /// First backoff, microseconds.
    pub base_backoff_us: u64,
    /// Backoff cap, microseconds.
    pub max_backoff_us: u64,
    /// Total per-operation retry budget, microseconds (`0` = unbounded:
    /// attempts alone limit the operation).
    pub deadline_us: u64,
}

impl Default for RetryPolicy {
    /// Defaults tuned to the simulation's time scale: four attempts,
    /// 50 µs → 400 µs backoff, 50 ms deadline.
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff_us: 50,
            max_backoff_us: 2_000,
            deadline_us: 50_000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (fail-fast unit tests).
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base_backoff_us: 0,
            max_backoff_us: 0,
            deadline_us: 0,
        }
    }

    /// Backoff to sleep after a failed attempt `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let us = self
            .base_backoff_us
            .saturating_shl(attempt.min(32))
            .min(self.max_backoff_us);
        Duration::from_micros(us)
    }

    /// Is another attempt allowed after `attempt` attempts took `elapsed`?
    /// A zero `deadline_us` imposes no time bound (see the type docs).
    pub fn allows(&self, next_attempt: u32, elapsed: Duration) -> bool {
        if next_attempt >= self.max_attempts {
            return false;
        }
        self.deadline_us == 0 || elapsed < Duration::from_micros(self.deadline_us)
    }
}

/// `u64::checked_shl` that saturates instead of wrapping.
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        self.checked_shl(rhs).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff_us: 100,
            max_backoff_us: 500,
            deadline_us: 10_000,
        };
        assert_eq!(p.backoff(0), Duration::from_micros(100));
        assert_eq!(p.backoff(1), Duration::from_micros(200));
        assert_eq!(p.backoff(2), Duration::from_micros(400));
        assert_eq!(p.backoff(3), Duration::from_micros(500));
        assert_eq!(p.backoff(31), Duration::from_micros(500));
    }

    #[test]
    fn deadline_and_attempts_both_bound() {
        let p = RetryPolicy::default();
        assert!(p.allows(1, Duration::from_micros(10)));
        assert!(!p.allows(p.max_attempts, Duration::from_micros(10)));
        assert!(!p.allows(1, Duration::from_millis(60)));
    }

    #[test]
    fn none_policy_is_single_shot() {
        let p = RetryPolicy::none();
        assert!(!p.allows(1, Duration::ZERO));
        assert_eq!(p.backoff(0), Duration::ZERO);
    }

    /// Regression: `deadline_us = 0` used to be clamped to a 1 µs budget,
    /// silently denying retries a caller's `max_attempts` still allowed.
    /// Zero now means "no time budget".
    #[test]
    fn zero_deadline_means_unbounded_time_not_one_microsecond() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_backoff_us: 0,
            max_backoff_us: 0,
            deadline_us: 0,
        };
        // Well past the old accidental 1 µs budget: still allowed.
        assert!(p.allows(1, Duration::from_secs(3600)));
        assert!(p.allows(3, Duration::from_micros(2)));
        // Attempts remain the only bound.
        assert!(!p.allows(4, Duration::ZERO));
        // The single attempt of `none()` is spent before any retry, so
        // the unbounded deadline never grants one.
        assert!(!RetryPolicy::none().allows(1, Duration::from_nanos(1)));
    }
}
