//! Seeded, deterministic fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] models the failure modes an HDFS-class deployment
//! actually sees: transient read/write RPC errors, slow ("straggler")
//! replicas, silent at-rest block corruption (bit rot), and periodic
//! datanode crash/restart cycles. Every probabilistic decision is a pure
//! hash of `(seed, kind, block, datanode, attempt)`, so a chaos run with
//! a fixed seed injects *exactly* the same faults on every execution —
//! the property the `repro chaos` harness and its CI job rely on.
//!
//! The plan also owns a [`FaultStats`] block of counters covering both
//! the faults it injects and the defenses the filesystem mounts against
//! them (checksum mismatches detected, replica failovers, retries,
//! repairs). The same counts are mirrored into the global `obs` registry
//! under `dfs.fault.*` / `dfs.retry.*` so they show up in `--metrics-json`
//! dumps next to the PR-2 observability metrics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Fault-injection configuration. All probabilities are per-decision
/// (per replica read attempt, per replica write, per block).
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Seed of the deterministic decision stream.
    pub seed: u64,
    /// Probability a replica read attempt fails transiently (RPC timeout).
    pub transient_read: f64,
    /// Probability a replica write attempt fails transiently.
    pub transient_write: f64,
    /// Probability a block suffers silent corruption of one replica at
    /// write time (models bit rot on one disk; independent disks rarely
    /// rot the same block, so at most one replica per block is hit).
    pub corrupt_block: f64,
    /// Probability a replica read is served by a straggler.
    pub slow_replica: f64,
    /// Straggler service delay, microseconds.
    pub slow_us: u64,
    /// Kill one datanode every this many filesystem operations
    /// (0 disables the crash cycle).
    pub crash_period_ops: u64,
    /// Revive a killed datanode after this many further operations.
    pub crash_down_ops: u64,
}

impl FaultConfig {
    /// No faults at all (the plan becomes a pure counter block).
    pub fn none() -> Self {
        Self {
            seed: 0,
            transient_read: 0.0,
            transient_write: 0.0,
            corrupt_block: 0.0,
            slow_replica: 0.0,
            slow_us: 0,
            crash_period_ops: 0,
            crash_down_ops: 0,
        }
    }

    /// The `repro chaos` profile: ≥1% transient faults on both paths,
    /// 2% of blocks silently corrupted, occasional stragglers, and a
    /// rolling crash/restart cycle.
    pub fn chaos(seed: u64) -> Self {
        Self {
            seed,
            transient_read: 0.02,
            transient_write: 0.01,
            corrupt_block: 0.02,
            slow_replica: 0.01,
            slow_us: 200,
            crash_period_ops: 400,
            crash_down_ops: 150,
        }
    }
}

/// Kind tags keeping the decision streams independent.
const TAG_READ: u64 = 0x9E37_79B9_0000_0001;
const TAG_WRITE: u64 = 0x9E37_79B9_0000_0002;
const TAG_CORRUPT: u64 = 0x9E37_79B9_0000_0003;
const TAG_SLOW: u64 = 0x9E37_79B9_0000_0004;
const TAG_CRASH: u64 = 0x9E37_79B9_0000_0005;

/// SplitMix64 finalizer: a strong 64-bit mix.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hash(seed: u64, tag: u64, a: u64, b: u64, c: u64) -> u64 {
    mix(mix(mix(mix(seed ^ tag) ^ a) ^ b) ^ c)
}

/// `hash < p` with 53-bit precision.
fn decide(seed: u64, tag: u64, a: u64, b: u64, c: u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    let u = (hash(seed, tag, a, b, c) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    u < p
}

/// Counters for injected faults and the recovery machinery's reactions.
/// Lives on the [`FaultPlan`] so chaos runs can snapshot per-run numbers
/// without resetting the process-global `obs` registry.
#[derive(Debug, Default)]
pub struct FaultStats {
    pub transient_reads_injected: AtomicU64,
    pub transient_writes_injected: AtomicU64,
    pub corrupt_replicas_injected: AtomicU64,
    pub slow_reads_injected: AtomicU64,
    pub crashes_injected: AtomicU64,
    pub revivals: AtomicU64,
    /// Block reads whose CRC-32 did not match the namenode checksum.
    pub checksum_mismatches: AtomicU64,
    /// Reads served by a non-primary replica after an earlier one failed.
    pub read_failovers: AtomicU64,
    /// Backoff-then-retry rounds taken (read + write paths).
    pub retry_attempts: AtomicU64,
    /// Operations that succeeded only after at least one retry round.
    pub retry_successes: AtomicU64,
    /// Operations that ran out of retry budget.
    pub retries_exhausted: AtomicU64,
    /// Completed [`crate::Dfs::repair`] passes.
    pub repair_passes: AtomicU64,
}

/// Point-in-time copy of [`FaultStats`], comparable across runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStatsSnapshot {
    pub transient_reads_injected: u64,
    pub transient_writes_injected: u64,
    pub corrupt_replicas_injected: u64,
    pub slow_reads_injected: u64,
    pub crashes_injected: u64,
    pub revivals: u64,
    pub checksum_mismatches: u64,
    pub read_failovers: u64,
    pub retry_attempts: u64,
    pub retry_successes: u64,
    pub retries_exhausted: u64,
    pub repair_passes: u64,
}

impl FaultStats {
    pub fn snapshot(&self) -> FaultStatsSnapshot {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        FaultStatsSnapshot {
            transient_reads_injected: g(&self.transient_reads_injected),
            transient_writes_injected: g(&self.transient_writes_injected),
            corrupt_replicas_injected: g(&self.corrupt_replicas_injected),
            slow_reads_injected: g(&self.slow_reads_injected),
            crashes_injected: g(&self.crashes_injected),
            revivals: g(&self.revivals),
            checksum_mismatches: g(&self.checksum_mismatches),
            read_failovers: g(&self.read_failovers),
            retry_attempts: g(&self.retry_attempts),
            retry_successes: g(&self.retry_successes),
            retries_exhausted: g(&self.retries_exhausted),
            repair_passes: g(&self.repair_passes),
        }
    }
}

/// A crash currently in effect: (datanode, op count at which it revives).
#[derive(Debug, Clone, Copy)]
struct ActiveCrash {
    node: usize,
    revive_at: u64,
}

/// What a fault-plan tick asks the cluster to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CrashAction {
    Kill(usize),
    Revive(usize),
}

/// The seeded fault plan attached to a [`crate::Dfs`].
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    ops: AtomicU64,
    active_crash: Mutex<Option<ActiveCrash>>,
    pub(crate) stats: FaultStats,
}

impl FaultPlan {
    pub fn new(config: FaultConfig) -> Self {
        Self {
            config,
            ops: AtomicU64::new(0),
            active_crash: Mutex::new(None),
            stats: FaultStats::default(),
        }
    }

    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    pub fn stats(&self) -> FaultStatsSnapshot {
        self.stats.snapshot()
    }

    /// One filesystem operation elapsed: emit due crash/revive actions.
    /// Deterministic for a fixed seed and operation sequence (the chaos
    /// harness drives the cluster single-threaded).
    pub(crate) fn tick(&self, n_datanodes: usize) -> Vec<CrashAction> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        if self.config.crash_period_ops == 0 || n_datanodes < 2 {
            return Vec::new();
        }
        let mut actions = Vec::new();
        let mut active = self.active_crash.lock().unwrap();
        if let Some(crash) = *active {
            if op >= crash.revive_at {
                actions.push(CrashAction::Revive(crash.node));
                self.stats.revivals.fetch_add(1, Ordering::Relaxed);
                obs::inc("dfs.fault.revivals");
                *active = None;
            }
        }
        if active.is_none() && op.is_multiple_of(self.config.crash_period_ops) {
            let node = (hash(self.config.seed, TAG_CRASH, op, 0, 0) % n_datanodes as u64) as usize;
            actions.push(CrashAction::Kill(node));
            self.stats.crashes_injected.fetch_add(1, Ordering::Relaxed);
            obs::inc("dfs.fault.crashes");
            *active = Some(ActiveCrash {
                node,
                revive_at: op + self.config.crash_down_ops.max(1),
            });
        }
        actions
    }

    /// Does this replica read attempt fail transiently?
    pub(crate) fn transient_read(&self, block: u64, dn: usize, attempt: u32) -> bool {
        let hit = decide(
            self.config.seed,
            TAG_READ,
            block,
            dn as u64,
            u64::from(attempt),
            self.config.transient_read,
        );
        if hit {
            self.stats
                .transient_reads_injected
                .fetch_add(1, Ordering::Relaxed);
            obs::inc("dfs.fault.transient_reads");
        }
        hit
    }

    /// Does this replica write attempt fail transiently?
    pub(crate) fn transient_write(&self, block: u64, dn: usize, attempt: u32) -> bool {
        let hit = decide(
            self.config.seed,
            TAG_WRITE,
            block,
            dn as u64,
            u64::from(attempt),
            self.config.transient_write,
        );
        if hit {
            self.stats
                .transient_writes_injected
                .fetch_add(1, Ordering::Relaxed);
            obs::inc("dfs.fault.transient_writes");
        }
        hit
    }

    /// Which replica slot of this block (if any) is silently corrupted at
    /// write time. At most one replica per block rots, modelling
    /// independent per-disk bit rot.
    pub(crate) fn corrupt_replica_slot(&self, block: u64, replication: usize) -> Option<usize> {
        if replication == 0
            || !decide(
                self.config.seed,
                TAG_CORRUPT,
                block,
                0,
                0,
                self.config.corrupt_block,
            )
        {
            return None;
        }
        Some((hash(self.config.seed, TAG_CORRUPT, block, 1, 0) % replication as u64) as usize)
    }

    pub(crate) fn note_corruption_injected(&self) {
        self.stats
            .corrupt_replicas_injected
            .fetch_add(1, Ordering::Relaxed);
        obs::inc("dfs.fault.corrupt_replicas_injected");
    }

    /// Is this replica read served by a straggler? Returns the stall.
    pub(crate) fn slow_read(&self, block: u64, dn: usize) -> Option<std::time::Duration> {
        if decide(
            self.config.seed,
            TAG_SLOW,
            block,
            dn as u64,
            0,
            self.config.slow_replica,
        ) {
            self.stats
                .slow_reads_injected
                .fetch_add(1, Ordering::Relaxed);
            obs::inc("dfs.fault.slow_reads");
            Some(std::time::Duration::from_micros(self.config.slow_us))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = FaultPlan::new(FaultConfig::chaos(7));
        let b = FaultPlan::new(FaultConfig::chaos(7));
        for block in 0..200u64 {
            for dn in 0..4 {
                for attempt in 0..3 {
                    assert_eq!(
                        a.transient_read(block, dn, attempt),
                        b.transient_read(block, dn, attempt)
                    );
                    assert_eq!(
                        a.transient_write(block, dn, attempt),
                        b.transient_write(block, dn, attempt)
                    );
                }
            }
            assert_eq!(
                a.corrupt_replica_slot(block, 3),
                b.corrupt_replica_slot(block, 3)
            );
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(FaultConfig::chaos(1));
        let b = FaultPlan::new(FaultConfig::chaos(2));
        let hits = |p: &FaultPlan| {
            (0..2000u64)
                .filter(|&blk| p.transient_read(blk, 0, 0))
                .count()
        };
        let (ha, hb) = (hits(&a), hits(&b));
        // Both near 2% of 2000 = 40, but not the identical set.
        assert!(ha > 10 && ha < 100, "{ha}");
        assert!(hb > 10 && hb < 100, "{hb}");
        let set = |p: &FaultPlan| -> Vec<u64> {
            (0..2000u64)
                .filter(|&blk| p.transient_read(blk, 0, 0))
                .collect()
        };
        assert_ne!(set(&a), set(&b));
    }

    #[test]
    fn zero_probabilities_never_fire() {
        let plan = FaultPlan::new(FaultConfig::none());
        for block in 0..500u64 {
            assert!(!plan.transient_read(block, 0, 0));
            assert!(!plan.transient_write(block, 0, 0));
            assert!(plan.corrupt_replica_slot(block, 3).is_none());
            assert!(plan.slow_read(block, 0).is_none());
        }
        assert!(plan.tick(4).is_empty());
        assert_eq!(plan.stats(), FaultStatsSnapshot::default());
    }

    #[test]
    fn crash_cycle_kills_then_revives() {
        let mut config = FaultConfig::none();
        config.seed = 11;
        config.crash_period_ops = 10;
        config.crash_down_ops = 5;
        let plan = FaultPlan::new(config);
        let mut kills = 0;
        let mut revives = 0;
        let mut down: Option<usize> = None;
        for _ in 0..100 {
            for action in plan.tick(4) {
                match action {
                    CrashAction::Kill(n) => {
                        assert!(down.is_none(), "only one node down at a time");
                        down = Some(n);
                        kills += 1;
                    }
                    CrashAction::Revive(n) => {
                        assert_eq!(down, Some(n));
                        down = None;
                        revives += 1;
                    }
                }
            }
        }
        assert!(kills >= 5, "{kills}");
        assert!(revives >= kills - 1);
        let s = plan.stats();
        assert_eq!(s.crashes_injected, kills);
        assert_eq!(s.revivals, revives);
    }

    #[test]
    fn transient_faults_clear_with_attempts() {
        // For any block with a fault at attempt 0, some later attempt is
        // clean (probability of 6 consecutive independent 2% hits ~ 6e-11).
        let plan = FaultPlan::new(FaultConfig::chaos(3));
        for block in 0..2000u64 {
            if plan.transient_read(block, 0, 0) {
                assert!(
                    (1..6).any(|a| !plan.transient_read(block, 0, a)),
                    "block {block} faulted on all attempts"
                );
            }
        }
    }
}
