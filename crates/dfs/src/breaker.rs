//! Per-datanode circuit breakers for the replica read path.
//!
//! The retry policy absorbs *transient* faults one block operation at a
//! time; it has no memory across operations, so a datanode that fails
//! every verified read (flapping NIC, sick disk, long GC pause) is
//! still consulted — and paid for — by every subsequent read. The
//! breaker adds that memory: each datanode carries a small state
//! machine
//!
//! ```text
//! Closed ──K consecutive verified-read failures──▶ Open
//!   ▲                                               │
//!   │ probe succeeds                     cooldown of `open_ops`
//!   │                                    read operations elapses
//!   └────────── HalfOpen ◀───────────────────────────┘
//!                  │ probe fails
//!                  └─────────▶ Open (fresh cooldown)
//! ```
//!
//! While a node's breaker is open, [`Breaker::admits`] steers reads to
//! the remaining replicas without touching the sick node. When *every*
//! replica of a block is open the read reports the block unavailable —
//! upstream that degrades to a `Partial` answer with honest coverage,
//! never an error (the same contract crashes and corruption already
//! follow).
//!
//! Like [`crate::fault::FaultPlan`], the breaker measures time in
//! **operation counts**, never wall clock: the cooldown is "`open_ops`
//! subsequent read operations", so a seeded single-threaded drill
//! observes identical transitions on every run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Breaker tuning. [`BreakerConfig::disabled`] (the [`Default`]) keeps
/// every breaker permanently closed, preserving the exact pre-breaker
/// read path for existing workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive verified-read failures that open a node's breaker;
    /// `0` disables breakers entirely.
    pub failure_threshold: u32,
    /// Read operations the breaker stays open before admitting a
    /// half-open probe.
    pub open_ops: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

impl BreakerConfig {
    pub fn disabled() -> Self {
        Self {
            failure_threshold: 0,
            open_ops: 0,
        }
    }

    /// Trip after `failure_threshold` consecutive failures; probe again
    /// after `open_ops` read operations.
    pub fn new(failure_threshold: u32, open_ops: u64) -> Self {
        Self {
            failure_threshold,
            open_ops,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.failure_threshold > 0
    }
}

/// Observable breaker state of one datanode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

#[derive(Debug, Clone, Copy)]
enum State {
    Closed,
    /// Open until the read-op clock reaches `probe_at`.
    Open {
        probe_at: u64,
    },
    HalfOpen,
}

#[derive(Debug)]
struct NodeState {
    state: State,
    consecutive_failures: u32,
}

/// Transition and steering counters, mirrored into `dfs.breaker.*` obs
/// counters as they happen.
#[derive(Debug, Default)]
pub struct BreakerStats {
    /// Closed → Open transitions.
    pub trips: AtomicU64,
    /// Open → HalfOpen probe admissions.
    pub probes: AtomicU64,
    /// HalfOpen → Closed transitions (probe succeeded).
    pub recoveries: AtomicU64,
    /// HalfOpen → Open transitions (probe failed).
    pub reopens: AtomicU64,
    /// Replica consultations skipped because the node's breaker was open.
    pub skipped: AtomicU64,
}

/// Point-in-time copy of [`BreakerStats`], comparable across runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStatsSnapshot {
    pub trips: u64,
    pub probes: u64,
    pub recoveries: u64,
    pub reopens: u64,
    pub skipped: u64,
}

impl BreakerStats {
    pub fn snapshot(&self) -> BreakerStatsSnapshot {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        BreakerStatsSnapshot {
            trips: g(&self.trips),
            probes: g(&self.probes),
            recoveries: g(&self.recoveries),
            reopens: g(&self.reopens),
            skipped: g(&self.skipped),
        }
    }
}

/// The per-cluster breaker bank: one state machine per datanode, layered
/// *under* the [`crate::retry::RetryPolicy`] in the block read path.
#[derive(Debug)]
pub struct Breaker {
    config: BreakerConfig,
    /// Read-operation clock; advanced once per block read.
    ops: AtomicU64,
    nodes: Mutex<Vec<NodeState>>,
    pub(crate) stats: BreakerStats,
}

impl Breaker {
    pub fn new(config: BreakerConfig, n_datanodes: usize) -> Self {
        let nodes = (0..n_datanodes)
            .map(|_| NodeState {
                state: State::Closed,
                consecutive_failures: 0,
            })
            .collect();
        Self {
            config,
            ops: AtomicU64::new(0),
            nodes: Mutex::new(nodes),
            stats: BreakerStats::default(),
        }
    }

    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    pub fn stats(&self) -> BreakerStatsSnapshot {
        self.stats.snapshot()
    }

    /// Advance the read-operation clock (once per block read).
    pub(crate) fn tick(&self) {
        if self.config.is_enabled() {
            self.ops.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The observable state of one datanode's breaker. An open breaker
    /// whose cooldown has elapsed reports `HalfOpen` (the next read will
    /// be admitted as the probe).
    pub fn state(&self, dn: usize) -> BreakerState {
        if !self.config.is_enabled() {
            return BreakerState::Closed;
        }
        let nodes = self.nodes.lock().unwrap_or_else(|e| e.into_inner());
        match nodes[dn].state {
            State::Closed => BreakerState::Closed,
            State::Open { probe_at } => {
                if self.ops.load(Ordering::Relaxed) >= probe_at {
                    BreakerState::HalfOpen
                } else {
                    BreakerState::Open
                }
            }
            State::HalfOpen => BreakerState::HalfOpen,
        }
    }

    /// May a read consult this datanode right now? An open breaker whose
    /// cooldown has elapsed transitions to half-open and admits exactly
    /// this consultation as its probe.
    pub(crate) fn admits(&self, dn: usize) -> bool {
        if !self.config.is_enabled() {
            return true;
        }
        let mut nodes = self.nodes.lock().unwrap_or_else(|e| e.into_inner());
        match nodes[dn].state {
            State::Closed | State::HalfOpen => true,
            State::Open { probe_at } => {
                if self.ops.load(Ordering::Relaxed) >= probe_at {
                    nodes[dn].state = State::HalfOpen;
                    self.stats.probes.fetch_add(1, Ordering::Relaxed);
                    obs::inc("dfs.breaker.probes");
                    true
                } else {
                    self.stats.skipped.fetch_add(1, Ordering::Relaxed);
                    obs::inc("dfs.breaker.skipped");
                    false
                }
            }
        }
    }

    /// A verified read from `dn` succeeded: close a half-open breaker,
    /// clear the failure streak.
    pub(crate) fn record_success(&self, dn: usize) {
        if !self.config.is_enabled() {
            return;
        }
        let mut nodes = self.nodes.lock().unwrap_or_else(|e| e.into_inner());
        if matches!(nodes[dn].state, State::HalfOpen) {
            self.stats.recoveries.fetch_add(1, Ordering::Relaxed);
            obs::inc("dfs.breaker.recoveries");
        }
        nodes[dn].state = State::Closed;
        nodes[dn].consecutive_failures = 0;
    }

    /// A verified read from `dn` failed (transient fault, missing block
    /// or checksum mismatch): extend the streak; trip or re-open.
    pub(crate) fn record_failure(&self, dn: usize) {
        if !self.config.is_enabled() {
            return;
        }
        let now = self.ops.load(Ordering::Relaxed);
        let mut nodes = self.nodes.lock().unwrap_or_else(|e| e.into_inner());
        let node = &mut nodes[dn];
        match node.state {
            State::HalfOpen => {
                node.state = State::Open {
                    probe_at: now + self.config.open_ops,
                };
                self.stats.reopens.fetch_add(1, Ordering::Relaxed);
                obs::inc("dfs.breaker.reopens");
            }
            State::Closed => {
                node.consecutive_failures += 1;
                if node.consecutive_failures >= self.config.failure_threshold {
                    node.state = State::Open {
                        probe_at: now + self.config.open_ops,
                    };
                    node.consecutive_failures = 0;
                    self.stats.trips.fetch_add(1, Ordering::Relaxed);
                    obs::inc("dfs.breaker.trips");
                }
            }
            State::Open { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticks(b: &Breaker, n: u64) {
        for _ in 0..n {
            b.tick();
        }
    }

    #[test]
    fn disabled_breaker_admits_everything_forever() {
        let b = Breaker::new(BreakerConfig::disabled(), 2);
        for _ in 0..100 {
            b.tick();
            assert!(b.admits(0));
            b.record_failure(0);
        }
        assert_eq!(b.state(0), BreakerState::Closed);
        assert_eq!(b.stats(), BreakerStatsSnapshot::default());
    }

    #[test]
    fn trips_after_k_consecutive_failures_and_not_before() {
        let b = Breaker::new(BreakerConfig::new(3, 10), 2);
        b.tick();
        b.record_failure(0);
        b.record_failure(0);
        assert_eq!(b.state(0), BreakerState::Closed);
        assert!(b.admits(0));
        b.record_failure(0);
        assert_eq!(b.state(0), BreakerState::Open);
        assert!(!b.admits(0));
        assert_eq!(b.stats().trips, 1);
        assert!(b.stats().skipped >= 1);
        // The other node is untouched.
        assert_eq!(b.state(1), BreakerState::Closed);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = Breaker::new(BreakerConfig::new(3, 10), 1);
        b.tick();
        b.record_failure(0);
        b.record_failure(0);
        b.record_success(0);
        b.record_failure(0);
        b.record_failure(0);
        assert_eq!(b.state(0), BreakerState::Closed);
        assert_eq!(b.stats().trips, 0);
    }

    #[test]
    fn half_open_probe_success_closes() {
        let b = Breaker::new(BreakerConfig::new(2, 5), 1);
        b.tick();
        b.record_failure(0);
        b.record_failure(0);
        assert!(!b.admits(0));
        // Cooldown measured in read ops, not wall clock.
        ticks(&b, 5);
        assert_eq!(b.state(0), BreakerState::HalfOpen);
        assert!(b.admits(0), "cooldown elapsed: probe admitted");
        assert_eq!(b.stats().probes, 1);
        b.record_success(0);
        assert_eq!(b.state(0), BreakerState::Closed);
        assert_eq!(b.stats().recoveries, 1);
        assert!(b.admits(0));
    }

    #[test]
    fn half_open_probe_failure_reopens_with_fresh_cooldown() {
        let b = Breaker::new(BreakerConfig::new(2, 5), 1);
        b.tick();
        b.record_failure(0);
        b.record_failure(0);
        ticks(&b, 5);
        assert!(b.admits(0));
        b.record_failure(0);
        assert_eq!(b.state(0), BreakerState::Open);
        assert!(!b.admits(0));
        assert_eq!(b.stats().reopens, 1);
        // A fresh cooldown admits another probe.
        ticks(&b, 5);
        assert!(b.admits(0));
        b.record_success(0);
        assert_eq!(b.state(0), BreakerState::Closed);
    }

    #[test]
    fn failures_while_open_do_not_extend_the_cooldown() {
        let b = Breaker::new(BreakerConfig::new(1, 4), 1);
        b.tick();
        b.record_failure(0);
        assert_eq!(b.state(0), BreakerState::Open);
        b.record_failure(0); // no-op while open
        ticks(&b, 4);
        assert_eq!(b.state(0), BreakerState::HalfOpen);
    }

    #[test]
    fn op_clock_determinism_same_sequence_same_transitions() {
        let run = || {
            let b = Breaker::new(BreakerConfig::new(2, 3), 2);
            for i in 0..40u64 {
                b.tick();
                for dn in 0..2 {
                    if b.admits(dn) {
                        // Node 0 fails on a fixed pattern; node 1 is healthy.
                        if dn == 0 && i % 3 != 0 {
                            b.record_failure(dn);
                        } else {
                            b.record_success(dn);
                        }
                    }
                }
            }
            b.stats()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.trips >= 1);
    }
}
