//! A page-cache model: recently read files are served from memory without
//! paying the disk's bandwidth/seek cost.
//!
//! This is the mechanism behind the paper's T4 result (a nested-loop join
//! that re-reads its input per outer block is "much faster in SPATE where
//! the HDFS input streams are already compressed"): the compressed working
//! set fits in the page cache while the raw one keeps missing.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

struct CacheInner {
    map: HashMap<String, (Arc<Vec<u8>>, u64)>,
    bytes: usize,
    clock: u64,
    hits: u64,
    misses: u64,
}

/// LRU cache over whole files, bounded by total bytes.
pub struct PageCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl PageCache {
    /// `capacity == 0` disables caching entirely.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                bytes: 0,
                clock: 0,
                hits: 0,
                misses: 0,
            }),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look a file up, refreshing its recency.
    pub fn get(&self, path: &str) -> Option<Arc<Vec<u8>>> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(path) {
            Some((data, used)) => {
                *used = clock;
                let data = Arc::clone(data);
                inner.hits += 1;
                Some(data)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert a file read from disk, evicting least-recently-used entries
    /// until it fits. Files larger than the whole cache are not cached.
    pub fn put(&self, path: &str, data: Arc<Vec<u8>>) {
        if self.capacity == 0 || data.len() > self.capacity {
            return;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some((old, _)) = inner.map.remove(path) {
            inner.bytes -= old.len();
        }
        while inner.bytes + data.len() > self.capacity {
            let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let (evicted, _) = inner.map.remove(&victim).expect("victim exists");
            inner.bytes -= evicted.len();
        }
        inner.bytes += data.len();
        inner.map.insert(path.to_string(), (data, clock));
    }

    /// Drop a file (after delete/overwrite).
    pub fn invalidate(&self, path: &str) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some((old, _)) = inner.map.remove(path) {
            inner.bytes -= old.len();
        }
    }

    /// Empty the cache (like `echo 3 > /proc/sys/vm/drop_caches`); hit/miss
    /// counters are preserved.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.bytes = 0;
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }

    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![0xAB; n])
    }

    #[test]
    fn hit_after_put() {
        let c = PageCache::new(100);
        assert!(c.get("/a").is_none());
        c.put("/a", data(10));
        assert_eq!(c.get("/a").unwrap().len(), 10);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let c = PageCache::new(30);
        c.put("/a", data(10));
        c.put("/b", data(10));
        c.put("/c", data(10));
        // Touch /a so /b becomes the LRU victim.
        assert!(c.get("/a").is_some());
        c.put("/d", data(10));
        assert!(c.get("/b").is_none(), "/b should be evicted");
        assert!(c.get("/a").is_some());
        assert!(c.get("/c").is_some());
        assert!(c.get("/d").is_some());
        assert_eq!(c.resident_bytes(), 30);
    }

    #[test]
    fn oversized_files_bypass() {
        let c = PageCache::new(20);
        c.put("/big", data(21));
        assert!(c.get("/big").is_none());
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn zero_capacity_disables() {
        let c = PageCache::new(0);
        c.put("/a", data(1));
        assert!(c.get("/a").is_none());
        assert_eq!(c.stats(), (0, 0));
    }

    #[test]
    fn invalidate_and_replace() {
        let c = PageCache::new(100);
        c.put("/a", data(10));
        c.invalidate("/a");
        assert!(c.get("/a").is_none());
        c.put("/a", data(20));
        c.put("/a", data(5)); // replace shrinks accounting
        assert_eq!(c.resident_bytes(), 5);
    }
}
