//! Datanodes: in-memory block stores with failure injection.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// One simulated datanode.
pub struct DataNode {
    #[allow(dead_code)]
    id: usize,
    blocks: RwLock<HashMap<u64, Vec<u8>>>,
    bytes: AtomicU64,
    alive: AtomicBool,
}

impl DataNode {
    pub fn new(id: usize) -> Self {
        Self {
            id,
            blocks: RwLock::new(HashMap::new()),
            bytes: AtomicU64::new(0),
            alive: AtomicBool::new(true),
        }
    }

    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Crash the node: data is retained but unreachable until revived.
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
    }

    pub fn revive(&self) {
        self.alive.store(true, Ordering::Release);
    }

    /// Store (or replace — the repair path re-replicates over dropped
    /// corrupt copies) a block replica.
    pub fn put_block(&self, block_id: u64, data: Vec<u8>) {
        let len = data.len() as u64;
        let prev = self.blocks.write().insert(block_id, data);
        if let Some(old) = prev {
            self.bytes.fetch_sub(old.len() as u64, Ordering::Relaxed);
        }
        self.bytes.fetch_add(len, Ordering::Relaxed);
    }

    /// Does this node hold a replica (regardless of liveness)?
    pub fn has_block(&self, block_id: u64) -> bool {
        self.blocks.read().contains_key(&block_id)
    }

    /// Flip one bit of a stored replica in place (test hook for at-rest
    /// corruption). Returns whether the replica existed.
    pub fn corrupt_block(&self, block_id: u64) -> bool {
        let mut blocks = self.blocks.write();
        match blocks.get_mut(&block_id) {
            Some(data) if !data.is_empty() => {
                data[0] ^= 0x01;
                true
            }
            _ => false,
        }
    }

    /// Fetch a block if the node is alive and holds it.
    pub fn get_block(&self, block_id: u64) -> Option<Vec<u8>> {
        if !self.is_alive() {
            return None;
        }
        self.blocks.read().get(&block_id).cloned()
    }

    /// Remove a block; returns whether a replica was present.
    pub fn remove_block(&self, block_id: u64) -> bool {
        if let Some(data) = self.blocks.write().remove(&block_id) {
            self.bytes.fetch_sub(data.len() as u64, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Bytes currently stored (counted even while crashed — the disk still
    /// holds them).
    pub fn bytes_stored(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_lifecycle() {
        let dn = DataNode::new(0);
        assert!(dn.is_alive());
        dn.put_block(1, vec![1, 2, 3]);
        assert_eq!(dn.bytes_stored(), 3);
        assert_eq!(dn.get_block(1), Some(vec![1, 2, 3]));
        assert!(dn.remove_block(1));
        assert!(!dn.remove_block(1));
        assert_eq!(dn.bytes_stored(), 0);
        assert_eq!(dn.get_block(1), None);
    }

    #[test]
    fn crashed_nodes_hide_data_until_revival() {
        let dn = DataNode::new(3);
        dn.put_block(9, vec![9; 9]);
        dn.kill();
        assert!(!dn.is_alive());
        assert_eq!(dn.get_block(9), None);
        assert_eq!(dn.bytes_stored(), 9, "disk usage persists through crash");
        dn.revive();
        assert_eq!(dn.get_block(9), Some(vec![9; 9]));
    }

    #[test]
    fn replacing_a_block_keeps_byte_accounting_exact() {
        let dn = DataNode::new(1);
        dn.put_block(5, vec![0; 100]);
        dn.put_block(5, vec![1; 40]); // repair re-replication overwrite
        assert_eq!(dn.bytes_stored(), 40);
        assert!(dn.has_block(5));
    }

    #[test]
    fn corrupt_block_flips_stored_bytes() {
        let dn = DataNode::new(2);
        dn.put_block(7, vec![0xFF; 8]);
        assert!(dn.corrupt_block(7));
        assert_eq!(dn.get_block(7).unwrap()[0], 0xFE);
        assert!(!dn.corrupt_block(99));
    }
}
