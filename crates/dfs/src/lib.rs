//! A simulated replicated distributed filesystem (HDFS-class).
//!
//! SPATE stores compressed snapshots "on a replicated big data file system
//! for availability and performance" — the paper's testbed is HDFS with
//! 64 MB blocks and replication 3 on 7.2K-RPM disks (§VII-B). This crate
//! substitutes an in-process simulation that preserves the two properties
//! the experiments depend on:
//!
//! 1. **Accounting** — files are split into blocks, each replicated across
//!    datanodes; [`Dfs::metrics`] reports logical and physical bytes, which
//!    is what the disk-space experiments (Figs. 8/10) measure.
//! 2. **Bandwidth** — reads and writes can be throttled to a configurable
//!    MB/s plus per-file seek latency ([`IoModel`]), reproducing the
//!    I/O-bound vs CPU-bound trade-off that decides when compression wins
//!    (T4's nested-loop join re-reads files; at disk bandwidth the 10×
//!    smaller compressed stream wins despite decompression CPU).
//!
//! The namespace is flat path → file; datanodes hold in-memory block
//! stores. Datanode failure can be injected ([`Dfs::kill_datanode`]);
//! reads fall over to surviving replicas.
//!
//! The fault-tolerant storage path layers four defenses on top:
//!
//! * **Block checksums** — the namenode records a CRC-32 per block at
//!   write time; every replica read is verified and silently-corrupted
//!   replicas trigger failover to the next replica ([`fault`]).
//! * **Retry with backoff** — transient faults injected by a seeded
//!   [`fault::FaultPlan`] are absorbed by a bounded-exponential
//!   [`retry::RetryPolicy`] before any error escapes.
//! * **Repair** — [`Dfs::repair`] re-replicates under-replicated blocks
//!   after crashes and drops (then replaces) corrupt replicas ([`repair`]).
//! * **Atomic visibility** — paths are reserved in the namespace under a
//!   single write lock before any block lands, partially-written files
//!   are rolled back, and [`Dfs::rename`] gives upper layers an atomic
//!   commit step for crash-consistent ingest.

pub mod breaker;
pub mod cache;
pub mod fault;
pub mod metrics;
pub mod node;
pub mod repair;
pub mod retry;

pub use breaker::{BreakerConfig, BreakerState, BreakerStatsSnapshot};
pub use cache::PageCache;
pub use fault::{FaultConfig, FaultPlan, FaultStatsSnapshot};
pub use metrics::DfsMetrics;
pub use repair::RepairReport;
pub use retry::RetryPolicy;

use codecs::crc32::crc32;
use fault::CrashAction;
use metrics::MetricsInner;
use node::DataNode;
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Errors from filesystem operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    NotFound(String),
    AlreadyExists(String),
    /// Every replica of a needed block is on dead datanodes.
    BlockUnavailable {
        path: String,
        block: u64,
    },
    /// Every reachable replica of a block failed its checksum.
    BlockCorrupt {
        path: String,
        block: u64,
    },
    NoLiveDatanodes,
    /// A transient fault persisted past the retry policy's budget.
    RetriesExhausted {
        path: String,
        op: &'static str,
    },
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::NotFound(p) => write!(f, "no such file: {p}"),
            DfsError::AlreadyExists(p) => write!(f, "file exists: {p}"),
            DfsError::BlockUnavailable { path, block } => {
                write!(f, "all replicas lost for block {block} of {path}")
            }
            DfsError::BlockCorrupt { path, block } => {
                write!(
                    f,
                    "all reachable replicas corrupt for block {block} of {path}"
                )
            }
            DfsError::NoLiveDatanodes => write!(f, "no live datanodes"),
            DfsError::RetriesExhausted { path, op } => {
                write!(f, "retries exhausted during {op} of {path}")
            }
        }
    }
}

impl std::error::Error for DfsError {}

/// Disk/network bandwidth model applied to reads and writes.
#[derive(Debug, Clone, Copy)]
pub struct IoModel {
    /// Sequential read bandwidth in MB/s; `f64::INFINITY` disables.
    pub read_mbps: f64,
    /// Write bandwidth in MB/s (per replica pipeline).
    pub write_mbps: f64,
    /// Fixed per-file access latency (head seek / RPC), in microseconds.
    pub seek_us: u64,
}

impl IoModel {
    /// No throttling: pure in-memory speed (for unit tests).
    pub fn unthrottled() -> Self {
        Self {
            read_mbps: f64::INFINITY,
            write_mbps: f64::INFINITY,
            seek_us: 0,
        }
    }

    /// Cluster-disk model resembling the paper's 7.2K RPM RAID-5 SAS
    /// testbed behind VMFS: 300 MB/s sequential streaming, 150 MB/s
    /// writes, 8 ms per-file access latency (a 7.2K-RPM head seek plus
    /// rotational latency and the HDFS open RPC).
    pub fn cluster_disks() -> Self {
        Self {
            read_mbps: 300.0,
            write_mbps: 150.0,
            seek_us: 8_000,
        }
    }

    fn throttle(&self, bytes: usize, mbps: f64) {
        self.seek();
        self.charge(bytes, mbps);
    }

    /// Pay the fixed per-file access latency only.
    fn seek(&self) {
        if self.seek_us > 0 {
            spin_sleep(Duration::from_micros(self.seek_us));
        }
    }

    /// Pay bandwidth for `bytes` only. The read path charges per block as
    /// each block is actually fetched, so a read that fails mid-file pays
    /// (and accounts) only for the bytes it truly transferred.
    fn charge(&self, bytes: usize, mbps: f64) {
        if mbps.is_finite() && mbps > 0.0 && bytes > 0 {
            let secs = bytes as f64 / (mbps * 1_000_000.0);
            spin_sleep(Duration::from_secs_f64(secs));
        }
    }
}

/// Sleep that stays accurate for sub-millisecond durations (thread::sleep
/// alone over-shoots badly at microsecond scale).
fn spin_sleep(d: Duration) {
    let start = std::time::Instant::now();
    if d > Duration::from_millis(2) {
        std::thread::sleep(d - Duration::from_millis(1));
    }
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

/// Filesystem configuration.
#[derive(Debug, Clone, Copy)]
pub struct DfsConfig {
    /// Block size in bytes (the paper's testbed: 64 MB).
    pub block_size: usize,
    /// Replication factor (the paper's testbed: 3).
    pub replication: usize,
    pub n_datanodes: usize,
    pub io: IoModel,
    /// Page-cache capacity in bytes (0 disables). Reads served from cache
    /// skip the disk cost entirely — see [`cache::PageCache`].
    pub cache_bytes: usize,
    /// Retry budget wrapped around transient block-level faults.
    pub retry: RetryPolicy,
    /// Per-datanode circuit breakers under the retry policy (disabled by
    /// default — see [`breaker::BreakerConfig`]).
    pub breaker: BreakerConfig,
}

impl Default for DfsConfig {
    fn default() -> Self {
        Self {
            block_size: 64 * 1024 * 1024,
            replication: 3,
            n_datanodes: 4, // the paper's 4-VM cluster
            io: IoModel::unthrottled(),
            cache_bytes: 0,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::disabled(),
        }
    }
}

impl DfsConfig {
    pub fn with_io(mut self, io: IoModel) -> Self {
        self.io = io;
        self
    }

    pub fn with_cache(mut self, cache_bytes: usize) -> Self {
        self.cache_bytes = cache_bytes;
        self
    }

    pub fn with_block_size(mut self, block_size: usize) -> Self {
        assert!(block_size > 0);
        self.block_size = block_size;
        self
    }

    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }
}

/// File metadata held by the namenode.
#[derive(Debug, Clone)]
pub(crate) struct FileMeta {
    pub(crate) len: u64,
    pub(crate) blocks: Vec<u64>,
    /// Reserved by an in-flight write; invisible to readers until commit.
    pub(crate) pending: bool,
}

/// Block metadata: which datanodes hold replicas, plus the CRC-32 the
/// namenode recorded at write time (HDFS keeps per-block checksums in
/// sidecar `.meta` files; here the namenode holds them directly).
#[derive(Debug, Clone)]
pub(crate) struct BlockMeta {
    pub(crate) replicas: Vec<usize>,
    pub(crate) crc: u32,
}

pub(crate) struct Namespace {
    pub(crate) files: BTreeMap<String, FileMeta>,
    pub(crate) blocks: BTreeMap<u64, BlockMeta>,
    /// Replica copies `(block, datanode)` known to be corrupt — recorded
    /// when a read detects a checksum mismatch so later reads skip the bad
    /// copy and the repair pass drops and replaces it.
    pub(crate) corrupt: HashSet<(u64, usize)>,
}

/// The simulated cluster. Cheap to clone (shared state).
#[derive(Clone)]
pub struct Dfs {
    inner: Arc<DfsInner>,
}

pub(crate) struct DfsInner {
    pub(crate) config: DfsConfig,
    pub(crate) namespace: RwLock<Namespace>,
    pub(crate) datanodes: Vec<DataNode>,
    next_block_id: AtomicU64,
    pub(crate) metrics: MetricsInner,
    cache: cache::PageCache,
    pub(crate) fault: FaultPlan,
    pub(crate) breaker: breaker::Breaker,
}

impl Dfs {
    pub fn new(config: DfsConfig) -> Self {
        Self::with_faults(config, FaultConfig::none())
    }

    /// Build a cluster with a seeded fault plan attached. Every block-level
    /// operation consults the plan; `FaultConfig::none()` makes it a pure
    /// counter block with no injected faults.
    pub fn with_faults(config: DfsConfig, faults: FaultConfig) -> Self {
        assert!(config.n_datanodes >= config.replication.max(1));
        let datanodes = (0..config.n_datanodes).map(DataNode::new).collect();
        Self {
            inner: Arc::new(DfsInner {
                config,
                namespace: RwLock::new(Namespace {
                    files: BTreeMap::new(),
                    blocks: BTreeMap::new(),
                    corrupt: HashSet::new(),
                }),
                datanodes,
                next_block_id: AtomicU64::new(1),
                metrics: MetricsInner::default(),
                cache: cache::PageCache::new(config.cache_bytes),
                fault: FaultPlan::new(faults),
                breaker: breaker::Breaker::new(config.breaker, config.n_datanodes),
            }),
        }
    }

    /// Default in-memory cluster, unthrottled.
    pub fn in_memory() -> Self {
        Self::new(DfsConfig::default())
    }

    pub fn config(&self) -> &DfsConfig {
        &self.inner.config
    }

    /// Injected-fault and recovery counters for this cluster instance.
    pub fn fault_stats(&self) -> FaultStatsSnapshot {
        self.inner.fault.stats()
    }

    /// Circuit-breaker transition counters for this cluster instance.
    pub fn breaker_stats(&self) -> BreakerStatsSnapshot {
        self.inner.breaker.stats()
    }

    /// Observable breaker state of one datanode.
    pub fn breaker_state(&self, dn: usize) -> BreakerState {
        self.inner.breaker.state(dn)
    }

    /// Advance the fault plan's operation clock and apply any due
    /// crash/revive actions to the datanodes.
    fn tick_faults(&self) {
        for action in self.inner.fault.tick(self.inner.config.n_datanodes) {
            match action {
                CrashAction::Kill(n) => self.inner.datanodes[n].kill(),
                CrashAction::Revive(n) => self.inner.datanodes[n].revive(),
            }
        }
    }

    /// Write a new file. Fails if the path exists (HDFS files are
    /// write-once, matching snapshot immutability).
    ///
    /// The path is **reserved** in the namespace under a single write lock
    /// before any block is placed, so two concurrent writers to the same
    /// path race on the reservation and exactly one proceeds — the loser
    /// gets [`DfsError::AlreadyExists`] without leaking blocks. On any
    /// failure after reservation, blocks already placed are rolled back
    /// and the reservation is released.
    pub fn write(&self, path: &str, data: &[u8]) -> Result<(), DfsError> {
        let _span = obs::span("dfs.write");
        self.tick_faults();
        let inner = &self.inner;
        {
            // Reserve under ONE write lock: the exists-check and the insert
            // are atomic (the old read-check/write-insert pair let two
            // concurrent writers both pass the check).
            let mut ns = inner.namespace.write();
            if ns.files.contains_key(path) {
                return Err(DfsError::AlreadyExists(path.to_string()));
            }
            ns.files.insert(
                path.to_string(),
                FileMeta {
                    len: 0,
                    blocks: Vec::new(),
                    pending: true,
                },
            );
        }
        match self.write_blocks(path, data) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.rollback_write(path);
                Err(e)
            }
        }
    }

    /// Write a file unless the path already exists: `Ok(true)` when this
    /// call wrote it, `Ok(false)` when it was already there (including a
    /// concurrent writer winning the reservation race). The fast path for
    /// content-addressed storage, where an existing file at the same path
    /// is by construction the same content and losing the race is success.
    pub fn write_if_absent(&self, path: &str, data: &[u8]) -> Result<bool, DfsError> {
        if self.exists(path) {
            obs::inc("dfs.write_if_absent.hits");
            return Ok(false);
        }
        match self.write(path, data) {
            Ok(()) => Ok(true),
            Err(DfsError::AlreadyExists(_)) => {
                obs::inc("dfs.write_if_absent.hits");
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    /// Block placement for a path already reserved as pending.
    fn write_blocks(&self, path: &str, data: &[u8]) -> Result<(), DfsError> {
        let inner = &self.inner;
        let live: Vec<usize> = inner
            .datanodes
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_alive())
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            return Err(DfsError::NoLiveDatanodes);
        }

        // Replication pipeline: the client pays one pass of write bandwidth
        // (replica forwarding overlaps in HDFS). The pipeline histogram
        // covers the bandwidth charge plus replica placement.
        let pipeline_start = std::time::Instant::now();
        inner
            .config
            .io
            .throttle(data.len(), inner.config.io.write_mbps);

        let replication = inner.config.replication.min(live.len());
        let retry = inner.config.retry;
        let mut blocks = Vec::new();
        let chunks: Vec<&[u8]> = if data.is_empty() {
            vec![]
        } else {
            data.chunks(inner.config.block_size).collect()
        };
        for chunk in chunks {
            let block_id = inner.next_block_id.fetch_add(1, Ordering::Relaxed);
            let crc = crc32(chunk);
            let mut replicas = Vec::with_capacity(replication);
            for r in 0..replication {
                let dn = live[(block_id as usize + r) % live.len()];
                // Absorb transient per-replica faults with bounded retries.
                // A replica that stays faulty past the budget is skipped —
                // the block lands under-replicated and the repair pass tops
                // it back up — but losing *every* replica fails the write.
                let mut attempt = 0u32;
                let start = std::time::Instant::now();
                let placed = loop {
                    if !inner.fault.transient_write(block_id, dn, attempt) {
                        inner.datanodes[dn].put_block(block_id, chunk.to_vec());
                        if attempt > 0 {
                            inner
                                .fault
                                .stats
                                .retry_successes
                                .fetch_add(1, Ordering::Relaxed);
                            obs::inc("dfs.retry.successes");
                        }
                        break true;
                    }
                    if !retry.allows(attempt + 1, start.elapsed()) {
                        inner
                            .fault
                            .stats
                            .retries_exhausted
                            .fetch_add(1, Ordering::Relaxed);
                        obs::inc("dfs.retry.exhausted");
                        break false;
                    }
                    inner
                        .fault
                        .stats
                        .retry_attempts
                        .fetch_add(1, Ordering::Relaxed);
                    obs::inc("dfs.retry.attempts");
                    spin_sleep(retry.backoff(attempt));
                    attempt += 1;
                };
                if placed {
                    replicas.push(dn);
                }
            }
            if replicas.is_empty() {
                // Record the partial block list on the pending entry so
                // rollback_write can free blocks placed for earlier chunks.
                if let Some(f) = inner.namespace.write().files.get_mut(path) {
                    f.blocks = blocks.clone();
                }
                return Err(DfsError::RetriesExhausted {
                    path: path.to_string(),
                    op: "write",
                });
            }
            // Silent at-rest corruption: one replica of an unlucky block
            // rots right after the pipeline acks (the writer cannot see it;
            // only a checksummed read or the repair pass can).
            if let Some(slot) = inner.fault.corrupt_replica_slot(block_id, replicas.len()) {
                if inner.datanodes[replicas[slot]].corrupt_block(block_id) {
                    inner.fault.note_corruption_injected();
                }
            }
            blocks.push(block_id);
            inner
                .namespace
                .write()
                .blocks
                .insert(block_id, BlockMeta { replicas, crc });
        }
        obs::observe(
            "dfs.write.pipeline_ns",
            pipeline_start.elapsed().as_nanos() as u64,
        );
        {
            // Commit: fill in the metadata and flip the pending bit.
            let mut ns = inner.namespace.write();
            let meta = ns.files.get_mut(path).expect("reserved entry");
            meta.len = data.len() as u64;
            meta.blocks = blocks;
            meta.pending = false;
        }
        inner
            .metrics
            .record_write(data.len() as u64, replication as u64);
        obs::add("dfs.write.bytes", data.len() as u64);
        Ok(())
    }

    /// Undo a failed write: free any blocks it placed, release the
    /// reservation.
    fn rollback_write(&self, path: &str) {
        let inner = &self.inner;
        let blocks = {
            let mut ns = inner.namespace.write();
            let Some(meta) = ns.files.remove(path) else {
                return;
            };
            let mut placed = meta.blocks;
            // Blocks may be registered in `ns.blocks` but not yet recorded
            // on the file (failure between chunk loop iterations): the
            // chunk loop stores the partial list on error before returning.
            for b in &placed {
                ns.blocks.remove(b);
            }
            ns.corrupt.retain(|(b, _)| !placed.contains(b));
            placed.sort_unstable();
            placed
        };
        for block_id in blocks {
            for dn in &inner.datanodes {
                dn.remove_block(block_id);
            }
        }
    }

    /// Read a whole file. Recently read files are served from the page
    /// cache (if configured) without paying the disk cost.
    ///
    /// Each fetched replica is verified against the block's CRC-32; a
    /// mismatch marks that copy corrupt (so later reads and the repair
    /// pass skip it) and fails over to the next replica. Transient faults
    /// are retried under the configured [`RetryPolicy`]. Bandwidth is
    /// charged per block *as it is fetched*, so a read that fails mid-file
    /// pays — and records in metrics — only the bytes actually moved.
    pub fn read(&self, path: &str) -> Result<Vec<u8>, DfsError> {
        let _span = obs::span("dfs.read");
        self.tick_faults();
        let inner = &self.inner;
        if let Some(cached) = inner.cache.get(path) {
            obs::inc("dfs.cache.hits");
            obs::trace::event("dfs.cache.hit", &[("path", path)]);
            obs::add("dfs.read.bytes", cached.len() as u64);
            obs::cost::add_bytes_read("dfs", cached.len() as u64);
            inner.metrics.record_read(cached.len() as u64);
            return Ok(cached.as_ref().clone());
        }
        obs::inc("dfs.cache.misses");
        obs::trace::event("dfs.cache.miss", &[("path", path)]);
        let (len, blocks) = {
            let ns = inner.namespace.read();
            let meta = ns
                .files
                .get(path)
                .filter(|m| !m.pending)
                .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
            (meta.len, meta.blocks.clone())
        };
        // One head seek per file; bandwidth is charged per block below,
        // only for blocks that are actually served.
        inner.config.io.seek();
        let mut out = Vec::with_capacity(len as usize);
        for block_id in blocks {
            match self.read_block(path, block_id) {
                Ok(bytes) => {
                    inner
                        .config
                        .io
                        .charge(bytes.len(), inner.config.io.read_mbps);
                    out.extend_from_slice(&bytes);
                }
                Err(e) => {
                    // Truthful accounting for the partial transfer.
                    inner.metrics.record_partial_read(out.len() as u64);
                    obs::inc("dfs.read.partial");
                    obs::add("dfs.read.partial_bytes", out.len() as u64);
                    return Err(e);
                }
            }
        }
        inner.metrics.record_read(out.len() as u64);
        obs::add("dfs.read.bytes", out.len() as u64);
        obs::cost::add_bytes_read("dfs", out.len() as u64);
        let shared = std::sync::Arc::new(out);
        inner.cache.put(path, std::sync::Arc::clone(&shared));
        Ok(std::sync::Arc::try_unwrap(shared).unwrap_or_else(|arc| arc.as_ref().clone()))
    }

    /// Fetch and checksum-verify one block, failing over across replicas
    /// and retrying transient faults under the retry policy. Replicas on
    /// datanodes whose circuit breaker is open are skipped; when open
    /// breakers are the only reason nothing served the block, the block
    /// is reported unavailable (degrading to partial coverage upstream)
    /// rather than spending the retry budget on a node known to be sick.
    fn read_block(&self, path: &str, block_id: u64) -> Result<Vec<u8>, DfsError> {
        let inner = &self.inner;
        inner.breaker.tick();
        let (replicas, crc) = {
            let ns = inner.namespace.read();
            match ns.blocks.get(&block_id) {
                Some(b) => (b.replicas.clone(), b.crc),
                None => (Vec::new(), 0),
            }
        };
        let retry = inner.config.retry;
        let mut attempt = 0u32;
        let start = std::time::Instant::now();
        loop {
            let mut saw_transient = false;
            let mut saw_corrupt = false;
            for (slot, &dn) in replicas.iter().enumerate() {
                if !inner.datanodes[dn].is_alive() {
                    continue;
                }
                if inner.namespace.read().corrupt.contains(&(block_id, dn)) {
                    saw_corrupt = true; // known-bad copy from an earlier read
                    continue;
                }
                if !inner.breaker.admits(dn) {
                    continue;
                }
                if inner.fault.transient_read(block_id, dn, attempt) {
                    inner.breaker.record_failure(dn);
                    saw_transient = true;
                    continue;
                }
                if let Some(stall) = inner.fault.slow_read(block_id, dn) {
                    spin_sleep(stall);
                }
                let Some(bytes) = inner.datanodes[dn].get_block(block_id) else {
                    inner.breaker.record_failure(dn);
                    continue;
                };
                if crc32(&bytes) != crc {
                    inner.breaker.record_failure(dn);
                    inner
                        .fault
                        .stats
                        .checksum_mismatches
                        .fetch_add(1, Ordering::Relaxed);
                    obs::inc("dfs.fault.checksum_mismatches");
                    if obs::trace::current().is_some() {
                        obs::trace::event(
                            "dfs.checksum_mismatch",
                            &[
                                ("block", &block_id.to_string()),
                                ("replica", &dn.to_string()),
                            ],
                        );
                    }
                    inner.namespace.write().corrupt.insert((block_id, dn));
                    saw_corrupt = true;
                    continue;
                }
                if slot > 0 || attempt > 0 {
                    inner
                        .fault
                        .stats
                        .read_failovers
                        .fetch_add(1, Ordering::Relaxed);
                    obs::inc("dfs.fault.read_failovers");
                    if obs::trace::current().is_some() {
                        obs::trace::event(
                            "dfs.read_failover",
                            &[
                                ("block", &block_id.to_string()),
                                ("replica", &dn.to_string()),
                            ],
                        );
                    }
                }
                if attempt > 0 {
                    inner
                        .fault
                        .stats
                        .retry_successes
                        .fetch_add(1, Ordering::Relaxed);
                    obs::inc("dfs.retry.successes");
                }
                inner.breaker.record_success(dn);
                return Ok(bytes);
            }
            // No replica served the block this round. Retry only helps if
            // at least one failure was transient — and only while the
            // request's cancellation/deadline budget (if any) still
            // allows more work. An interrupted request skips the backoff
            // sleep and fails fast instead, degrading to partial
            // coverage upstream.
            let mut wants_retry = saw_transient && retry.allows(attempt + 1, start.elapsed());
            if wants_retry && obs::budget::interrupted().is_some() {
                obs::inc("dfs.budget.interrupts");
                wants_retry = false;
            }
            if wants_retry {
                inner
                    .fault
                    .stats
                    .retry_attempts
                    .fetch_add(1, Ordering::Relaxed);
                obs::inc("dfs.retry.attempts");
                if obs::trace::current().is_some() {
                    obs::trace::event(
                        "dfs.retry",
                        &[
                            ("block", &block_id.to_string()),
                            ("attempt", &(attempt + 1).to_string()),
                        ],
                    );
                }
                spin_sleep(retry.backoff(attempt));
                attempt += 1;
                continue;
            }
            if saw_transient {
                inner
                    .fault
                    .stats
                    .retries_exhausted
                    .fetch_add(1, Ordering::Relaxed);
                obs::inc("dfs.retry.exhausted");
                return Err(DfsError::RetriesExhausted {
                    path: path.to_string(),
                    op: "read",
                });
            }
            // Permanent failure: corrupt if any live replica failed its
            // checksum (now or on an earlier read), lost otherwise.
            return Err(if saw_corrupt {
                DfsError::BlockCorrupt {
                    path: path.to_string(),
                    block: block_id,
                }
            } else {
                DfsError::BlockUnavailable {
                    path: path.to_string(),
                    block: block_id,
                }
            });
        }
    }

    /// Atomically move a committed file to a new path (the commit step of
    /// crash-consistent ingest: write `x.tmp`, then `rename(x.tmp, x)`).
    pub fn rename(&self, from: &str, to: &str) -> Result<(), DfsError> {
        let _span = obs::span("dfs.rename");
        let inner = &self.inner;
        {
            let mut ns = inner.namespace.write();
            if ns.files.get(from).is_none_or(|m| m.pending) {
                return Err(DfsError::NotFound(from.to_string()));
            }
            if ns.files.contains_key(to) {
                return Err(DfsError::AlreadyExists(to.to_string()));
            }
            let meta = ns.files.remove(from).expect("checked above");
            ns.files.insert(to.to_string(), meta);
        }
        inner.cache.invalidate(from);
        inner.cache.invalidate(to);
        obs::inc("dfs.rename.ops");
        Ok(())
    }

    /// Delete a file, freeing its blocks. Returns the logical bytes freed.
    pub fn delete(&self, path: &str) -> Result<u64, DfsError> {
        let _span = obs::span("dfs.delete");
        self.tick_faults();
        let inner = &self.inner;
        inner.cache.invalidate(path);
        let meta = {
            let mut ns = inner.namespace.write();
            if ns.files.get(path).is_some_and(|m| m.pending) {
                return Err(DfsError::NotFound(path.to_string()));
            }
            let meta = ns
                .files
                .remove(path)
                .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
            for b in &meta.blocks {
                ns.blocks.remove(b);
                ns.corrupt.retain(|(blk, _)| blk != b);
            }
            meta
        };
        let mut replicas_freed = 0u64;
        for block_id in &meta.blocks {
            for dn in &inner.datanodes {
                if dn.remove_block(*block_id) {
                    replicas_freed += 1;
                }
            }
        }
        inner.metrics.record_delete(meta.len, replicas_freed);
        obs::inc("dfs.delete.ops");
        obs::add("dfs.delete.bytes", meta.len);
        Ok(meta.len)
    }

    pub fn exists(&self, path: &str) -> bool {
        self.inner
            .namespace
            .read()
            .files
            .get(path)
            .is_some_and(|m| !m.pending)
    }

    pub fn file_len(&self, path: &str) -> Result<u64, DfsError> {
        self.inner
            .namespace
            .read()
            .files
            .get(path)
            .filter(|m| !m.pending)
            .map(|m| m.len)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))
    }

    /// Paths under a prefix, in lexicographic order. In-flight (pending)
    /// writes are invisible.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.inner
            .namespace
            .read()
            .files
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .filter(|(_, m)| !m.pending)
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Simulate a datanode crash. Blocks with surviving replicas stay
    /// readable; fully-lost blocks error on read.
    pub fn kill_datanode(&self, id: usize) {
        self.inner.datanodes[id].kill();
    }

    pub fn revive_datanode(&self, id: usize) {
        self.inner.datanodes[id].revive();
    }

    /// Test/chaos hook: flip one bit of the replica of `path`'s first
    /// block stored on datanode `dn`, if that node holds one. Returns
    /// whether anything was corrupted. The namenode checksum is untouched,
    /// so subsequent reads detect the damage.
    pub fn corrupt_replica_for_test(&self, path: &str, dn: usize) -> bool {
        let block = {
            let ns = self.inner.namespace.read();
            match ns.files.get(path).and_then(|m| m.blocks.first()) {
                Some(&b) => b,
                None => return false,
            }
        };
        self.inner.cache.invalidate(path);
        self.inner.datanodes[dn].corrupt_block(block)
    }

    /// Page-cache hit/miss counters.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.inner.cache.stats()
    }

    /// Drop all cached file contents (cold-cache measurement boundary).
    pub fn drop_caches(&self) {
        self.inner.cache.clear();
    }

    /// Current usage and traffic counters.
    pub fn metrics(&self) -> DfsMetrics {
        let inner = &self.inner;
        let ns = inner.namespace.read();
        let physical: u64 = inner.datanodes.iter().map(|d| d.bytes_stored()).sum();
        inner.metrics.snapshot(
            ns.files.values().filter(|f| !f.pending).count() as u64,
            ns.blocks.len() as u64,
            ns.files
                .values()
                .filter(|f| !f.pending)
                .map(|f| f.len)
                .sum(),
            physical,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let fs = Dfs::in_memory();
        let data = b"hello distributed world".repeat(100);
        fs.write("/traces/day0/snap0", &data).unwrap();
        assert_eq!(fs.read("/traces/day0/snap0").unwrap(), data);
        assert_eq!(
            fs.file_len("/traces/day0/snap0").unwrap(),
            data.len() as u64
        );
        assert!(fs.exists("/traces/day0/snap0"));
        assert!(!fs.exists("/traces/day0/snap1"));
    }

    #[test]
    fn files_are_write_once() {
        let fs = Dfs::in_memory();
        fs.write("/a", b"1").unwrap();
        assert_eq!(
            fs.write("/a", b"2"),
            Err(DfsError::AlreadyExists("/a".into()))
        );
    }

    #[test]
    fn missing_files_error() {
        let fs = Dfs::in_memory();
        assert_eq!(fs.read("/nope"), Err(DfsError::NotFound("/nope".into())));
        assert_eq!(fs.delete("/nope"), Err(DfsError::NotFound("/nope".into())));
        assert!(fs.file_len("/nope").is_err());
    }

    #[test]
    fn multi_block_files_split_and_rejoin() {
        let config = DfsConfig {
            block_size: 1024,
            ..DfsConfig::default()
        };
        let fs = Dfs::new(config);
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        fs.write("/big", &data).unwrap();
        assert_eq!(fs.read("/big").unwrap(), data);
        let m = fs.metrics();
        assert_eq!(m.n_blocks, 10); // ceil(10000/1024)
        assert_eq!(m.logical_bytes, 10_000);
        assert_eq!(m.physical_bytes, 30_000); // replication 3
    }

    #[test]
    fn replication_survives_single_failure() {
        let config = DfsConfig {
            block_size: 512,
            ..DfsConfig::default()
        };
        let fs = Dfs::new(config);
        let data = vec![7u8; 4096];
        fs.write("/resilient", &data).unwrap();
        fs.kill_datanode(0);
        assert_eq!(fs.read("/resilient").unwrap(), data);
        fs.kill_datanode(1);
        assert_eq!(fs.read("/resilient").unwrap(), data);
    }

    #[test]
    fn losing_all_replicas_is_detected() {
        let config = DfsConfig {
            replication: 2,
            n_datanodes: 2,
            ..DfsConfig::default()
        };
        let fs = Dfs::new(config);
        fs.write("/fragile", b"data").unwrap();
        fs.kill_datanode(0);
        fs.kill_datanode(1);
        assert!(matches!(
            fs.read("/fragile"),
            Err(DfsError::BlockUnavailable { .. })
        ));
        // Revival restores access (blocks were retained).
        fs.revive_datanode(0);
        fs.revive_datanode(1);
        assert_eq!(fs.read("/fragile").unwrap(), b"data");
    }

    #[test]
    fn writes_with_no_live_datanodes_fail() {
        let fs = Dfs::in_memory();
        for i in 0..4 {
            fs.kill_datanode(i);
        }
        assert_eq!(fs.write("/x", b"y"), Err(DfsError::NoLiveDatanodes));
    }

    #[test]
    fn delete_frees_space() {
        let fs = Dfs::in_memory();
        fs.write("/tmp/a", &vec![1u8; 1000]).unwrap();
        fs.write("/tmp/b", &vec![2u8; 500]).unwrap();
        assert_eq!(fs.metrics().logical_bytes, 1500);
        assert_eq!(fs.delete("/tmp/a").unwrap(), 1000);
        let m = fs.metrics();
        assert_eq!(m.logical_bytes, 500);
        assert_eq!(m.physical_bytes, 1500);
        assert_eq!(m.n_files, 1);
        assert!(!fs.exists("/tmp/a"));
        // The delete itself is metered, not silently dropped.
        assert_eq!(m.deletes, 1);
        assert_eq!(m.bytes_deleted, 1000);
        assert_eq!(m.replicas_freed, 3); // one block × replication 3
    }

    #[test]
    fn list_by_prefix_is_sorted() {
        let fs = Dfs::in_memory();
        for p in ["/z/1", "/a/2", "/a/1", "/a/10", "/b/1"] {
            fs.write(p, b"x").unwrap();
        }
        assert_eq!(fs.list("/a/"), vec!["/a/1", "/a/10", "/a/2"]);
        assert_eq!(fs.list("/"), vec!["/a/1", "/a/10", "/a/2", "/b/1", "/z/1"]);
        assert!(fs.list("/none").is_empty());
    }

    #[test]
    fn empty_files_are_legal() {
        let fs = Dfs::in_memory();
        fs.write("/empty", b"").unwrap();
        assert_eq!(fs.read("/empty").unwrap(), Vec::<u8>::new());
        assert_eq!(fs.metrics().n_blocks, 0);
    }

    #[test]
    fn metrics_track_traffic() {
        let fs = Dfs::in_memory();
        fs.write("/t", &vec![0u8; 2048]).unwrap();
        fs.read("/t").unwrap();
        fs.read("/t").unwrap();
        let m = fs.metrics();
        assert_eq!(m.writes, 1);
        assert_eq!(m.reads, 2);
        assert_eq!(m.bytes_written, 2048);
        assert_eq!(m.bytes_read, 4096);
    }

    #[test]
    fn throttled_reads_take_proportional_time() {
        let io = IoModel {
            read_mbps: 50.0,
            write_mbps: 50.0,
            seek_us: 0,
        };
        let fs = Dfs::new(DfsConfig::default().with_io(io));
        let data = vec![0u8; 1_000_000]; // 1 MB at 50 MB/s → 20 ms
        let t0 = std::time::Instant::now();
        fs.write("/throttled", &data).unwrap();
        let write_time = t0.elapsed();
        let t1 = std::time::Instant::now();
        fs.read("/throttled").unwrap();
        let read_time = t1.elapsed();
        assert!(write_time >= Duration::from_millis(18), "{write_time:?}");
        assert!(read_time >= Duration::from_millis(18), "{read_time:?}");
        assert!(read_time < Duration::from_millis(200), "{read_time:?}");
    }

    #[test]
    fn cached_rereads_skip_the_disk_cost() {
        let io = IoModel {
            read_mbps: 20.0,
            write_mbps: f64::INFINITY,
            seek_us: 0,
        };
        let fs = Dfs::new(DfsConfig::default().with_io(io).with_cache(10 << 20));
        let data = vec![3u8; 2_000_000]; // 2 MB at 20 MB/s → 100 ms cold
        fs.write("/hot", &data).unwrap();
        let t0 = std::time::Instant::now();
        fs.read("/hot").unwrap();
        let cold = t0.elapsed();
        let t1 = std::time::Instant::now();
        for _ in 0..5 {
            assert_eq!(fs.read("/hot").unwrap().len(), data.len());
        }
        let warm = t1.elapsed() / 5;
        assert!(cold >= Duration::from_millis(90), "{cold:?}");
        assert!(warm < cold / 10, "warm {warm:?} vs cold {cold:?}");
        let (hits, misses) = fs.cache_stats();
        assert_eq!(hits, 5);
        assert_eq!(misses, 1);
        // Deleting invalidates.
        fs.delete("/hot").unwrap();
        assert!(fs.read("/hot").is_err());
    }

    #[test]
    fn small_cache_thrashes_on_large_working_set() {
        let fs = Dfs::new(DfsConfig::default().with_cache(1000));
        for i in 0..10 {
            fs.write(&format!("/f{i}"), &vec![i as u8; 400]).unwrap();
        }
        // Cycle through all files twice: working set 4000 B > 1000 B cache.
        for _ in 0..2 {
            for i in 0..10 {
                fs.read(&format!("/f{i}")).unwrap();
            }
        }
        let (hits, misses) = fs.cache_stats();
        assert_eq!(hits, 0, "LRU cycling over an oversized set never hits");
        assert_eq!(misses, 20);
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let fs = Dfs::in_memory();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let fs = fs.clone();
                scope.spawn(move || {
                    for i in 0..20 {
                        let path = format!("/t{t}/f{i}");
                        let data = vec![t as u8; 100 + i];
                        fs.write(&path, &data).unwrap();
                        assert_eq!(fs.read(&path).unwrap(), data);
                    }
                });
            }
        });
        assert_eq!(fs.metrics().n_files, 160);
    }

    /// Regression for the TOCTOU race: with the old read-lock exists-check
    /// followed by a separate write-lock insert, two concurrent writers to
    /// the same path could both succeed and the loser's blocks leaked on
    /// datanodes forever. Now exactly one wins and accounting stays exact.
    #[test]
    fn concurrent_writers_to_same_path_race_cleanly() {
        for round in 0..20 {
            let fs = Dfs::new(DfsConfig {
                block_size: 64,
                ..DfsConfig::default()
            });
            let barrier = std::sync::Barrier::new(2);
            let winners: Vec<bool> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..2)
                    .map(|t| {
                        let fs = fs.clone();
                        let barrier = &barrier;
                        scope.spawn(move || {
                            barrier.wait();
                            fs.write("/contended", &vec![t as u8 + 1; 640]).is_ok()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(
                winners.iter().filter(|&&w| w).count(),
                1,
                "round {round}: exactly one writer must win, got {winners:?}"
            );
            let m = fs.metrics();
            assert_eq!(m.n_files, 1);
            assert_eq!(m.n_blocks, 10, "round {round}: loser leaked blocks");
            assert_eq!(m.logical_bytes, 640);
            assert_eq!(m.physical_bytes, 3 * 640, "round {round}: replica leak");
            let data = fs.read("/contended").unwrap();
            assert_eq!(data.len(), 640);
            assert!(data.iter().all(|&b| b == data[0]), "torn file");
        }
    }

    #[test]
    fn checksum_mismatch_fails_over_to_clean_replica() {
        let fs = Dfs::new(DfsConfig {
            block_size: 512,
            ..DfsConfig::default()
        });
        let data = vec![5u8; 512];
        fs.write("/checked", &data).unwrap();
        let dn = (0..4)
            .find(|&i| fs.corrupt_replica_for_test("/checked", i))
            .unwrap();
        assert_eq!(fs.read("/checked").unwrap(), data, "failover hides rot");
        let s = fs.fault_stats();
        assert_eq!(s.checksum_mismatches, 1);
        assert!(s.read_failovers >= 1);
        // The bad copy is remembered: a re-read doesn't re-verify it.
        fs.drop_caches();
        assert_eq!(fs.read("/checked").unwrap(), data);
        assert_eq!(fs.fault_stats().checksum_mismatches, 1);
        let _ = dn;
    }

    #[test]
    fn all_replicas_corrupt_is_distinguished_from_lost() {
        let fs = Dfs::new(DfsConfig {
            block_size: 512,
            ..DfsConfig::default()
        });
        fs.write("/doomed", &[1u8; 256]).unwrap();
        for i in 0..4 {
            fs.corrupt_replica_for_test("/doomed", i);
        }
        assert!(matches!(
            fs.read("/doomed"),
            Err(DfsError::BlockCorrupt { .. })
        ));
    }

    #[test]
    fn failed_reads_record_partial_bytes() {
        let fs = Dfs::new(DfsConfig {
            block_size: 1000,
            replication: 2,
            n_datanodes: 2,
            ..DfsConfig::default()
        });
        fs.write("/partial", &vec![8u8; 5000]).unwrap();
        // Corrupt both replicas of the LAST block only: the read serves
        // four blocks then fails, and must account exactly those bytes.
        let last_block = {
            let ns = fs.inner.namespace.read();
            *ns.files.get("/partial").unwrap().blocks.last().unwrap()
        };
        for dn in &fs.inner.datanodes {
            dn.corrupt_block(last_block);
        }
        assert!(fs.read("/partial").is_err());
        let m = fs.metrics();
        assert_eq!(m.partial_reads, 1);
        assert_eq!(m.bytes_read_partial, 4000);
        assert_eq!(m.bytes_read, 0, "failed read is not a completed read");
    }

    #[test]
    fn rename_commits_atomically() {
        let fs = Dfs::in_memory();
        fs.write("/stage/a.tmp", b"payload").unwrap();
        fs.rename("/stage/a.tmp", "/final/a").unwrap();
        assert!(!fs.exists("/stage/a.tmp"));
        assert_eq!(fs.read("/final/a").unwrap(), b"payload");
        assert_eq!(
            fs.rename("/stage/a.tmp", "/x"),
            Err(DfsError::NotFound("/stage/a.tmp".into()))
        );
        fs.write("/other", b"z").unwrap();
        assert_eq!(
            fs.rename("/other", "/final/a"),
            Err(DfsError::AlreadyExists("/final/a".into()))
        );
    }

    /// End-to-end determinism: the same seed must produce identical fault
    /// and recovery counters across two full write/read/repair cycles.
    #[test]
    fn fault_plan_runs_are_reproducible() {
        let run = |seed: u64| {
            let fs = Dfs::with_faults(
                DfsConfig {
                    block_size: 256,
                    replication: 2,
                    ..DfsConfig::default()
                },
                FaultConfig::chaos(seed),
            );
            for i in 0..40 {
                fs.write(&format!("/f{i:02}"), &vec![i as u8; 700]).unwrap();
            }
            let mut served = 0;
            for i in 0..40 {
                if fs.read(&format!("/f{i:02}")).is_ok() {
                    served += 1;
                }
            }
            let repair = fs.repair();
            (fs.fault_stats(), repair, served)
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must reproduce identical runs");
        let c = run(43);
        assert_ne!(a.0, c.0, "different seeds should differ");
        // Chaos actually happened and was survived.
        assert!(a.0.transient_reads_injected + a.0.transient_writes_injected > 0);
        assert!(a.2 >= 38, "most files stay readable under chaos: {}", a.2);
    }

    #[test]
    fn pending_writes_are_invisible_midflight() {
        // A no-live-datanodes failure exercises rollback: the reservation
        // must be released so the path is writable again.
        let fs = Dfs::in_memory();
        for i in 0..4 {
            fs.kill_datanode(i);
        }
        assert_eq!(fs.write("/x", b"y"), Err(DfsError::NoLiveDatanodes));
        assert!(!fs.exists("/x"));
        for i in 0..4 {
            fs.revive_datanode(i);
        }
        fs.write("/x", b"y").unwrap();
        assert_eq!(fs.read("/x").unwrap(), b"y");
    }
}
