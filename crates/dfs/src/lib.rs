//! A simulated replicated distributed filesystem (HDFS-class).
//!
//! SPATE stores compressed snapshots "on a replicated big data file system
//! for availability and performance" — the paper's testbed is HDFS with
//! 64 MB blocks and replication 3 on 7.2K-RPM disks (§VII-B). This crate
//! substitutes an in-process simulation that preserves the two properties
//! the experiments depend on:
//!
//! 1. **Accounting** — files are split into blocks, each replicated across
//!    datanodes; [`Dfs::metrics`] reports logical and physical bytes, which
//!    is what the disk-space experiments (Figs. 8/10) measure.
//! 2. **Bandwidth** — reads and writes can be throttled to a configurable
//!    MB/s plus per-file seek latency ([`IoModel`]), reproducing the
//!    I/O-bound vs CPU-bound trade-off that decides when compression wins
//!    (T4's nested-loop join re-reads files; at disk bandwidth the 10×
//!    smaller compressed stream wins despite decompression CPU).
//!
//! The namespace is flat path → file; datanodes hold in-memory block
//! stores. Datanode failure can be injected ([`Dfs::kill_datanode`]);
//! reads fall over to surviving replicas.

pub mod cache;
pub mod metrics;
pub mod node;

pub use cache::PageCache;
pub use metrics::DfsMetrics;

use metrics::MetricsInner;
use node::DataNode;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Errors from filesystem operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    NotFound(String),
    AlreadyExists(String),
    /// Every replica of a needed block is on dead datanodes.
    BlockUnavailable {
        path: String,
        block: u64,
    },
    NoLiveDatanodes,
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::NotFound(p) => write!(f, "no such file: {p}"),
            DfsError::AlreadyExists(p) => write!(f, "file exists: {p}"),
            DfsError::BlockUnavailable { path, block } => {
                write!(f, "all replicas lost for block {block} of {path}")
            }
            DfsError::NoLiveDatanodes => write!(f, "no live datanodes"),
        }
    }
}

impl std::error::Error for DfsError {}

/// Disk/network bandwidth model applied to reads and writes.
#[derive(Debug, Clone, Copy)]
pub struct IoModel {
    /// Sequential read bandwidth in MB/s; `f64::INFINITY` disables.
    pub read_mbps: f64,
    /// Write bandwidth in MB/s (per replica pipeline).
    pub write_mbps: f64,
    /// Fixed per-file access latency (head seek / RPC), in microseconds.
    pub seek_us: u64,
}

impl IoModel {
    /// No throttling: pure in-memory speed (for unit tests).
    pub fn unthrottled() -> Self {
        Self {
            read_mbps: f64::INFINITY,
            write_mbps: f64::INFINITY,
            seek_us: 0,
        }
    }

    /// Cluster-disk model resembling the paper's 7.2K RPM RAID-5 SAS
    /// testbed behind VMFS: 300 MB/s sequential streaming, 150 MB/s
    /// writes, 8 ms per-file access latency (a 7.2K-RPM head seek plus
    /// rotational latency and the HDFS open RPC).
    pub fn cluster_disks() -> Self {
        Self {
            read_mbps: 300.0,
            write_mbps: 150.0,
            seek_us: 8_000,
        }
    }

    fn throttle(&self, bytes: usize, mbps: f64) {
        if self.seek_us > 0 {
            spin_sleep(Duration::from_micros(self.seek_us));
        }
        if mbps.is_finite() && mbps > 0.0 && bytes > 0 {
            let secs = bytes as f64 / (mbps * 1_000_000.0);
            spin_sleep(Duration::from_secs_f64(secs));
        }
    }
}

/// Sleep that stays accurate for sub-millisecond durations (thread::sleep
/// alone over-shoots badly at microsecond scale).
fn spin_sleep(d: Duration) {
    let start = std::time::Instant::now();
    if d > Duration::from_millis(2) {
        std::thread::sleep(d - Duration::from_millis(1));
    }
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

/// Filesystem configuration.
#[derive(Debug, Clone, Copy)]
pub struct DfsConfig {
    /// Block size in bytes (the paper's testbed: 64 MB).
    pub block_size: usize,
    /// Replication factor (the paper's testbed: 3).
    pub replication: usize,
    pub n_datanodes: usize,
    pub io: IoModel,
    /// Page-cache capacity in bytes (0 disables). Reads served from cache
    /// skip the disk cost entirely — see [`cache::PageCache`].
    pub cache_bytes: usize,
}

impl Default for DfsConfig {
    fn default() -> Self {
        Self {
            block_size: 64 * 1024 * 1024,
            replication: 3,
            n_datanodes: 4, // the paper's 4-VM cluster
            io: IoModel::unthrottled(),
            cache_bytes: 0,
        }
    }
}

impl DfsConfig {
    pub fn with_io(mut self, io: IoModel) -> Self {
        self.io = io;
        self
    }

    pub fn with_cache(mut self, cache_bytes: usize) -> Self {
        self.cache_bytes = cache_bytes;
        self
    }

    pub fn with_block_size(mut self, block_size: usize) -> Self {
        assert!(block_size > 0);
        self.block_size = block_size;
        self
    }
}

/// File metadata held by the namenode.
#[derive(Debug, Clone)]
struct FileMeta {
    len: u64,
    blocks: Vec<u64>,
}

/// Block metadata: which datanodes hold replicas.
#[derive(Debug, Clone)]
struct BlockMeta {
    replicas: Vec<usize>,
}

struct Namespace {
    files: BTreeMap<String, FileMeta>,
    blocks: BTreeMap<u64, BlockMeta>,
}

/// The simulated cluster. Cheap to clone (shared state).
#[derive(Clone)]
pub struct Dfs {
    inner: Arc<DfsInner>,
}

struct DfsInner {
    config: DfsConfig,
    namespace: RwLock<Namespace>,
    datanodes: Vec<DataNode>,
    next_block_id: AtomicU64,
    metrics: MetricsInner,
    cache: cache::PageCache,
}

impl Dfs {
    pub fn new(config: DfsConfig) -> Self {
        assert!(config.n_datanodes >= config.replication.max(1));
        let datanodes = (0..config.n_datanodes).map(DataNode::new).collect();
        Self {
            inner: Arc::new(DfsInner {
                config,
                namespace: RwLock::new(Namespace {
                    files: BTreeMap::new(),
                    blocks: BTreeMap::new(),
                }),
                datanodes,
                next_block_id: AtomicU64::new(1),
                metrics: MetricsInner::default(),
                cache: cache::PageCache::new(config.cache_bytes),
            }),
        }
    }

    /// Default in-memory cluster, unthrottled.
    pub fn in_memory() -> Self {
        Self::new(DfsConfig::default())
    }

    pub fn config(&self) -> &DfsConfig {
        &self.inner.config
    }

    /// Write a new file. Fails if the path exists (HDFS files are
    /// write-once, matching snapshot immutability).
    pub fn write(&self, path: &str, data: &[u8]) -> Result<(), DfsError> {
        let _span = obs::span("dfs.write");
        let inner = &self.inner;
        {
            let ns = inner.namespace.read();
            if ns.files.contains_key(path) {
                return Err(DfsError::AlreadyExists(path.to_string()));
            }
        }
        let live: Vec<usize> = inner
            .datanodes
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_alive())
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            return Err(DfsError::NoLiveDatanodes);
        }

        // Replication pipeline: the client pays one pass of write bandwidth
        // (replica forwarding overlaps in HDFS). The pipeline histogram
        // covers the bandwidth charge plus replica placement.
        let pipeline_start = std::time::Instant::now();
        inner
            .config
            .io
            .throttle(data.len(), inner.config.io.write_mbps);

        let replication = inner.config.replication.min(live.len());
        let mut blocks = Vec::new();
        let chunks: Vec<&[u8]> = if data.is_empty() {
            vec![]
        } else {
            data.chunks(inner.config.block_size).collect()
        };
        for chunk in chunks {
            let block_id = inner.next_block_id.fetch_add(1, Ordering::Relaxed);
            let mut replicas = Vec::with_capacity(replication);
            for r in 0..replication {
                let dn = live[(block_id as usize + r) % live.len()];
                inner.datanodes[dn].put_block(block_id, chunk.to_vec());
                replicas.push(dn);
            }
            blocks.push(block_id);
            inner
                .namespace
                .write()
                .blocks
                .insert(block_id, BlockMeta { replicas });
        }
        obs::observe(
            "dfs.write.pipeline_ns",
            pipeline_start.elapsed().as_nanos() as u64,
        );
        inner.namespace.write().files.insert(
            path.to_string(),
            FileMeta {
                len: data.len() as u64,
                blocks,
            },
        );
        inner
            .metrics
            .record_write(data.len() as u64, replication as u64);
        obs::add("dfs.write.bytes", data.len() as u64);
        Ok(())
    }

    /// Read a whole file. Recently read files are served from the page
    /// cache (if configured) without paying the disk cost.
    pub fn read(&self, path: &str) -> Result<Vec<u8>, DfsError> {
        let _span = obs::span("dfs.read");
        let inner = &self.inner;
        if let Some(cached) = inner.cache.get(path) {
            obs::inc("dfs.cache.hits");
            obs::add("dfs.read.bytes", cached.len() as u64);
            inner.metrics.record_read(cached.len() as u64);
            return Ok(cached.as_ref().clone());
        }
        obs::inc("dfs.cache.misses");
        let (len, blocks) = {
            let ns = inner.namespace.read();
            let meta = ns
                .files
                .get(path)
                .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
            (meta.len, meta.blocks.clone())
        };
        inner
            .config
            .io
            .throttle(len as usize, inner.config.io.read_mbps);
        let mut out = Vec::with_capacity(len as usize);
        for block_id in blocks {
            let replicas = {
                let ns = inner.namespace.read();
                ns.blocks
                    .get(&block_id)
                    .map(|b| b.replicas.clone())
                    .unwrap_or_default()
            };
            let mut found = false;
            for dn in replicas {
                if let Some(bytes) = inner.datanodes[dn].get_block(block_id) {
                    out.extend_from_slice(&bytes);
                    found = true;
                    break;
                }
            }
            if !found {
                return Err(DfsError::BlockUnavailable {
                    path: path.to_string(),
                    block: block_id,
                });
            }
        }
        inner.metrics.record_read(out.len() as u64);
        obs::add("dfs.read.bytes", out.len() as u64);
        let shared = std::sync::Arc::new(out);
        inner.cache.put(path, std::sync::Arc::clone(&shared));
        Ok(std::sync::Arc::try_unwrap(shared).unwrap_or_else(|arc| arc.as_ref().clone()))
    }

    /// Delete a file, freeing its blocks. Returns the logical bytes freed.
    pub fn delete(&self, path: &str) -> Result<u64, DfsError> {
        let _span = obs::span("dfs.delete");
        let inner = &self.inner;
        inner.cache.invalidate(path);
        let meta = {
            let mut ns = inner.namespace.write();
            let meta = ns
                .files
                .remove(path)
                .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
            for b in &meta.blocks {
                ns.blocks.remove(b);
            }
            meta
        };
        let mut replicas_freed = 0u64;
        for block_id in &meta.blocks {
            for dn in &inner.datanodes {
                if dn.remove_block(*block_id) {
                    replicas_freed += 1;
                }
            }
        }
        inner.metrics.record_delete(meta.len, replicas_freed);
        obs::inc("dfs.delete.ops");
        obs::add("dfs.delete.bytes", meta.len);
        Ok(meta.len)
    }

    pub fn exists(&self, path: &str) -> bool {
        self.inner.namespace.read().files.contains_key(path)
    }

    pub fn file_len(&self, path: &str) -> Result<u64, DfsError> {
        self.inner
            .namespace
            .read()
            .files
            .get(path)
            .map(|m| m.len)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))
    }

    /// Paths under a prefix, in lexicographic order.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.inner
            .namespace
            .read()
            .files
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Simulate a datanode crash. Blocks with surviving replicas stay
    /// readable; fully-lost blocks error on read.
    pub fn kill_datanode(&self, id: usize) {
        self.inner.datanodes[id].kill();
    }

    pub fn revive_datanode(&self, id: usize) {
        self.inner.datanodes[id].revive();
    }

    /// Page-cache hit/miss counters.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.inner.cache.stats()
    }

    /// Drop all cached file contents (cold-cache measurement boundary).
    pub fn drop_caches(&self) {
        self.inner.cache.clear();
    }

    /// Current usage and traffic counters.
    pub fn metrics(&self) -> DfsMetrics {
        let inner = &self.inner;
        let ns = inner.namespace.read();
        let physical: u64 = inner.datanodes.iter().map(|d| d.bytes_stored()).sum();
        inner.metrics.snapshot(
            ns.files.len() as u64,
            ns.blocks.len() as u64,
            ns.files.values().map(|f| f.len).sum(),
            physical,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let fs = Dfs::in_memory();
        let data = b"hello distributed world".repeat(100);
        fs.write("/traces/day0/snap0", &data).unwrap();
        assert_eq!(fs.read("/traces/day0/snap0").unwrap(), data);
        assert_eq!(
            fs.file_len("/traces/day0/snap0").unwrap(),
            data.len() as u64
        );
        assert!(fs.exists("/traces/day0/snap0"));
        assert!(!fs.exists("/traces/day0/snap1"));
    }

    #[test]
    fn files_are_write_once() {
        let fs = Dfs::in_memory();
        fs.write("/a", b"1").unwrap();
        assert_eq!(
            fs.write("/a", b"2"),
            Err(DfsError::AlreadyExists("/a".into()))
        );
    }

    #[test]
    fn missing_files_error() {
        let fs = Dfs::in_memory();
        assert_eq!(fs.read("/nope"), Err(DfsError::NotFound("/nope".into())));
        assert_eq!(fs.delete("/nope"), Err(DfsError::NotFound("/nope".into())));
        assert!(fs.file_len("/nope").is_err());
    }

    #[test]
    fn multi_block_files_split_and_rejoin() {
        let config = DfsConfig {
            block_size: 1024,
            ..DfsConfig::default()
        };
        let fs = Dfs::new(config);
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        fs.write("/big", &data).unwrap();
        assert_eq!(fs.read("/big").unwrap(), data);
        let m = fs.metrics();
        assert_eq!(m.n_blocks, 10); // ceil(10000/1024)
        assert_eq!(m.logical_bytes, 10_000);
        assert_eq!(m.physical_bytes, 30_000); // replication 3
    }

    #[test]
    fn replication_survives_single_failure() {
        let config = DfsConfig {
            block_size: 512,
            ..DfsConfig::default()
        };
        let fs = Dfs::new(config);
        let data = vec![7u8; 4096];
        fs.write("/resilient", &data).unwrap();
        fs.kill_datanode(0);
        assert_eq!(fs.read("/resilient").unwrap(), data);
        fs.kill_datanode(1);
        assert_eq!(fs.read("/resilient").unwrap(), data);
    }

    #[test]
    fn losing_all_replicas_is_detected() {
        let config = DfsConfig {
            replication: 2,
            n_datanodes: 2,
            ..DfsConfig::default()
        };
        let fs = Dfs::new(config);
        fs.write("/fragile", b"data").unwrap();
        fs.kill_datanode(0);
        fs.kill_datanode(1);
        assert!(matches!(
            fs.read("/fragile"),
            Err(DfsError::BlockUnavailable { .. })
        ));
        // Revival restores access (blocks were retained).
        fs.revive_datanode(0);
        fs.revive_datanode(1);
        assert_eq!(fs.read("/fragile").unwrap(), b"data");
    }

    #[test]
    fn writes_with_no_live_datanodes_fail() {
        let fs = Dfs::in_memory();
        for i in 0..4 {
            fs.kill_datanode(i);
        }
        assert_eq!(fs.write("/x", b"y"), Err(DfsError::NoLiveDatanodes));
    }

    #[test]
    fn delete_frees_space() {
        let fs = Dfs::in_memory();
        fs.write("/tmp/a", &vec![1u8; 1000]).unwrap();
        fs.write("/tmp/b", &vec![2u8; 500]).unwrap();
        assert_eq!(fs.metrics().logical_bytes, 1500);
        assert_eq!(fs.delete("/tmp/a").unwrap(), 1000);
        let m = fs.metrics();
        assert_eq!(m.logical_bytes, 500);
        assert_eq!(m.physical_bytes, 1500);
        assert_eq!(m.n_files, 1);
        assert!(!fs.exists("/tmp/a"));
        // The delete itself is metered, not silently dropped.
        assert_eq!(m.deletes, 1);
        assert_eq!(m.bytes_deleted, 1000);
        assert_eq!(m.replicas_freed, 3); // one block × replication 3
    }

    #[test]
    fn list_by_prefix_is_sorted() {
        let fs = Dfs::in_memory();
        for p in ["/z/1", "/a/2", "/a/1", "/a/10", "/b/1"] {
            fs.write(p, b"x").unwrap();
        }
        assert_eq!(fs.list("/a/"), vec!["/a/1", "/a/10", "/a/2"]);
        assert_eq!(fs.list("/"), vec!["/a/1", "/a/10", "/a/2", "/b/1", "/z/1"]);
        assert!(fs.list("/none").is_empty());
    }

    #[test]
    fn empty_files_are_legal() {
        let fs = Dfs::in_memory();
        fs.write("/empty", b"").unwrap();
        assert_eq!(fs.read("/empty").unwrap(), Vec::<u8>::new());
        assert_eq!(fs.metrics().n_blocks, 0);
    }

    #[test]
    fn metrics_track_traffic() {
        let fs = Dfs::in_memory();
        fs.write("/t", &vec![0u8; 2048]).unwrap();
        fs.read("/t").unwrap();
        fs.read("/t").unwrap();
        let m = fs.metrics();
        assert_eq!(m.writes, 1);
        assert_eq!(m.reads, 2);
        assert_eq!(m.bytes_written, 2048);
        assert_eq!(m.bytes_read, 4096);
    }

    #[test]
    fn throttled_reads_take_proportional_time() {
        let io = IoModel {
            read_mbps: 50.0,
            write_mbps: 50.0,
            seek_us: 0,
        };
        let fs = Dfs::new(DfsConfig::default().with_io(io));
        let data = vec![0u8; 1_000_000]; // 1 MB at 50 MB/s → 20 ms
        let t0 = std::time::Instant::now();
        fs.write("/throttled", &data).unwrap();
        let write_time = t0.elapsed();
        let t1 = std::time::Instant::now();
        fs.read("/throttled").unwrap();
        let read_time = t1.elapsed();
        assert!(write_time >= Duration::from_millis(18), "{write_time:?}");
        assert!(read_time >= Duration::from_millis(18), "{read_time:?}");
        assert!(read_time < Duration::from_millis(200), "{read_time:?}");
    }

    #[test]
    fn cached_rereads_skip_the_disk_cost() {
        let io = IoModel {
            read_mbps: 20.0,
            write_mbps: f64::INFINITY,
            seek_us: 0,
        };
        let fs = Dfs::new(DfsConfig::default().with_io(io).with_cache(10 << 20));
        let data = vec![3u8; 2_000_000]; // 2 MB at 20 MB/s → 100 ms cold
        fs.write("/hot", &data).unwrap();
        let t0 = std::time::Instant::now();
        fs.read("/hot").unwrap();
        let cold = t0.elapsed();
        let t1 = std::time::Instant::now();
        for _ in 0..5 {
            assert_eq!(fs.read("/hot").unwrap().len(), data.len());
        }
        let warm = t1.elapsed() / 5;
        assert!(cold >= Duration::from_millis(90), "{cold:?}");
        assert!(warm < cold / 10, "warm {warm:?} vs cold {cold:?}");
        let (hits, misses) = fs.cache_stats();
        assert_eq!(hits, 5);
        assert_eq!(misses, 1);
        // Deleting invalidates.
        fs.delete("/hot").unwrap();
        assert!(fs.read("/hot").is_err());
    }

    #[test]
    fn small_cache_thrashes_on_large_working_set() {
        let fs = Dfs::new(DfsConfig::default().with_cache(1000));
        for i in 0..10 {
            fs.write(&format!("/f{i}"), &vec![i as u8; 400]).unwrap();
        }
        // Cycle through all files twice: working set 4000 B > 1000 B cache.
        for _ in 0..2 {
            for i in 0..10 {
                fs.read(&format!("/f{i}")).unwrap();
            }
        }
        let (hits, misses) = fs.cache_stats();
        assert_eq!(hits, 0, "LRU cycling over an oversized set never hits");
        assert_eq!(misses, 20);
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let fs = Dfs::in_memory();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let fs = fs.clone();
                scope.spawn(move || {
                    for i in 0..20 {
                        let path = format!("/t{t}/f{i}");
                        let data = vec![t as u8; 100 + i];
                        fs.write(&path, &data).unwrap();
                        assert_eq!(fs.read(&path).unwrap(), data);
                    }
                });
            }
        });
        assert_eq!(fs.metrics().n_files, 160);
    }
}
