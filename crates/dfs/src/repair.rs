//! Namenode repair pass: re-replication and corrupt-replica replacement.
//!
//! HDFS's namenode continuously compares each block's replica count
//! against the target and schedules re-replication on under-replication
//! (crashed datanode) or corruption reports. The simulation runs the same
//! reconciliation as an explicit pass — [`crate::Dfs::repair`] — which the
//! chaos harness invokes between ingest days, after blackouts, and before
//! final verification.
//!
//! Semantics per block, in deterministic (block-id) order:
//!
//! 1. Every replica on a **live** node is fetched and verified against the
//!    namenode CRC-32. Corrupt copies are dropped from the datanode and
//!    the replica list (`corrupt_replicas_dropped`).
//! 2. Replicas recorded on **dead** nodes are kept — the data may return
//!    when the node revives, exactly like HDFS's grace handling.
//! 3. If fewer verified copies exist on live nodes than
//!    `min(replication, live_nodes)`, the block is re-replicated from a
//!    verified source to live nodes that lack a copy (`replicas_added`).
//! 4. A block with no verified live copy and no copy held by a dead node
//!    is `unrecoverable` — actual data loss, which the chaos acceptance
//!    gate requires to be zero.

use crate::node::DataNode;
use crate::{Dfs, Namespace};
use codecs::crc32::crc32;
use std::sync::atomic::Ordering;

/// Outcome of one [`Dfs::repair`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Blocks examined (all blocks in the namespace).
    pub blocks_scanned: u64,
    /// Blocks found with fewer live verified replicas than target.
    pub under_replicated: u64,
    /// New replicas written to live datanodes.
    pub replicas_added: u64,
    /// Checksum-failing copies removed from datanodes.
    pub corrupt_replicas_dropped: u64,
    /// Blocks with no intact copy anywhere (live or crashed): data loss.
    pub unrecoverable: u64,
}

impl RepairReport {
    pub fn merge(&mut self, other: &RepairReport) {
        self.blocks_scanned += other.blocks_scanned;
        self.under_replicated += other.under_replicated;
        self.replicas_added += other.replicas_added;
        self.corrupt_replicas_dropped += other.corrupt_replicas_dropped;
        self.unrecoverable += other.unrecoverable;
    }
}

impl Dfs {
    /// Run one repair pass over every block (see module docs). Safe to run
    /// at any time; deterministic given the cluster state.
    pub fn repair(&self) -> RepairReport {
        let _span = obs::span("dfs.repair");
        let block_ids: Vec<u64> = self.inner.namespace.read().blocks.keys().copied().collect();
        let report = self.repair_blocks(&block_ids);
        self.inner
            .fault
            .stats
            .repair_passes
            .fetch_add(1, Ordering::Relaxed);
        obs::inc("dfs.repair.passes");
        report
    }

    /// Repair only the blocks of one file — the targeted path the
    /// content-addressed store uses when a read fails hash verification,
    /// far cheaper than a full-namespace pass. Same per-block semantics as
    /// [`Dfs::repair`]. Errors with [`crate::DfsError::NotFound`] when the
    /// path has no committed file.
    pub fn repair_file(&self, path: &str) -> Result<RepairReport, crate::DfsError> {
        let _span = obs::span("dfs.repair_file");
        let block_ids: Vec<u64> = {
            let ns = self.inner.namespace.read();
            let meta = ns
                .files
                .get(path)
                .filter(|m| !m.pending)
                .ok_or_else(|| crate::DfsError::NotFound(path.to_string()))?;
            meta.blocks.clone()
        };
        obs::inc("dfs.repair.file_passes");
        Ok(self.repair_blocks(&block_ids))
    }

    /// The reconciliation core shared by [`Dfs::repair`] (all blocks) and
    /// [`Dfs::repair_file`] (one file's blocks).
    fn repair_blocks(&self, block_ids: &[u64]) -> RepairReport {
        let inner = &self.inner;
        let mut report = RepairReport::default();
        let live: Vec<usize> = inner
            .datanodes
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_alive())
            .map(|(i, _)| i)
            .collect();
        let target = inner.config.replication.min(live.len().max(1));

        for &block_id in block_ids {
            let Some((replicas, crc)) = inner
                .namespace
                .read()
                .blocks
                .get(&block_id)
                .map(|b| (b.replicas.clone(), b.crc))
            else {
                continue; // deleted while we scanned
            };
            report.blocks_scanned += 1;

            // Verify live copies; partition the replica list.
            let mut kept: Vec<usize> = Vec::with_capacity(replicas.len());
            let mut verified_live: Vec<usize> = Vec::new();
            let mut source: Option<Vec<u8>> = None;
            let mut dead_holding = 0usize;
            for dn in replicas {
                let node: &DataNode = &inner.datanodes[dn];
                if !node.is_alive() {
                    if node.has_block(block_id) {
                        dead_holding += 1;
                        kept.push(dn); // may come back on revival
                    }
                    continue;
                }
                match node.get_block(block_id) {
                    Some(bytes) if crc32(&bytes) == crc => {
                        if source.is_none() {
                            source = Some(bytes);
                        }
                        verified_live.push(dn);
                        kept.push(dn);
                    }
                    Some(_) => {
                        node.remove_block(block_id);
                        forget_corrupt(&mut inner.namespace.write(), block_id, dn);
                        report.corrupt_replicas_dropped += 1;
                        obs::inc("dfs.repair.corrupt_dropped");
                    }
                    None => {
                        // Live node lost the copy (should not happen in the
                        // simulation, but stay conservative): drop it.
                    }
                }
            }

            if verified_live.len() < target {
                report.under_replicated += 1;
                obs::inc("dfs.repair.under_replicated");
            }

            match source {
                Some(data) => {
                    // Re-replicate to live nodes lacking a copy, lowest
                    // index first, up to the target.
                    for &dn in &live {
                        if verified_live.len() >= target {
                            break;
                        }
                        if kept.contains(&dn) {
                            continue;
                        }
                        inner.datanodes[dn].put_block(block_id, data.clone());
                        forget_corrupt(&mut inner.namespace.write(), block_id, dn);
                        kept.push(dn);
                        verified_live.push(dn);
                        report.replicas_added += 1;
                        obs::inc("dfs.repair.replicas_added");
                    }
                }
                None if dead_holding == 0 => {
                    report.unrecoverable += 1;
                    obs::inc("dfs.repair.unrecoverable");
                }
                None => {
                    // Only crashed nodes hold copies: wait for revival.
                }
            }

            if let Some(meta) = inner.namespace.write().blocks.get_mut(&block_id) {
                meta.replicas = kept;
            }
        }

        report
    }
}

/// A replica was dropped or freshly rewritten: clear its corrupt mark.
fn forget_corrupt(ns: &mut Namespace, block_id: u64, dn: usize) {
    ns.corrupt.remove(&(block_id, dn));
}

#[cfg(test)]
mod tests {
    use crate::{Dfs, DfsConfig};

    fn small_cluster() -> Dfs {
        Dfs::new(DfsConfig {
            block_size: 256,
            replication: 3,
            n_datanodes: 4,
            ..DfsConfig::default()
        })
    }

    #[test]
    fn clean_cluster_needs_no_repair() {
        let fs = small_cluster();
        fs.write("/a", &[1u8; 1000]).unwrap();
        let r = fs.repair();
        assert_eq!(r.blocks_scanned, 4);
        assert_eq!(r.under_replicated, 0);
        assert_eq!(r.replicas_added, 0);
        assert_eq!(r.corrupt_replicas_dropped, 0);
        assert_eq!(r.unrecoverable, 0);
    }

    #[test]
    fn crash_then_repair_restores_replication() {
        let fs = small_cluster();
        fs.write("/a", &[7u8; 2048]).unwrap(); // 8 blocks × 3 replicas
        let before = fs.metrics().physical_bytes;
        fs.kill_datanode(1);
        let r = fs.repair();
        assert!(r.under_replicated > 0, "{r:?}");
        assert_eq!(r.replicas_added, r.under_replicated);
        assert_eq!(r.unrecoverable, 0);
        // Node 1's copies survive on its disk AND fresh replicas exist, so
        // physical usage grew; the file reads back fine without node 1.
        assert!(fs.metrics().physical_bytes > before);
        assert_eq!(fs.read("/a").unwrap(), vec![7u8; 2048]);
        // A second pass finds nothing left to do.
        let r2 = fs.repair();
        assert_eq!(r2.replicas_added, 0);
        assert_eq!(r2.under_replicated, 0);
    }

    #[test]
    fn corrupt_replicas_are_dropped_and_replaced() {
        let fs = small_cluster();
        fs.write("/a", &[9u8; 256]).unwrap(); // exactly one block
                                              // Corrupt one replica at rest on whichever node holds it first.
        let dn = (0..4)
            .find(|&i| fs.corrupt_replica_for_test("/a", i))
            .expect("some node holds the block");
        let r = fs.repair();
        assert_eq!(r.corrupt_replicas_dropped, 1);
        assert_eq!(r.replicas_added, 1);
        assert_eq!(r.unrecoverable, 0);
        let _ = dn;
        assert_eq!(fs.read("/a").unwrap(), vec![9u8; 256]);
        assert_eq!(fs.repair().corrupt_replicas_dropped, 0);
    }

    #[test]
    fn repair_file_fixes_only_that_file() {
        let fs = small_cluster();
        fs.write("/a", &[5u8; 512]).unwrap(); // 2 blocks
        fs.write("/b", &[6u8; 512]).unwrap();
        // Corrupt one replica of each file; a targeted pass on /a must fix
        // /a and leave /b's corruption for a later full pass.
        let _ = (0..4).find(|&i| fs.corrupt_replica_for_test("/a", i));
        let _ = (0..4).find(|&i| fs.corrupt_replica_for_test("/b", i));
        let r = fs.repair_file("/a").unwrap();
        assert_eq!(r.blocks_scanned, 2);
        assert_eq!(r.corrupt_replicas_dropped, 1);
        assert_eq!(r.replicas_added, 1);
        assert_eq!(fs.read("/a").unwrap(), vec![5u8; 512]);
        let full = fs.repair();
        assert_eq!(full.corrupt_replicas_dropped, 1, "only /b was left");
        assert!(fs.repair_file("/nope").is_err());
    }

    #[test]
    fn total_loss_is_reported_unrecoverable() {
        let fs = small_cluster();
        fs.write("/a", &[3u8; 100]).unwrap();
        // Corrupt every replica of the single block.
        for i in 0..4 {
            fs.corrupt_replica_for_test("/a", i);
        }
        let r = fs.repair();
        assert_eq!(r.corrupt_replicas_dropped, 3);
        assert_eq!(r.unrecoverable, 1);
        assert!(fs.read("/a").is_err());
    }
}
