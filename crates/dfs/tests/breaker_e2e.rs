//! End-to-end circuit-breaker behaviour through the public `Dfs` API:
//! trip on consecutive verified-read failures, steer reads around the
//! open node, degrade to an unavailability error (never a hang) when
//! every replica is open, and recover half-open → closed after repair.
//!
//! Replica placement is deterministic (`live[(block_id + r) % live]`),
//! so with 3 datanodes the first replica of block `b` sits on node
//! `b % 3` — the tests below lean on that to aim failures at one node.

use dfs::{BreakerConfig, BreakerState, Dfs, DfsConfig, DfsError};

/// 3 replicas over exactly 3 nodes, so block `b`'s first replica sits
/// on node `b % 3` and every node holds a copy of every block.
fn small_blocks() -> DfsConfig {
    DfsConfig {
        replication: 3,
        n_datanodes: 3,
        ..DfsConfig::default()
    }
    .with_block_size(64)
}

/// One-block payload (under the 64-byte test block size).
fn payload(tag: u8) -> Vec<u8> {
    vec![tag; 48]
}

#[test]
fn consecutive_corrupt_reads_trip_the_breaker_and_failover_still_serves() {
    let fs = Dfs::new(small_blocks().with_breaker(BreakerConfig::new(2, 100)));
    // Blocks 1..=4; blocks 1 and 4 both place their first replica on
    // node 1 (1 % 3 == 4 % 3 with 3 live nodes).
    for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
        fs.write(name, &payload(i as u8)).unwrap();
    }
    assert!(fs.corrupt_replica_for_test("a", 1));
    assert!(fs.corrupt_replica_for_test("d", 1));

    // Both reads hit node 1 first, detect the damage, fail over to a
    // healthy replica — the answers stay correct throughout.
    assert_eq!(fs.read("a").unwrap(), payload(0));
    assert_eq!(fs.breaker_state(1), BreakerState::Closed, "one strike");
    assert_eq!(fs.read("d").unwrap(), payload(3));
    assert_eq!(fs.breaker_state(1), BreakerState::Open, "second strike");
    let s = fs.breaker_stats();
    assert_eq!(s.trips, 1);
    assert_eq!(fs.fault_stats().checksum_mismatches, 2);

    // While open, node 1 is skipped wherever it would be consulted.
    fs.drop_caches();
    assert_eq!(fs.read("a").unwrap(), payload(0));
    assert_eq!(fs.read("b").unwrap(), payload(1));
    assert_eq!(fs.breaker_state(1), BreakerState::Open);
}

#[test]
fn breaker_recovers_half_open_to_closed_after_repair() {
    let fs = Dfs::new(small_blocks().with_breaker(BreakerConfig::new(2, 3)));
    for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
        fs.write(name, &payload(i as u8)).unwrap();
    }
    fs.corrupt_replica_for_test("a", 1);
    fs.corrupt_replica_for_test("d", 1);
    fs.read("a").unwrap();
    fs.read("d").unwrap();
    assert_eq!(fs.breaker_state(1), BreakerState::Open);

    // Repair drops the corrupt copies and re-replicates good ones.
    let report = fs.repair();
    assert!(report.corrupt_replicas_dropped >= 2);

    // The cooldown is measured in read operations: burn it down with
    // reads that never consult node 1 first.
    fs.drop_caches();
    for _ in 0..3 {
        assert_eq!(fs.read("b").unwrap(), payload(1));
        fs.drop_caches();
    }
    assert_eq!(fs.breaker_state(1), BreakerState::HalfOpen);

    // Repair re-appended node 1's fresh copy at the end of the replica
    // list, so force the next read to consult it: with the other nodes
    // down, the read probes node 1, the repaired replica verifies, and
    // the breaker closes.
    fs.kill_datanode(0);
    fs.kill_datanode(2);
    assert_eq!(fs.read("a").unwrap(), payload(0));
    assert_eq!(fs.breaker_state(1), BreakerState::Closed);
    fs.revive_datanode(0);
    fs.revive_datanode(2);
    let s = fs.breaker_stats();
    assert_eq!(s.probes, 1);
    assert_eq!(s.recoveries, 1);
    assert_eq!(s.reopens, 0);
}

#[test]
fn all_replicas_open_degrades_to_unavailable_not_an_error_loop() {
    // Single replica on a single node: one corrupt read trips the
    // breaker (K = 1) and the node is the block's only home.
    let config = DfsConfig {
        replication: 1,
        n_datanodes: 1,
        ..small_blocks()
    }
    .with_breaker(BreakerConfig::new(1, 1_000));
    let fs = Dfs::new(config);
    fs.write("a", &payload(0)).unwrap();
    fs.write("b", &payload(1)).unwrap();
    fs.corrupt_replica_for_test("a", 0);
    assert!(matches!(fs.read("a"), Err(DfsError::BlockCorrupt { .. })));
    assert_eq!(fs.breaker_state(0), BreakerState::Open);

    // "b" is healthy, but its only replica sits behind the open breaker:
    // the read reports the block unavailable instead of spinning on the
    // sick node. Upstream, that degrades to partial coverage.
    let err = fs.read("b");
    assert!(
        matches!(err, Err(DfsError::BlockUnavailable { .. })),
        "{err:?}"
    );
    assert!(fs.breaker_stats().skipped >= 1);
}

#[test]
fn disabled_breaker_preserves_the_legacy_read_path() {
    let fs = Dfs::new(small_blocks());
    for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
        fs.write(name, &payload(i as u8)).unwrap();
    }
    fs.corrupt_replica_for_test("a", 1);
    fs.corrupt_replica_for_test("d", 1);
    fs.read("a").unwrap();
    fs.read("d").unwrap();
    assert_eq!(fs.breaker_state(1), BreakerState::Closed);
    assert_eq!(fs.breaker_stats().trips, 0);
}
