//! Stress and fault-injection tests for the simulated cluster.

use dfs::{Dfs, DfsConfig, IoModel};

#[test]
fn concurrent_cached_readers_see_consistent_data() {
    let fs = Dfs::new(DfsConfig::default().with_cache(1 << 20));
    for i in 0..16 {
        fs.write(&format!("/hot/{i}"), &vec![i as u8; 4096])
            .unwrap();
    }
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let fs = fs.clone();
            scope.spawn(move || {
                for round in 0..50 {
                    let i = round % 16;
                    let data = fs.read(&format!("/hot/{i}")).unwrap();
                    assert_eq!(data.len(), 4096);
                    assert!(data.iter().all(|&b| b == i as u8));
                }
            });
        }
    });
    let (hits, misses) = fs.cache_stats();
    assert_eq!(hits + misses, 8 * 50);
    assert!(
        hits > misses,
        "working set fits: hits {hits} misses {misses}"
    );
}

#[test]
fn reads_race_with_datanode_failures() {
    let fs = Dfs::in_memory(); // replication 3 over 4 nodes
    for i in 0..32 {
        fs.write(&format!("/f{i}"), &vec![0xAB; 1000]).unwrap();
    }
    std::thread::scope(|scope| {
        // Reader threads.
        for _ in 0..4 {
            let fs = fs.clone();
            scope.spawn(move || {
                for round in 0..200 {
                    let i = round % 32;
                    // With at most one node down, every read must succeed.
                    let data = fs.read(&format!("/f{i}")).unwrap();
                    assert_eq!(data.len(), 1000);
                }
            });
        }
        // A flapping datanode.
        let fs2 = fs.clone();
        scope.spawn(move || {
            for _ in 0..50 {
                fs2.kill_datanode(0);
                std::thread::yield_now();
                fs2.revive_datanode(0);
            }
        });
    });
}

#[test]
fn many_small_files_account_correctly() {
    let fs = Dfs::new(DfsConfig::default().with_block_size(256));
    let mut logical = 0u64;
    for i in 0..500usize {
        let data = vec![(i % 251) as u8; 100 + i];
        logical += data.len() as u64;
        fs.write(&format!("/many/{i:04}"), &data).unwrap();
    }
    let m = fs.metrics();
    assert_eq!(m.n_files, 500);
    assert_eq!(m.logical_bytes, logical);
    assert_eq!(m.physical_bytes, logical * 3);
    // Multi-block files: ceil(len/256) blocks each.
    let expected_blocks: u64 = (0..500usize)
        .map(|i| ((100 + i) as u64).div_ceil(256))
        .sum();
    assert_eq!(m.n_blocks, expected_blocks);

    // Delete half, verify accounting shrinks exactly.
    let mut freed = 0u64;
    for i in (0..500usize).step_by(2) {
        freed += fs.delete(&format!("/many/{i:04}")).unwrap();
    }
    assert_eq!(fs.metrics().logical_bytes, logical - freed);
    assert_eq!(fs.metrics().n_files, 250);
}

#[test]
fn throttled_writes_scale_with_replication_free_bandwidth() {
    // The client pays one pass of write bandwidth regardless of
    // replication (pipelined), so doubling data doubles time.
    let io = IoModel {
        read_mbps: f64::INFINITY,
        write_mbps: 100.0,
        seek_us: 0,
    };
    let fs = Dfs::new(DfsConfig::default().with_io(io));
    let t0 = std::time::Instant::now();
    fs.write("/small", &vec![0; 500_000]).unwrap();
    let small = t0.elapsed();
    let t1 = std::time::Instant::now();
    fs.write("/large", &vec![0; 2_000_000]).unwrap();
    let large = t1.elapsed();
    let ratio = large.as_secs_f64() / small.as_secs_f64();
    assert!((2.0..8.0).contains(&ratio), "expected ~4x, got {ratio:.1}x");
}

#[test]
fn listing_scales_and_stays_ordered() {
    let fs = Dfs::in_memory();
    for i in (0..300).rev() {
        fs.write(&format!("/spate/2016/01/{:02}/{i:06}", i % 28 + 1), b"x")
            .unwrap();
    }
    let all = fs.list("/spate/");
    assert_eq!(all.len(), 300);
    assert!(all.windows(2).all(|w| w[0] < w[1]), "lexicographic order");
    let day_one = fs.list("/spate/2016/01/05/");
    for p in &day_one {
        assert!(p.starts_with("/spate/2016/01/05/"));
    }
}
