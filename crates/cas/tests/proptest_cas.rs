//! Property tests for the content-addressed store invariants:
//!
//! 1. chunk → hash → chunk: splitting any payload and reassembling the
//!    addressed pieces reproduces the payload byte-for-byte, and piece
//!    hashes are stable.
//! 2. refcounts never underflow (and never leak) under arbitrary
//!    interleavings of ingest and decay.
//! 3. a flipped bit anywhere in a stored pack or manifest is caught by
//!    content verification before bytes reach the query layer.

use cas::chunker::{assemble, split, Chunking};
use cas::{CasConfig, CasError, CasStore, ChunkHash};
use dfs::{Dfs, DfsConfig};
use proptest::prelude::*;

fn store() -> (Dfs, CasStore) {
    let dfs = Dfs::new(DfsConfig::default());
    let cas = CasStore::new(dfs.clone(), CasConfig::default());
    (dfs, cas)
}

/// A payload that exercises the columnar path when `snapshotish` and the
/// blob path otherwise.
fn payload(data: &[u8], rows: usize, snapshotish: bool) -> Vec<u8> {
    if !snapshotish {
        return data.to_vec();
    }
    let mut out = format!("#SNAPSHOT epoch=1 ts=2016-01-18T00:00\n#TABLE CDR rows={rows} cols=3\n")
        .into_bytes();
    for r in 0..rows {
        let a = data.get(r % data.len().max(1)).copied().unwrap_or(0);
        out.extend_from_slice(format!("{a},280-01,{}\n", r % 7).as_bytes());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn split_hash_assemble_roundtrips(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        rows in 0usize..300,
        snapshotish in any::<bool>(),
    ) {
        let raw = payload(&data, rows, snapshotish);
        let cfg = Chunking::default();
        let (layout, pieces) = split(&raw, &cfg);
        // Hashes are stable and identify content.
        for p in &pieces {
            prop_assert_eq!(ChunkHash::of(p), ChunkHash::of(p));
        }
        let back = assemble(&layout, &pieces).expect("own split must assemble");
        prop_assert_eq!(back, raw);
    }

    #[test]
    fn refcounts_survive_interleaved_ingest_and_decay(
        ops in proptest::collection::vec((0u32..12, any::<bool>(), any::<u8>()), 1..40),
    ) {
        let (_dfs, cas) = store();
        let mut live: Vec<u32> = Vec::new();
        for (epoch, ingest, fill) in ops {
            if ingest {
                // Repetitive payloads force cross-epoch chunk sharing.
                let raw = payload(&[fill, fill / 2, 7], 100 + epoch as usize, true);
                match cas.put_epoch(epoch, &raw) {
                    Ok(_) => live.push(epoch),
                    Err(CasError::AlreadyStored(_)) => {}
                    Err(e) => panic!("put failed: {e}"),
                }
            } else {
                // Decay: dropping a missing epoch is a no-op, never an
                // underflow (drop_epoch debug_asserts refcounts inside).
                let freed = cas.drop_epoch(epoch).expect("drop must not fail");
                let was_live = live.iter().position(|&e| e == epoch);
                if let Some(i) = was_live {
                    live.swap_remove(i);
                } else {
                    prop_assert_eq!(freed, 0);
                }
            }
            // Invariants after every step: no zero-ref chunk is retained,
            // state accounting matches the filesystem listing.
            prop_assert_eq!(cas.unreferenced_chunks(), 0);
            prop_assert_eq!(cas.bytes_stored(), cas.listed_bytes());
        }
        // Full decay always reaches an empty store.
        for e in live {
            cas.drop_epoch(e).unwrap();
        }
        prop_assert_eq!(cas.bytes_stored(), 0);
        prop_assert_eq!(cas.listed_bytes(), 0);
        prop_assert_eq!(cas.chunk_count(), 0);
        prop_assert_eq!(cas.pack_count(), 0);
    }

    #[test]
    fn any_flipped_bit_is_caught_before_the_query_layer(
        data in proptest::collection::vec(any::<u8>(), 64..2048),
        rows in 10usize..200,
        snapshotish in any::<bool>(),
        victim in any::<u16>(),
        bit in 0u8..8,
    ) {
        let (dfs, cas) = store();
        let raw = payload(&data, rows, snapshotish);
        cas.put_epoch(5, &raw).unwrap();
        prop_assert_eq!(cas.get_epoch(5).unwrap(), raw.clone());

        // Flip one bit in one stored file (pack or manifest alike). The
        // dfs is write-once, so model at-rest corruption by replacing the
        // file with tampered bytes — the namenode checksums then match the
        // tampered content, leaving content-hash verification as the only
        // line of defence.
        let files: Vec<String> = dfs.list("/cas/");
        prop_assert!(!files.is_empty());
        let path = &files[victim as usize % files.len()];
        let mut bytes = dfs.read(path).unwrap();
        let idx = victim as usize % bytes.len();
        bytes[idx] ^= 1 << bit;
        dfs.delete(path).unwrap();
        dfs.write(path, &bytes).unwrap();

        match cas.get_epoch(5) {
            Err(CasError::Corrupt(_)) | Err(CasError::Codec(_)) | Err(CasError::Dfs(_)) => {}
            Err(e) => panic!("unexpected error class: {e}"),
            Ok(got) => {
                // The only acceptable success is byte-identical payload
                // (never silently wrong data past the verifier).
                prop_assert_eq!(got, raw);
            }
        }
    }
}
