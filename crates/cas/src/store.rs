//! The content-addressed store over the replicated filesystem.
//!
//! Layout under the configured root:
//!
//! ```text
//! <root>/<y>/<m>/<d>/<epoch>.mf      epoch manifest (committed via .tmp + rename)
//! <root>/packs/<hash>.pk             pack: the epoch's *new* pieces, jointly compressed,
//!                                    named by the hash of the stored (compressed) bytes
//! <root>/merkle/...                  persisted day/month/root manifests (rebuildable)
//! ```
//!
//! Pieces dedup by content hash: a piece already stored (by any epoch, in
//! any column) is only *referenced*, never rewritten. Refcounts live in
//! memory and are rebuilt from the on-disk manifests by [`CasStore::recover`],
//! so the durable state is exactly {manifests, packs}. Dropping an epoch
//! decrements its references and deletes any pack whose last live chunk
//! went away — decay *is* garbage collection, and all byte accounting
//! flows through [`Dfs::delete`] like the path-addressed store.

use crate::chunker::{self, Chunking};
use crate::hash::ChunkHash;
use crate::manifest::{build_merkle, ChunkEntry, EpochManifest, Merkle};
use crate::CasError;
use codecs::{Codec, SevenzLite};
use dfs::{Dfs, DfsError};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use telco_trace::time::EpochId;

/// Staging suffix for manifest commits (matches the storage layer's).
pub const TMP_SUFFIX: &str = ".tmp";

/// Store configuration.
#[derive(Clone)]
pub struct CasConfig {
    /// Namespace root on the filesystem.
    pub root: String,
    /// Pack and manifest compression codec. Packs are written once per
    /// epoch and read piecemeal, so the default is the strongest Table-I
    /// codec (`7z-lite`) rather than the path store's `gzip-lite`: the
    /// asymmetric cost profile (slow compress, fast decompress) is exactly
    /// the write-once/read-many regime the paper optimizes for.
    pub codec: Arc<dyn Codec>,
    /// Piece-cutting parameters.
    pub chunking: Chunking,
}

impl Default for CasConfig {
    fn default() -> Self {
        Self {
            root: "/cas".to_string(),
            codec: Arc::new(SevenzLite::default()),
            chunking: Chunking::default(),
        }
    }
}

impl CasConfig {
    pub fn with_root(mut self, root: &str) -> Self {
        self.root = root.trim_end_matches('/').to_string();
        self
    }
}

/// Lifetime counters (monotonic; see also the `cas.*` obs metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CasStats {
    pub puts: u64,
    pub gets: u64,
    /// Piece occurrences resolved to an already-known chunk.
    pub dedup_hits: u64,
    /// Uncompressed bytes those occurrences would have added.
    pub dedup_bytes_saved: u64,
    pub new_chunks: u64,
    pub gc_packs_deleted: u64,
    pub gc_bytes_reclaimed: u64,
    pub verify_mismatches: u64,
    pub repair_refetches: u64,
}

/// What [`CasStore::put_epoch`] did.
#[derive(Debug, Clone)]
pub struct PutReceipt {
    /// Committed manifest path (the epoch's "leaf" on the filesystem).
    pub path: String,
    pub raw_len: u64,
    /// Marginal bytes this epoch added: new pack + manifest.
    pub new_bytes: u64,
    /// Piece occurrences that hit an existing chunk.
    pub dedup_hits: u64,
    pub manifest_hash: ChunkHash,
}

/// What [`CasStore::recover`] rebuilt and swept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CasRecoverReport {
    pub manifests_indexed: u64,
    pub corrupt_manifests_dropped: u64,
    pub orphan_tmp_deleted: u64,
    pub orphan_packs_deleted: u64,
    pub orphan_bytes_reclaimed: u64,
}

struct ChunkInfo {
    pack: ChunkHash,
    offset: u64,
    len: u64,
    refs: u64,
}

struct PackInfo {
    /// Distinct chunks in this pack with refs > 0; the pack file is
    /// deleted when this reaches zero.
    live_chunks: u64,
    stored_len: u64,
}

struct EpochRec {
    manifest_hash: ChunkHash,
    manifest_len: u64,
    /// Per-occurrence chunk references (with multiplicity), for release.
    chunk_refs: Vec<ChunkHash>,
}

#[derive(Default)]
struct State {
    chunks: HashMap<ChunkHash, ChunkInfo>,
    packs: HashMap<ChunkHash, PackInfo>,
    epochs: BTreeMap<u32, EpochRec>,
    stats: CasStats,
}

/// The content-addressed store. Cheap to clone (shared state).
#[derive(Clone)]
pub struct CasStore {
    dfs: Dfs,
    cfg: Arc<CasConfig>,
    state: Arc<Mutex<State>>,
}

impl CasStore {
    pub fn new(dfs: Dfs, cfg: CasConfig) -> Self {
        Self {
            dfs,
            cfg: Arc::new(cfg),
            state: Arc::new(Mutex::new(State::default())),
        }
    }

    /// [`Self::new`] plus a recovery scan of whatever the filesystem holds.
    pub fn open(dfs: Dfs, cfg: CasConfig) -> (Self, CasRecoverReport) {
        let store = Self::new(dfs, cfg);
        let report = store.recover();
        (store, report)
    }

    /// Rebuild this store under a different namespace root with *fresh*
    /// state (for side-by-side stores on one filesystem; call before any
    /// writes, or follow with [`Self::recover`]).
    pub fn with_root(self, root: &str) -> Self {
        let mut cfg = (*self.cfg).clone();
        cfg.root = root.trim_end_matches('/').to_string();
        Self::new(self.dfs, cfg)
    }

    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    pub fn root(&self) -> &str {
        &self.cfg.root
    }

    pub fn codec_name(&self) -> &'static str {
        self.cfg.codec.name()
    }

    /// Manifest path of an epoch, mirroring the temporal hierarchy:
    /// `<root>/<y>/<m>/<d>/<epoch>.mf`.
    pub fn manifest_path(&self, epoch: u32) -> String {
        let c = EpochId(epoch).civil();
        format!(
            "{}/{:04}/{:02}/{:02}/{:010}.mf",
            self.cfg.root, c.year, c.month, c.day, epoch
        )
    }

    fn pack_path(&self, hash: &ChunkHash) -> String {
        format!("{}/packs/{}.pk", self.cfg.root, hash.hex())
    }

    fn packs_prefix(&self) -> String {
        format!("{}/packs/", self.cfg.root)
    }

    fn merkle_prefix(&self) -> String {
        format!("{}/merkle/", self.cfg.root)
    }

    /// Chunk, dedup and persist one epoch payload.
    ///
    /// Commit order: pack first (content-addressed, so a crash leftover is
    /// harmless garbage), then the manifest via `.tmp` + atomic rename.
    /// Nothing is referenced until the manifest commits, so a failed put
    /// leaves at most an orphan pack that [`Self::gc`] / [`Self::recover`]
    /// sweep.
    pub fn put_epoch(&self, epoch: u32, raw: &[u8]) -> Result<PutReceipt, CasError> {
        let _span = obs::span("cas.put");
        let mut st = self.state.lock();
        if st.epochs.contains_key(&epoch) {
            return Err(CasError::AlreadyStored(epoch));
        }
        let (layout, pieces) = chunker::split(raw, &self.cfg.chunking);

        // Resolve every piece to a chunk: known (in the store or earlier in
        // this epoch) or new (appended to this epoch's pack buffer).
        struct Pending {
            hash: ChunkHash,
            existing_pack: Option<ChunkHash>, // None: this epoch's new pack
            offset: u64,
            len: u64,
        }
        let mut table: Vec<Pending> = Vec::new();
        let mut index_of: HashMap<ChunkHash, u32> = HashMap::new();
        let mut refs: Vec<u32> = Vec::with_capacity(pieces.len());
        let mut pack_buf: Vec<u8> = Vec::new();
        let mut dedup_hits = 0u64;
        let mut dedup_saved = 0u64;
        for piece in &pieces {
            let h = ChunkHash::of(piece);
            if let Some(&i) = index_of.get(&h) {
                refs.push(i);
                dedup_hits += 1;
                dedup_saved += piece.len() as u64;
                continue;
            }
            let pending = if let Some(info) = st.chunks.get(&h) {
                dedup_hits += 1;
                dedup_saved += piece.len() as u64;
                Pending {
                    hash: h,
                    existing_pack: Some(info.pack),
                    offset: info.offset,
                    len: info.len,
                }
            } else {
                let offset = pack_buf.len() as u64;
                pack_buf.extend_from_slice(piece);
                Pending {
                    hash: h,
                    existing_pack: None,
                    offset,
                    len: piece.len() as u64,
                }
            };
            index_of.insert(h, table.len() as u32);
            refs.push(table.len() as u32);
            table.push(pending);
        }

        // Compress + address the new pack (if this epoch added anything).
        let new_pack: Option<(ChunkHash, Vec<u8>)> = if pack_buf.is_empty() {
            None
        } else {
            let bytes = self.cfg.codec.compress_metered(&pack_buf);
            (!bytes.is_empty()).then(|| (ChunkHash::of(&bytes), bytes))
        };

        // Materialize the manifest's pack table in first-use order.
        let mut packs: Vec<ChunkHash> = Vec::new();
        let mut pack_index: HashMap<ChunkHash, u32> = HashMap::new();
        let mut resolve = |ph: ChunkHash| -> u32 {
            *pack_index.entry(ph).or_insert_with(|| {
                packs.push(ph);
                packs.len() as u32 - 1
            })
        };
        let chunks: Vec<ChunkEntry> = table
            .iter()
            .map(|p| ChunkEntry {
                hash: p.hash,
                pack: resolve(
                    p.existing_pack
                        .unwrap_or_else(|| new_pack.as_ref().expect("new chunk needs a pack").0),
                ),
                offset: p.offset,
                len: p.len,
            })
            .collect();

        let manifest = EpochManifest {
            epoch,
            raw_len: raw.len() as u64,
            layout,
            packs,
            chunks,
            refs: refs.clone(),
        };
        // Manifests are compressed on disk like packs; their content
        // address (and the Merkle leaf) is the hash of the stored bytes.
        let mbytes = self.cfg.codec.compress_metered(&manifest.encode());
        let manifest_hash = ChunkHash::of(&mbytes);
        let path = self.manifest_path(epoch);

        // Durable commit: pack, then manifest (staged + atomic rename).
        let mut pack_written = 0u64;
        if let Some((ph, bytes)) = &new_pack {
            if self.write_if_absent(&self.pack_path(ph), bytes)? {
                pack_written = bytes.len() as u64;
            }
        }
        if let Err(e) = self.commit_manifest(&path, &mbytes) {
            if pack_written > 0 {
                if let Some((ph, _)) = &new_pack {
                    let _ = self.dfs.delete(&self.pack_path(ph));
                }
            }
            return Err(e);
        }

        // In-memory commit: chunk table, refcounts, pack liveness.
        let new_chunk_count = table.iter().filter(|p| p.existing_pack.is_none()).count() as u64;
        if let Some((ph, bytes)) = &new_pack {
            st.packs.entry(*ph).or_insert(PackInfo {
                live_chunks: 0,
                stored_len: bytes.len() as u64,
            });
            for p in table.iter().filter(|p| p.existing_pack.is_none()) {
                st.chunks.entry(p.hash).or_insert(ChunkInfo {
                    pack: *ph,
                    offset: p.offset,
                    len: p.len,
                    refs: 0,
                });
            }
        }
        let chunk_refs: Vec<ChunkHash> = refs
            .iter()
            .map(|&i| manifest.chunks[i as usize].hash)
            .collect();
        for h in &chunk_refs {
            let (pack, first_ref) = {
                let info = st.chunks.get_mut(h).expect("referenced chunk must exist");
                let first = info.refs == 0;
                info.refs += 1;
                (info.pack, first)
            };
            if first_ref {
                st.packs
                    .get_mut(&pack)
                    .expect("chunk's pack must exist")
                    .live_chunks += 1;
            }
        }
        st.epochs.insert(
            epoch,
            EpochRec {
                manifest_hash,
                manifest_len: mbytes.len() as u64,
                chunk_refs,
            },
        );
        st.stats.puts += 1;
        st.stats.dedup_hits += dedup_hits;
        st.stats.dedup_bytes_saved += dedup_saved;
        st.stats.new_chunks += new_chunk_count;
        obs::add("cas.dedup.hits", dedup_hits);
        obs::add("cas.dedup.bytes_saved", dedup_saved);
        obs::add("cas.put.new_chunks", new_chunk_count);
        obs::add("cas.put.bytes_written", pack_written + mbytes.len() as u64);

        Ok(PutReceipt {
            path,
            raw_len: raw.len() as u64,
            new_bytes: pack_written + mbytes.len() as u64,
            dedup_hits,
            manifest_hash,
        })
    }

    /// Write-once helper: `Ok(true)` if written, `Ok(false)` if content
    /// with this address already exists (the dedup fast path).
    fn write_if_absent(&self, path: &str, data: &[u8]) -> Result<bool, CasError> {
        match self.dfs.write_if_absent(path, data) {
            Ok(written) => Ok(written),
            Err(e) => Err(e.into()),
        }
    }

    fn commit_manifest(&self, path: &str, bytes: &[u8]) -> Result<(), CasError> {
        let tmp = format!("{path}{TMP_SUFFIX}");
        match self.dfs.delete(&tmp) {
            Ok(_) | Err(DfsError::NotFound(_)) => {}
            Err(e) => return Err(e.into()),
        }
        self.dfs.write(&tmp, bytes)?;
        if let Err(e) = self.dfs.rename(&tmp, path) {
            let _ = self.dfs.delete(&tmp);
            return Err(e.into());
        }
        Ok(())
    }

    /// Reassemble an epoch payload, verifying every hash on the way:
    /// manifest bytes against the recorded Merkle leaf, pack bytes against
    /// their address, every piece against its chunk hash, and the total
    /// length. A verification failure triggers one targeted
    /// [`Dfs::repair_file`] + re-read before giving up.
    pub fn get_epoch(&self, epoch: u32) -> Result<Vec<u8>, CasError> {
        let _span = obs::span("cas.get");
        // Per-query cost accounting: the dfs reads below (manifest +
        // packs) were initiated by the CAS, so they bill to "cas".
        let _src = obs::cost::attribute_reads_to("cas");
        let expect = {
            let mut st = self.state.lock();
            st.stats.gets += 1;
            st.epochs
                .get(&epoch)
                .map(|r| r.manifest_hash)
                .ok_or(CasError::Missing(epoch))?
        };
        let path = self.manifest_path(epoch);
        let stored = self.read_verified(&path, &expect)?;
        let manifest = EpochManifest::decode(&self.cfg.codec.decompress_metered(&stored)?)?;
        if manifest.epoch != epoch {
            return Err(CasError::Corrupt(format!(
                "manifest at {path} claims epoch {}",
                manifest.epoch
            )));
        }
        // Fetch + decompress each referenced pack once.
        let mut pack_data: Vec<Vec<u8>> = Vec::with_capacity(manifest.packs.len());
        for ph in &manifest.packs {
            let stored = self.read_verified(&self.pack_path(ph), ph)?;
            pack_data.push(self.cfg.codec.decompress_metered(&stored)?);
        }
        // Verify each unique chunk, then materialize pieces by reference.
        for c in &manifest.chunks {
            let data = &pack_data[c.pack as usize];
            let end = (c.offset + c.len) as usize;
            if end > data.len() {
                return Err(CasError::Corrupt("chunk beyond pack bounds".into()));
            }
            let piece = &data[c.offset as usize..end];
            if ChunkHash::of(piece) != c.hash {
                self.note_mismatch();
                return Err(CasError::Corrupt(format!(
                    "chunk {} failed content verification",
                    c.hash.hex()
                )));
            }
        }
        let pieces: Vec<Vec<u8>> = manifest
            .refs
            .iter()
            .map(|&r| {
                let c = &manifest.chunks[r as usize];
                pack_data[c.pack as usize][c.offset as usize..(c.offset + c.len) as usize].to_vec()
            })
            .collect();
        let raw = chunker::assemble(&manifest.layout, &pieces)
            .map_err(|e| CasError::Corrupt(format!("assemble: {e}")))?;
        if raw.len() as u64 != manifest.raw_len {
            return Err(CasError::Corrupt("reassembled length mismatch".into()));
        }
        Ok(raw)
    }

    /// Read a content-addressed file, re-fetching by hash through a
    /// targeted repair pass when the first read fails or the bytes don't
    /// match the address.
    fn read_verified(&self, path: &str, expect: &ChunkHash) -> Result<Vec<u8>, CasError> {
        let bytes = match self.dfs.read(path) {
            Ok(b) => b,
            Err(DfsError::NotFound(p)) => return Err(CasError::Dfs(DfsError::NotFound(p))),
            Err(_) => {
                // Replica trouble: repair just this file and retry once.
                self.note_refetch();
                let _ = self.dfs.repair_file(path);
                self.dfs.read(path)?
            }
        };
        if ChunkHash::of(&bytes) == *expect {
            return Ok(bytes);
        }
        // Bytes came back readable but wrong: corruption below the
        // filesystem checksums. Repair from a good replica and re-fetch.
        self.note_mismatch();
        self.note_refetch();
        let _ = self.dfs.repair_file(path);
        let again = self.dfs.read(path)?;
        if ChunkHash::of(&again) == *expect {
            return Ok(again);
        }
        Err(CasError::Corrupt(format!(
            "{path} does not match its content address"
        )))
    }

    fn note_mismatch(&self) {
        self.state.lock().stats.verify_mismatches += 1;
        obs::inc("cas.verify.mismatch");
    }

    fn note_refetch(&self) {
        self.state.lock().stats.repair_refetches += 1;
        obs::inc("cas.repair.refetch");
    }

    /// Drop an epoch: delete its manifest, release its chunk references
    /// and garbage-collect packs whose last live chunk went away. Returns
    /// freed logical bytes ([`Dfs::delete`] accounting); 0 if the epoch
    /// was never stored.
    pub fn drop_epoch(&self, epoch: u32) -> Result<u64, CasError> {
        let _span = obs::span("cas.drop");
        let mut st = self.state.lock();
        let Some(rec) = st.epochs.remove(&epoch) else {
            return Ok(0);
        };
        let mut dead_packs: Vec<ChunkHash> = Vec::new();
        for h in &rec.chunk_refs {
            let Some(info) = st.chunks.get_mut(h) else {
                debug_assert!(false, "release of unknown chunk {h}");
                continue;
            };
            debug_assert!(info.refs > 0, "refcount underflow on {h}");
            info.refs = info.refs.saturating_sub(1);
            if info.refs == 0 {
                let pack = info.pack;
                st.chunks.remove(h);
                let pi = st.packs.get_mut(&pack).expect("chunk's pack must exist");
                pi.live_chunks = pi.live_chunks.saturating_sub(1);
                if pi.live_chunks == 0 {
                    dead_packs.push(pack);
                }
            }
        }
        let mut freed = 0u64;
        for ph in dead_packs {
            st.packs.remove(&ph);
            match self.dfs.delete(&self.pack_path(&ph)) {
                Ok(n) => {
                    freed += n;
                    st.stats.gc_packs_deleted += 1;
                    st.stats.gc_bytes_reclaimed += n;
                    obs::inc("cas.gc.packs_deleted");
                    obs::add("cas.gc.bytes_reclaimed", n);
                }
                // Already gone or temporarily unavailable: the sweep in
                // gc()/recover() picks unreferenced packs up later.
                Err(_) => obs::inc("cas.gc.deferred"),
            }
        }
        match self.dfs.delete(&self.manifest_path(epoch)) {
            Ok(n) => freed += n,
            Err(DfsError::NotFound(_)) => {}
            Err(_) => obs::inc("cas.gc.deferred"),
        }
        Ok(freed)
    }

    pub fn contains(&self, epoch: u32) -> bool {
        self.state.lock().epochs.contains_key(&epoch)
    }

    /// Retained epochs, ascending.
    pub fn epochs(&self) -> Vec<u32> {
        self.state.lock().epochs.keys().copied().collect()
    }

    /// Stored bytes the state accounts for: packs + manifests (Merkle
    /// files are rebuildable metadata and excluded).
    pub fn bytes_stored(&self) -> u64 {
        self.pack_bytes() + self.manifest_bytes()
    }

    /// On-disk pack bytes (compressed piece data) the state accounts for.
    pub fn pack_bytes(&self) -> u64 {
        self.state.lock().packs.values().map(|p| p.stored_len).sum()
    }

    /// On-disk manifest bytes (compressed chunk metadata) the state
    /// accounts for.
    pub fn manifest_bytes(&self) -> u64 {
        self.state
            .lock()
            .epochs
            .values()
            .map(|e| e.manifest_len)
            .sum()
    }

    /// Stored bytes by filesystem listing (packs + manifests actually on
    /// the dfs; Merkle files, staging temps and unrelated files sharing
    /// the root are excluded). Equal to [`Self::bytes_stored`] whenever no
    /// garbage is pending.
    pub fn listed_bytes(&self) -> u64 {
        let merkle = self.merkle_prefix();
        self.dfs
            .list(&format!("{}/", self.cfg.root))
            .iter()
            .filter(|p| !p.starts_with(&merkle) && (p.ends_with(".pk") || p.ends_with(".mf")))
            .filter_map(|p| self.dfs.file_len(p).ok())
            .sum()
    }

    /// Chunks tracked with zero references — always 0 by construction
    /// (entries are removed when released); exposed for the leak gate.
    pub fn unreferenced_chunks(&self) -> u64 {
        self.state
            .lock()
            .chunks
            .values()
            .filter(|c| c.refs == 0)
            .count() as u64
    }

    pub fn chunk_count(&self) -> u64 {
        self.state.lock().chunks.len() as u64
    }

    pub fn pack_count(&self) -> u64 {
        self.state.lock().packs.len() as u64
    }

    pub fn stats(&self) -> CasStats {
        self.state.lock().stats
    }

    /// Sweep garbage the eager path could not delete: pack files and
    /// committed manifests unknown to the state, plus staging temps.
    /// Returns reclaimed logical bytes.
    pub fn gc(&self) -> u64 {
        let _span = obs::span("cas.gc");
        let mut st = self.state.lock();
        let packs_prefix = self.packs_prefix();
        let merkle_prefix = self.merkle_prefix();
        let mut reclaimed = 0u64;
        for path in self.dfs.list(&format!("{}/", self.cfg.root)) {
            if path.starts_with(&merkle_prefix) {
                continue;
            }
            let orphan = if path.ends_with(TMP_SUFFIX) {
                true
            } else if let Some(hex) = path
                .strip_prefix(&packs_prefix)
                .and_then(|n| n.strip_suffix(".pk"))
            {
                !ChunkHash::from_hex(hex).is_some_and(|h| st.packs.contains_key(&h))
            } else if path.ends_with(".mf") {
                !manifest_path_epoch(&path).is_some_and(|e| st.epochs.contains_key(&e))
            } else {
                false
            };
            if orphan {
                if let Ok(n) = self.dfs.delete(&path) {
                    reclaimed += n;
                    st.stats.gc_packs_deleted += 1;
                    st.stats.gc_bytes_reclaimed += n;
                    obs::add("cas.gc.bytes_reclaimed", n);
                }
            }
        }
        reclaimed
    }

    /// Rebuild all in-memory state (chunk table, refcounts, pack liveness)
    /// from the committed manifests, then sweep staging temps, orphan
    /// packs and undecodable manifests. The durable truth is on the
    /// filesystem; this makes the process state match it.
    pub fn recover(&self) -> CasRecoverReport {
        let _span = obs::span("cas.recover");
        let mut report = CasRecoverReport::default();
        let mut st = self.state.lock();
        let stats = st.stats;
        *st = State::default();
        st.stats = stats;

        let packs_prefix = self.packs_prefix();
        let merkle_prefix = self.merkle_prefix();
        let listing = self.dfs.list(&format!("{}/", self.cfg.root));
        for path in &listing {
            if path.ends_with(TMP_SUFFIX)
                && !path.starts_with(&merkle_prefix)
                && self.dfs.delete(path).is_ok()
            {
                report.orphan_tmp_deleted += 1;
            }
        }
        for path in &listing {
            if !path.ends_with(".mf")
                || path.starts_with(&packs_prefix)
                || path.starts_with(&merkle_prefix)
            {
                continue;
            }
            let replayed = self
                .dfs
                .read(path)
                .ok()
                .and_then(|bytes| {
                    let m = self.cfg.codec.decompress_metered(&bytes).ok()?;
                    let m = EpochManifest::decode(&m).ok()?;
                    Some((bytes, m))
                })
                .filter(|(_, m)| {
                    manifest_path_epoch(path) == Some(m.epoch)
                        && m.packs
                            .iter()
                            .all(|ph| self.dfs.exists(&self.pack_path(ph)))
                });
            let Some((bytes, manifest)) = replayed else {
                // Unreadable, undecodable or referencing missing packs:
                // the epoch is lost, don't serve it.
                if self.dfs.delete(path).is_ok() {
                    report.corrupt_manifests_dropped += 1;
                }
                continue;
            };
            for c in &manifest.chunks {
                let ph = manifest.packs[c.pack as usize];
                st.packs.entry(ph).or_insert_with(|| PackInfo {
                    live_chunks: 0,
                    stored_len: self.dfs.file_len(&self.pack_path(&ph)).unwrap_or(0),
                });
                st.chunks.entry(c.hash).or_insert(ChunkInfo {
                    pack: ph,
                    offset: c.offset,
                    len: c.len,
                    refs: 0,
                });
            }
            let chunk_refs: Vec<ChunkHash> = manifest
                .refs
                .iter()
                .map(|&r| manifest.chunks[r as usize].hash)
                .collect();
            for h in &chunk_refs {
                let (pack, first_ref) = {
                    let info = st.chunks.get_mut(h).expect("chunk just inserted");
                    let first = info.refs == 0;
                    info.refs += 1;
                    (info.pack, first)
                };
                if first_ref {
                    st.packs
                        .get_mut(&pack)
                        .expect("pack just inserted")
                        .live_chunks += 1;
                }
            }
            st.epochs.insert(
                manifest.epoch,
                EpochRec {
                    manifest_hash: ChunkHash::of(&bytes),
                    manifest_len: bytes.len() as u64,
                    chunk_refs,
                },
            );
            report.manifests_indexed += 1;
        }
        for path in &listing {
            let Some(hex) = path
                .strip_prefix(&packs_prefix)
                .and_then(|n| n.strip_suffix(".pk"))
            else {
                continue;
            };
            let known = ChunkHash::from_hex(hex).is_some_and(|h| st.packs.contains_key(&h));
            if !known {
                if let Ok(n) = self.dfs.delete(path) {
                    report.orphan_packs_deleted += 1;
                    report.orphan_bytes_reclaimed += n;
                }
            }
        }
        obs::add("cas.recover.manifests", report.manifests_indexed);
        obs::add("cas.recover.orphan_packs", report.orphan_packs_deleted);
        report
    }

    /// The current Merkle rollup (days, months, root) over retained epochs.
    pub fn merkle(&self) -> Merkle {
        let leaves: BTreeMap<u32, ChunkHash> = self
            .state
            .lock()
            .epochs
            .iter()
            .map(|(&e, r)| (e, r.manifest_hash))
            .collect();
        build_merkle(&leaves)
    }

    /// Hex root hash authenticating every retained epoch. Deterministic
    /// for a given retained set.
    pub fn root_hash(&self) -> String {
        self.merkle().root_hash.hex()
    }

    /// Persist the Merkle rollup under `<root>/merkle/`, replacing any
    /// previous files. Returns bytes written.
    pub fn persist_merkle(&self) -> Result<u64, CasError> {
        let merkle = self.merkle();
        let prefix = self.merkle_prefix();
        for stale in self.dfs.list(&prefix) {
            let _ = self.dfs.delete(&stale);
        }
        let mut written = 0u64;
        let mut write = |path: String, bytes: &[u8]| -> Result<(), CasError> {
            self.dfs.write(&path, bytes)?;
            written += bytes.len() as u64;
            Ok(())
        };
        for ((y, m, d), bytes) in &merkle.days {
            write(format!("{prefix}{y:04}-{m:02}-{d:02}.day"), bytes)?;
        }
        for ((y, m), bytes) in &merkle.months {
            write(format!("{prefix}{y:04}-{m:02}.month"), bytes)?;
        }
        write(format!("{prefix}root.mf"), &merkle.root)?;
        Ok(written)
    }

    /// Verify the persisted rollup against the live state: recompute every
    /// day/month manifest and the root, compare to what's on the
    /// filesystem. `Ok(true)` when everything matches.
    pub fn verify_merkle(&self) -> Result<bool, CasError> {
        let merkle = self.merkle();
        let prefix = self.merkle_prefix();
        let check = |path: String, expect: &[u8]| -> Result<bool, CasError> {
            match self.dfs.read(&path) {
                Ok(bytes) => Ok(bytes == expect),
                Err(DfsError::NotFound(_)) => Ok(false),
                Err(e) => Err(e.into()),
            }
        };
        for ((y, m, d), bytes) in &merkle.days {
            if !check(format!("{prefix}{y:04}-{m:02}-{d:02}.day"), bytes)? {
                return Ok(false);
            }
        }
        for ((y, m), bytes) in &merkle.months {
            if !check(format!("{prefix}{y:04}-{m:02}.month"), bytes)? {
                return Ok(false);
            }
        }
        check(format!("{prefix}root.mf"), &merkle.root)
    }
}

/// Epoch encoded in a manifest path `<root>/<y>/<m>/<d>/<epoch>.mf`.
fn manifest_path_epoch(path: &str) -> Option<u32> {
    path.rsplit('/')
        .next()?
        .strip_suffix(".mf")?
        .parse::<u32>()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs::DfsConfig;
    use telco_trace::generator::{TraceConfig, TraceGenerator};
    use telco_trace::snapshot::Snapshot;

    fn store() -> CasStore {
        CasStore::new(Dfs::new(DfsConfig::default()), CasConfig::default())
    }

    fn snapshots(n: usize) -> Vec<Snapshot> {
        TraceGenerator::new(TraceConfig::scaled(1.0 / 256.0))
            .take(n)
            .collect()
    }

    #[test]
    fn put_get_roundtrip_and_verified_reads() {
        let cas = store();
        let snaps = snapshots(3);
        for s in &snaps {
            let raw = s.to_bytes();
            let r = cas.put_epoch(s.epoch.0, &raw).unwrap();
            assert_eq!(r.raw_len, raw.len() as u64);
            assert!(cas.contains(s.epoch.0));
        }
        for s in &snaps {
            let raw = cas.get_epoch(s.epoch.0).unwrap();
            assert_eq!(raw, s.to_bytes());
            let parsed = Snapshot::from_bytes(&raw).unwrap();
            assert_eq!(parsed.epoch, s.epoch);
        }
        assert!(matches!(cas.get_epoch(999_999), Err(CasError::Missing(_))));
        assert!(matches!(
            cas.put_epoch(snaps[0].epoch.0, b"again"),
            Err(CasError::AlreadyStored(_))
        ));
    }

    #[test]
    fn consecutive_epochs_dedup_constant_columns() {
        let cas = store();
        for s in snapshots(4) {
            cas.put_epoch(s.epoch.0, &s.to_bytes()).unwrap();
        }
        let stats = cas.stats();
        assert!(
            stats.dedup_hits > 0,
            "constant columns must hit the chunk table: {stats:?}"
        );
        assert!(stats.dedup_bytes_saved > 0);
    }

    #[test]
    fn drop_releases_everything_and_accounting_matches() {
        let cas = store();
        let snaps = snapshots(3);
        for s in &snaps {
            cas.put_epoch(s.epoch.0, &s.to_bytes()).unwrap();
        }
        assert_eq!(cas.bytes_stored(), cas.listed_bytes());
        let before = cas.bytes_stored();
        assert!(before > 0);
        let mut freed = 0;
        for s in &snaps {
            freed += cas.drop_epoch(s.epoch.0).unwrap();
        }
        assert!(freed > 0);
        assert_eq!(cas.bytes_stored(), 0, "full decay leaves nothing stored");
        assert_eq!(cas.listed_bytes(), 0, "no files left on the dfs");
        assert_eq!(cas.chunk_count(), 0);
        assert_eq!(cas.pack_count(), 0);
        assert_eq!(cas.unreferenced_chunks(), 0);
        assert_eq!(cas.drop_epoch(snaps[0].epoch.0).unwrap(), 0, "idempotent");
    }

    #[test]
    fn partial_decay_keeps_shared_chunks_alive() {
        let cas = store();
        let snaps = snapshots(3);
        for s in &snaps {
            cas.put_epoch(s.epoch.0, &s.to_bytes()).unwrap();
        }
        cas.drop_epoch(snaps[0].epoch.0).unwrap();
        // Remaining epochs still read back intact despite shared chunks.
        for s in &snaps[1..] {
            assert_eq!(cas.get_epoch(s.epoch.0).unwrap(), s.to_bytes());
        }
        assert_eq!(cas.unreferenced_chunks(), 0);
    }

    #[test]
    fn merkle_root_tracks_retained_set_deterministically() {
        let cas1 = store();
        let cas2 = store();
        let snaps = snapshots(3);
        for s in &snaps {
            cas1.put_epoch(s.epoch.0, &s.to_bytes()).unwrap();
            cas2.put_epoch(s.epoch.0, &s.to_bytes()).unwrap();
        }
        assert_eq!(cas1.root_hash(), cas2.root_hash());
        let full = cas1.root_hash();
        cas1.drop_epoch(snaps[0].epoch.0).unwrap();
        assert_ne!(cas1.root_hash(), full, "root moves when the set changes");
        cas2.drop_epoch(snaps[0].epoch.0).unwrap();
        assert_eq!(cas1.root_hash(), cas2.root_hash());
    }

    #[test]
    fn persisted_merkle_verifies_and_detects_staleness() {
        let cas = store();
        let snaps = snapshots(2);
        for s in &snaps {
            cas.put_epoch(s.epoch.0, &s.to_bytes()).unwrap();
        }
        cas.persist_merkle().unwrap();
        assert!(cas.verify_merkle().unwrap());
        cas.drop_epoch(snaps[0].epoch.0).unwrap();
        assert!(
            !cas.verify_merkle().unwrap(),
            "stale rollup must not verify"
        );
        cas.persist_merkle().unwrap();
        assert!(cas.verify_merkle().unwrap());
    }

    #[test]
    fn recover_rebuilds_state_from_manifests() {
        let dfs = Dfs::new(DfsConfig::default());
        let cas = CasStore::new(dfs.clone(), CasConfig::default());
        let snaps = snapshots(3);
        for s in &snaps {
            cas.put_epoch(s.epoch.0, &s.to_bytes()).unwrap();
        }
        let root = cas.root_hash();
        let bytes = cas.bytes_stored();
        // Fresh process over the same filesystem.
        let (again, report) = CasStore::open(dfs, CasConfig::default());
        assert_eq!(report.manifests_indexed, 3);
        assert_eq!(report.corrupt_manifests_dropped, 0);
        assert_eq!(again.root_hash(), root);
        assert_eq!(again.bytes_stored(), bytes);
        for s in &snaps {
            assert_eq!(again.get_epoch(s.epoch.0).unwrap(), s.to_bytes());
        }
        // Full decay after recovery still reaches zero.
        for s in &snaps {
            again.drop_epoch(s.epoch.0).unwrap();
        }
        assert_eq!(again.listed_bytes(), 0);
    }

    #[test]
    fn recover_sweeps_orphan_packs_and_tmps() {
        let dfs = Dfs::new(DfsConfig::default());
        let cas = CasStore::new(dfs.clone(), CasConfig::default());
        let snap = &snapshots(1)[0];
        cas.put_epoch(snap.epoch.0, &snap.to_bytes()).unwrap();
        // Simulate a crashed put: an orphan pack and a staging temp.
        let orphan = ChunkHash::of(b"orphan pack bytes");
        dfs.write(&cas.pack_path(&orphan), b"orphan pack bytes")
            .unwrap();
        dfs.write(&format!("{}{}", cas.manifest_path(99), TMP_SUFFIX), b"x")
            .unwrap();
        let (again, report) = CasStore::open(dfs, CasConfig::default());
        assert_eq!(report.orphan_packs_deleted, 1);
        assert_eq!(report.orphan_tmp_deleted, 1);
        assert!(report.orphan_bytes_reclaimed > 0);
        assert_eq!(again.get_epoch(snap.epoch.0).unwrap(), snap.to_bytes());
    }

    #[test]
    fn blob_payloads_roundtrip_too() {
        let cas = store();
        // Opaque payload (not snapshot wire format): blob chunking path.
        let payload: Vec<u8> = (0..20_000u32).map(|i| (i * 31 % 251) as u8).collect();
        cas.put_epoch(7, &payload).unwrap();
        assert_eq!(cas.get_epoch(7).unwrap(), payload);
        // Identical payload at another epoch dedups every piece.
        let r = cas.put_epoch(8, &payload).unwrap();
        let pieces = r.dedup_hits;
        assert!(pieces > 0);
        let stats = cas.stats();
        assert!(stats.dedup_bytes_saved >= payload.len() as u64);
    }
}
