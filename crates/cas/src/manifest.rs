//! Epoch manifests and the Merkle rollup.
//!
//! An epoch's *manifest* is the unit the rest of the warehouse sees: a
//! compact binary record naming every piece of the snapshot by content
//! hash, where it lives (pack, offset, length) and how to reassemble the
//! original bytes. Manifests are themselves content-addressed — the stored
//! manifest's hash is the epoch's Merkle leaf — and roll up the same
//! temporal hierarchy as the index tree: epoch leaves hash into a **day
//! manifest**, days into a **month manifest**, months into the **root**.
//! One root hash therefore authenticates every byte of every retained
//! epoch, and any two runs that ingested the same data agree on it.

use crate::chunker::{self, Layout, TableLayout};
use crate::hash::ChunkHash;
use crate::CasError;
use codecs::varint;
use std::collections::BTreeMap;
use telco_trace::time::EpochId;

/// Magic prefix of an encoded epoch manifest.
pub const MANIFEST_MAGIC: &[u8; 6] = b"CASMF1";

/// One unique chunk referenced by a manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Content address of the (uncompressed) piece bytes.
    pub hash: ChunkHash,
    /// Index into [`EpochManifest::packs`].
    pub pack: u32,
    /// Byte offset in the pack's uncompressed stream.
    pub offset: u64,
    /// Piece length in bytes.
    pub len: u64,
}

/// The content-addressed description of one stored epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochManifest {
    pub epoch: u32,
    /// Length of the reassembled payload, verified on read.
    pub raw_len: u64,
    pub layout: Layout,
    /// Packs referenced, first-use order; entries point into this table.
    pub packs: Vec<ChunkHash>,
    /// Unique chunks, first-use order.
    pub chunks: Vec<ChunkEntry>,
    /// One entry per layout piece: index into [`Self::chunks`]. Repeated
    /// indices are how intra-epoch dedup shows up on disk.
    pub refs: Vec<u32>,
}

impl EpochManifest {
    /// Deterministic binary encoding (varints + raw hashes).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.chunks.len() * 24 + self.refs.len() * 2);
        out.extend_from_slice(MANIFEST_MAGIC);
        varint::write_u32(&mut out, self.epoch);
        varint::write_u64(&mut out, self.raw_len);
        varint::write_u64(&mut out, self.packs.len() as u64);
        for p in &self.packs {
            out.extend_from_slice(&p.0);
        }
        varint::write_u64(&mut out, self.chunks.len() as u64);
        for c in &self.chunks {
            out.extend_from_slice(&c.hash.0);
            varint::write_u32(&mut out, c.pack);
            varint::write_u64(&mut out, c.offset);
            varint::write_u64(&mut out, c.len);
        }
        varint::write_u64(&mut out, self.refs.len() as u64);
        for &r in &self.refs {
            varint::write_u32(&mut out, r);
        }
        encode_layout(&mut out, &self.layout);
        out
    }

    /// Decode [`Self::encode`] output, rejecting anything malformed.
    pub fn decode(bytes: &[u8]) -> Result<Self, CasError> {
        let corrupt = |what: &str| CasError::Corrupt(format!("manifest: {what}"));
        if bytes.len() < MANIFEST_MAGIC.len() || &bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let mut pos = MANIFEST_MAGIC.len();
        let epoch = varint::read_u32(bytes, &mut pos).map_err(|_| corrupt("epoch"))?;
        let raw_len = varint::read_u64(bytes, &mut pos).map_err(|_| corrupt("raw_len"))?;
        let n_packs = read_count(bytes, &mut pos, "packs")?;
        let mut packs = Vec::with_capacity(n_packs.min(MAX_PREALLOC));
        for _ in 0..n_packs {
            packs.push(read_hash(bytes, &mut pos)?);
        }
        let n_chunks = read_count(bytes, &mut pos, "chunks")?;
        let mut chunks = Vec::with_capacity(n_chunks.min(MAX_PREALLOC));
        for _ in 0..n_chunks {
            let hash = read_hash(bytes, &mut pos)?;
            let pack = varint::read_u32(bytes, &mut pos).map_err(|_| corrupt("chunk pack"))?;
            let offset = varint::read_u64(bytes, &mut pos).map_err(|_| corrupt("chunk offset"))?;
            let len = varint::read_u64(bytes, &mut pos).map_err(|_| corrupt("chunk len"))?;
            if pack as usize >= packs.len() {
                return Err(corrupt("chunk pack out of range"));
            }
            chunks.push(ChunkEntry {
                hash,
                pack,
                offset,
                len,
            });
        }
        let n_refs = read_count(bytes, &mut pos, "refs")?;
        let mut refs = Vec::with_capacity(n_refs.min(MAX_PREALLOC));
        for _ in 0..n_refs {
            let r = varint::read_u32(bytes, &mut pos).map_err(|_| corrupt("ref"))?;
            if r as usize >= chunks.len() {
                return Err(corrupt("ref out of range"));
            }
            refs.push(r);
        }
        let layout = decode_layout(bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err(corrupt("trailing bytes"));
        }
        if layout.piece_count() != refs.len() {
            return Err(corrupt("layout/ref count mismatch"));
        }
        Ok(Self {
            epoch,
            raw_len,
            layout,
            packs,
            chunks,
            refs,
        })
    }
}

/// Cap decoded collection sizes so a corrupt length prefix cannot commit
/// unbounded memory before validation catches it.
const MAX_ITEMS: usize = 1 << 24;
/// Never pre-reserve more than this many entries from an untrusted count;
/// vectors still grow on demand past it once real data validates.
const MAX_PREALLOC: usize = 1 << 14;

fn read_count(bytes: &[u8], pos: &mut usize, what: &str) -> Result<usize, CasError> {
    let n = varint::read_u64(bytes, pos)
        .map_err(|_| CasError::Corrupt(format!("manifest: {what} count")))?;
    if n as usize > MAX_ITEMS {
        return Err(CasError::Corrupt(format!("manifest: {what} count too big")));
    }
    Ok(n as usize)
}

fn read_hash(bytes: &[u8], pos: &mut usize) -> Result<ChunkHash, CasError> {
    let end = *pos + ChunkHash::LEN;
    if end > bytes.len() {
        return Err(CasError::Corrupt("manifest: truncated hash".into()));
    }
    let mut h = [0u8; 16];
    h.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(ChunkHash(h))
}

fn read_bytes(bytes: &[u8], pos: &mut usize, what: &str) -> Result<Vec<u8>, CasError> {
    let len = read_count(bytes, pos, what)?;
    let end = *pos + len;
    if end > bytes.len() {
        return Err(CasError::Corrupt(format!("manifest: truncated {what}")));
    }
    let out = bytes[*pos..end].to_vec();
    *pos = end;
    Ok(out)
}

fn encode_layout(out: &mut Vec<u8>, layout: &Layout) {
    match layout {
        Layout::Blob { n_pieces } => {
            out.push(0);
            varint::write_u32(out, *n_pieces);
        }
        Layout::Columnar { header, tables } => {
            out.push(1);
            varint::write_u64(out, header.len() as u64);
            out.extend_from_slice(header);
            varint::write_u64(out, tables.len() as u64);
            for t in tables {
                varint::write_u64(out, t.header.len() as u64);
                out.extend_from_slice(&t.header);
                varint::write_u32(out, t.rows);
                varint::write_u32(out, t.cols);
                // LSB-tagged piece counts: a normal count n encodes as
                // n << 1; the CONSTANT_COL sentinel encodes as 1. Tables
                // hold dozens of constant columns per epoch, so spending
                // one byte instead of a five-byte u32::MAX varint on each
                // is a measurable share of total manifest weight.
                for &n in &t.pieces_per_col {
                    let tagged = if n == chunker::CONSTANT_COL {
                        1
                    } else {
                        (n as u64) << 1
                    };
                    varint::write_u64(out, tagged);
                }
            }
        }
    }
}

fn decode_layout(bytes: &[u8], pos: &mut usize) -> Result<Layout, CasError> {
    let corrupt = |what: &str| CasError::Corrupt(format!("manifest layout: {what}"));
    let tag = *bytes.get(*pos).ok_or_else(|| corrupt("missing tag"))?;
    *pos += 1;
    match tag {
        0 => {
            let n = varint::read_u32(bytes, pos).map_err(|_| corrupt("blob pieces"))?;
            Ok(Layout::Blob { n_pieces: n })
        }
        1 => {
            let header = read_bytes(bytes, pos, "header")?;
            let n_tables = read_count(bytes, pos, "tables")?;
            let mut tables = Vec::with_capacity(n_tables.min(MAX_PREALLOC));
            for _ in 0..n_tables {
                let theader = read_bytes(bytes, pos, "table header")?;
                let rows = varint::read_u32(bytes, pos).map_err(|_| corrupt("rows"))?;
                let cols = varint::read_u32(bytes, pos).map_err(|_| corrupt("cols"))?;
                if cols as usize > MAX_ITEMS {
                    return Err(corrupt("cols too big"));
                }
                let mut pieces_per_col = Vec::with_capacity((cols as usize).min(MAX_PREALLOC));
                for _ in 0..cols {
                    let tagged =
                        varint::read_u64(bytes, pos).map_err(|_| corrupt("piece count"))?;
                    let n = if tagged == 1 {
                        chunker::CONSTANT_COL
                    } else if tagged & 1 == 0 && (tagged >> 1) < u64::from(u32::MAX) {
                        (tagged >> 1) as u32
                    } else {
                        return Err(corrupt("piece count tag"));
                    };
                    pieces_per_col.push(n);
                }
                tables.push(TableLayout {
                    header: theader,
                    rows,
                    cols,
                    pieces_per_col,
                });
            }
            Ok(Layout::Columnar { header, tables })
        }
        _ => Err(corrupt("unknown tag")),
    }
}

/// The Merkle rollup over every retained epoch manifest: day and month
/// manifests as canonical text, plus the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Merkle {
    /// `(year, month, day)` → day manifest bytes.
    pub days: BTreeMap<(u32, u32, u32), Vec<u8>>,
    /// `(year, month)` → month manifest bytes.
    pub months: BTreeMap<(u32, u32), Vec<u8>>,
    /// Root manifest bytes.
    pub root: Vec<u8>,
    /// Hash of [`Self::root`]: one address for the whole retained corpus.
    pub root_hash: ChunkHash,
}

/// Build the rollup from the epoch → manifest-hash leaves. Deterministic:
/// same leaves (in any order) → byte-identical manifests and root.
pub fn build_merkle(leaves: &BTreeMap<u32, ChunkHash>) -> Merkle {
    let mut days: BTreeMap<(u32, u32, u32), String> = BTreeMap::new();
    for (&epoch, hash) in leaves {
        let c = EpochId(epoch).civil();
        days.entry((c.year, c.month, c.day))
            .or_insert_with(|| format!("#CASDAY {:04}-{:02}-{:02}\n", c.year, c.month, c.day))
            .push_str(&format!("epoch {epoch} {}\n", hash.hex()));
    }
    let days: BTreeMap<(u32, u32, u32), Vec<u8>> =
        days.into_iter().map(|(k, v)| (k, v.into_bytes())).collect();

    let mut months: BTreeMap<(u32, u32), String> = BTreeMap::new();
    for (&(y, m, d), bytes) in &days {
        months
            .entry((y, m))
            .or_insert_with(|| format!("#CASMONTH {y:04}-{m:02}\n"))
            .push_str(&format!(
                "day {y:04}-{m:02}-{d:02} {}\n",
                ChunkHash::of(bytes).hex()
            ));
    }
    let months: BTreeMap<(u32, u32), Vec<u8>> = months
        .into_iter()
        .map(|(k, v)| (k, v.into_bytes()))
        .collect();

    let mut root = String::from("#CASROOT\n");
    for (&(y, m), bytes) in &months {
        root.push_str(&format!(
            "month {y:04}-{m:02} {}\n",
            ChunkHash::of(bytes).hex()
        ));
    }
    let root = root.into_bytes();
    let root_hash = ChunkHash::of(&root);
    Merkle {
        days,
        months,
        root,
        root_hash,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunker::{split, Chunking};
    use telco_trace::{TraceConfig, TraceGenerator};

    fn sample_manifest() -> EpochManifest {
        let snap = TraceGenerator::new(TraceConfig::tiny()).next().unwrap();
        let raw = snap.to_bytes();
        let (layout, pieces) = split(&raw, &Chunking::default());
        let chunks: Vec<ChunkEntry> = pieces
            .iter()
            .scan(0u64, |off, p| {
                let e = ChunkEntry {
                    hash: ChunkHash::of(p),
                    pack: 0,
                    offset: *off,
                    len: p.len() as u64,
                };
                *off += p.len() as u64;
                Some(e)
            })
            .collect();
        let refs = (0..chunks.len() as u32).collect();
        EpochManifest {
            epoch: snap.epoch.0,
            raw_len: raw.len() as u64,
            layout,
            packs: vec![ChunkHash::of(b"pack")],
            chunks,
            refs,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let m = sample_manifest();
        let bytes = m.encode();
        assert_eq!(EpochManifest::decode(&bytes).unwrap(), m);
        // Determinism: two encodes agree byte for byte.
        assert_eq!(bytes, m.encode());
    }

    #[test]
    fn truncations_and_garbage_are_rejected() {
        let bytes = sample_manifest().encode();
        assert!(EpochManifest::decode(b"").is_err());
        assert!(EpochManifest::decode(b"NOTMAGIC").is_err());
        for cut in [7, bytes.len() / 2, bytes.len() - 1] {
            assert!(EpochManifest::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(EpochManifest::decode(&trailing).is_err());
    }

    #[test]
    fn out_of_range_refs_are_rejected() {
        let mut m = sample_manifest();
        m.refs[0] = m.chunks.len() as u32;
        assert!(EpochManifest::decode(&m.encode()).is_err());
    }

    #[test]
    fn merkle_is_deterministic_and_order_free() {
        let mut a = BTreeMap::new();
        // Epochs across two days and two months.
        for e in [0u32, 1, 47, 48, 700] {
            a.insert(e, ChunkHash::of(&e.to_le_bytes()));
        }
        let m1 = build_merkle(&a);
        let m2 = build_merkle(&a.clone());
        assert_eq!(m1, m2);
        assert_eq!(m1.days.len(), 3);
        assert_eq!(m1.months.len(), 2);
        // Any leaf change moves the root.
        a.insert(1, ChunkHash::of(b"different"));
        assert_ne!(build_merkle(&a).root_hash, m1.root_hash);
        // Empty corpus has a stable root too.
        let empty = build_merkle(&BTreeMap::new());
        assert_eq!(empty.root, b"#CASROOT\n");
    }
}
