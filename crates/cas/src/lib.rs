//! Content-addressed block store for SPATE snapshots.
//!
//! Sits between `core` storage and the replicated filesystem. An epoch's
//! payload is split into pieces — per-attribute column slices when the
//! snapshot wire format parses, fixed-size blobs otherwise — and each
//! distinct piece is stored exactly once, addressed by its content hash.
//! The pieces an epoch newly contributes are jointly compressed into one
//! *pack* file (itself content-addressed); the epoch is then represented
//! by a *manifest* listing its chunk references. Manifests roll up into
//! day and month manifests and a single root hash mirroring the temporal
//! index tree, so one hash authenticates an entire retained subtree.
//!
//! Consequences the rest of the system gets for free:
//!
//! - **Dedup**: constant or slow-moving columns (operator codes, filler
//!   attributes, quiet NMS counters) hash to identical pieces across
//!   epochs and are stored once.
//! - **Decay is garbage collection**: dropping an epoch deletes one
//!   manifest and releases refcounts; packs are deleted when their last
//!   live chunk goes.
//! - **End-to-end verification**: every read re-hashes manifest, pack and
//!   piece bytes against their addresses, and a mismatch triggers a
//!   targeted replica repair + re-fetch before the error surfaces.

pub mod chunker;
pub mod hash;
pub mod manifest;
pub mod store;

pub use chunker::{Chunking, Layout};
pub use hash::{sha256, ChunkHash};
pub use manifest::{build_merkle, ChunkEntry, EpochManifest, Merkle};
pub use store::{CasConfig, CasRecoverReport, CasStats, CasStore, PutReceipt};

use codecs::CodecError;
use dfs::DfsError;
use std::fmt;

/// Errors from the content-addressed store.
#[derive(Debug)]
pub enum CasError {
    /// Filesystem-level failure.
    Dfs(DfsError),
    /// Pack compression or decompression failure.
    Codec(CodecError),
    /// The epoch is not in the store.
    Missing(u32),
    /// The epoch is already in the store (manifests are write-once).
    AlreadyStored(u32),
    /// Content failed hash verification or structural validation.
    Corrupt(String),
}

impl fmt::Display for CasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CasError::Dfs(e) => write!(f, "cas: dfs: {e}"),
            CasError::Codec(e) => write!(f, "cas: codec: {e}"),
            CasError::Missing(e) => write!(f, "cas: epoch {e} not stored"),
            CasError::AlreadyStored(e) => write!(f, "cas: epoch {e} already stored"),
            CasError::Corrupt(msg) => write!(f, "cas: corrupt: {msg}"),
        }
    }
}

impl std::error::Error for CasError {}

impl From<DfsError> for CasError {
    fn from(e: DfsError) -> Self {
        CasError::Dfs(e)
    }
}

impl From<CodecError> for CasError {
    fn from(e: CodecError) -> Self {
        CasError::Codec(e)
    }
}
