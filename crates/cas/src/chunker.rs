//! Snapshot chunking: split the wire bytes into content-addressable pieces.
//!
//! The snapshot wire format is line-oriented CSV under `#SNAPSHOT` /
//! `#TABLE` headers (see `telco_trace::snapshot`). When the bytes parse as
//! that layout, the chunker transposes each table into per-column value
//! streams and cuts every stream at *row-aligned* boundaries. Two things
//! fall out of that:
//!
//! * **Dedup across epochs and columns.** The paper's Fig. 4 shows ≥ 30
//!   all-zero CDR columns and > 100 columns under one bit of entropy; a
//!   constant column is stored as one piece holding the single value
//!   (replayed per row on assembly), so all such columns collapse to one
//!   stored chunk — shared across every column with that value and every
//!   epoch, regardless of per-epoch row counts.
//! * **Better pack compression.** Columnar order groups same-typed values,
//!   which the pack codec compresses far tighter than row-major text.
//!
//! Anything that does not parse (delta payloads, foreign blobs) falls back
//! to fixed-size pieces — content addressing never requires the columnar
//! layout, it only benefits from it.

/// Piece-cutting parameters.
#[derive(Debug, Clone, Copy)]
pub struct Chunking {
    /// Row-boundary quantum: pieces hold a multiple of this many rows, so
    /// equal-content columns align across epochs with different row counts.
    pub row_quantum: usize,
    /// Target piece size in bytes for columnar streams.
    pub target_piece_bytes: usize,
    /// Fixed piece size for non-columnar (blob) payloads.
    pub blob_piece_bytes: usize,
    /// Columns whose stream is smaller than this coalesce with their
    /// neighbors into shared group pieces instead of each cutting their
    /// own. Every manifest entry costs ~36 bytes of incompressible
    /// metadata, so a piece must be at least this big before per-column
    /// dedup can pay for its own bookkeeping. `0` disables grouping
    /// (every column cuts independently).
    pub min_piece_bytes: usize,
}

impl Default for Chunking {
    fn default() -> Self {
        Self {
            row_quantum: 64,
            target_piece_bytes: 16384,
            blob_piece_bytes: 8192,
            min_piece_bytes: 4096,
        }
    }
}

/// How to reassemble the original bytes from the piece sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Layout {
    /// Parsed snapshot: header line + per-table columnar piece runs.
    Columnar {
        /// The `#SNAPSHOT ...` line, including its newline.
        header: Vec<u8>,
        tables: Vec<TableLayout>,
    },
    /// Opaque payload cut into fixed-size pieces.
    Blob { n_pieces: u32 },
}

/// Sentinel in [`TableLayout::pieces_per_col`]: the column is constant and
/// stored as a single one-value piece replayed `rows` times on assembly.
pub const CONSTANT_COL: u32 = u32::MAX;

/// One `#TABLE` section in columnar form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableLayout {
    /// The `#TABLE ...` line, including its newline.
    pub header: Vec<u8>,
    pub rows: u32,
    pub cols: u32,
    /// Piece count per column; pieces are emitted column 0 first, each
    /// column's pieces in row order. A column with `0` pieces (while
    /// `rows > 0`) continues the piece run opened by an earlier column:
    /// small columns share grouped pieces (see [`Chunking::min_piece_bytes`]).
    /// [`CONSTANT_COL`] marks a constant column holding one piece — the
    /// single value, replayed `rows` times — which does not disturb any
    /// group run spanning it.
    pub pieces_per_col: Vec<u32>,
}

impl Layout {
    /// Total pieces this layout references.
    pub fn piece_count(&self) -> usize {
        match self {
            Layout::Columnar { tables, .. } => tables
                .iter()
                .flat_map(|t| t.pieces_per_col.iter())
                .map(|&n| if n == CONSTANT_COL { 1 } else { n as usize })
                .sum(),
            Layout::Blob { n_pieces } => *n_pieces as usize,
        }
    }
}

/// Split `raw` into pieces plus the layout that reassembles them.
/// Columnar when the bytes parse as the snapshot wire format, blob
/// otherwise. `assemble(split(raw)) == raw` for any input.
pub fn split(raw: &[u8], cfg: &Chunking) -> (Layout, Vec<Vec<u8>>) {
    if let Some(columnar) = try_split_columnar(raw, cfg) {
        return columnar;
    }
    let piece = cfg.blob_piece_bytes.max(1);
    let pieces: Vec<Vec<u8>> = raw.chunks(piece).map(<[u8]>::to_vec).collect();
    (
        Layout::Blob {
            n_pieces: pieces.len() as u32,
        },
        pieces,
    )
}

fn try_split_columnar(raw: &[u8], cfg: &Chunking) -> Option<(Layout, Vec<Vec<u8>>)> {
    if raw.is_empty() || *raw.last().unwrap() != b'\n' {
        return None;
    }
    // Every line below excludes its terminating newline.
    let lines: Vec<&[u8]> = raw[..raw.len() - 1].split(|&b| b == b'\n').collect();
    let header_line = *lines.first()?;
    if !header_line.starts_with(b"#SNAPSHOT ") {
        return None;
    }
    let mut header = header_line.to_vec();
    header.push(b'\n');

    let mut tables = Vec::new();
    let mut pieces = Vec::new();
    let mut i = 1;
    while i < lines.len() {
        let table_line = lines[i];
        if !table_line.starts_with(b"#TABLE ") {
            return None; // trailing junk: not the expected layout
        }
        let text = std::str::from_utf8(table_line).ok()?;
        let rows: u32 = parse_kv(text, "rows")?;
        let cols: u32 = parse_kv(text, "cols")?;
        if cols == 0 {
            return None;
        }
        i += 1;
        if lines.len() - i < rows as usize {
            return None;
        }
        // Transpose: column streams of newline-terminated values.
        let mut streams: Vec<Vec<u8>> = vec![Vec::new(); cols as usize];
        for r in 0..rows as usize {
            let mut fields = 0usize;
            for field in lines[i + r].split(|&b| b == b',') {
                if fields >= cols as usize {
                    return None;
                }
                streams[fields].extend_from_slice(field);
                streams[fields].push(b'\n');
                fields += 1;
            }
            if fields != cols as usize {
                return None;
            }
        }
        i += rows as usize;
        let mut table_header = table_line.to_vec();
        table_header.push(b'\n');
        // Constant columns — the dedup goldmine (Fig. 4: ≥ 30 all-zero CDR
        // columns) — store one piece holding the single value, replayed
        // `rows` times on assembly, so every all-zero column of every epoch
        // collapses to the same two-byte chunk. Other large columns cut
        // their own row-aligned pieces; small varying columns coalesce with
        // their neighbors into group pieces near the byte target, keeping
        // the per-chunk manifest overhead amortized. Pieces are buffered
        // per column so a group run may span constant columns without
        // fragmenting; each group piece is owned by its first column.
        let mut pieces_per_col = vec![0u32; cols as usize];
        let mut col_pieces: Vec<Vec<Vec<u8>>> = vec![Vec::new(); cols as usize];
        let mut group: Vec<u8> = Vec::new();
        let mut group_col = 0usize;
        for (c, stream) in streams.into_iter().enumerate() {
            if let Some(value) = constant_value(&stream, rows) {
                pieces_per_col[c] = CONSTANT_COL;
                col_pieces[c].push(value);
            } else if cfg.min_piece_bytes == 0 || stream.len() >= cfg.min_piece_bytes {
                if !group.is_empty() {
                    pieces_per_col[group_col] += 1;
                    col_pieces[group_col].push(std::mem::take(&mut group));
                }
                let cuts = cut_row_aligned(&stream, rows, cfg);
                pieces_per_col[c] = cuts.len() as u32;
                col_pieces[c] = cuts;
            } else if !stream.is_empty() {
                if group.is_empty() {
                    group_col = c;
                } else if group.len() + stream.len() > cfg.target_piece_bytes.max(1) {
                    pieces_per_col[group_col] += 1;
                    col_pieces[group_col].push(std::mem::take(&mut group));
                    group_col = c;
                }
                group.extend_from_slice(&stream);
            }
        }
        if !group.is_empty() {
            pieces_per_col[group_col] += 1;
            col_pieces[group_col].push(group);
        }
        pieces.extend(col_pieces.into_iter().flatten());
        tables.push(TableLayout {
            header: table_header,
            rows,
            cols,
            pieces_per_col,
        });
    }
    if tables.is_empty() {
        return None;
    }
    Some((Layout::Columnar { header, tables }, pieces))
}

/// If every row of `stream` holds the same value, return one copy of it
/// (newline included). Requires at least two rows — a one-row column gains
/// nothing from the constant encoding and groups better with its
/// neighbors.
fn constant_value(stream: &[u8], rows: u32) -> Option<Vec<u8>> {
    if rows < 2 {
        return None;
    }
    let first = &stream[..stream.iter().position(|&b| b == b'\n')? + 1];
    if first.len() * rows as usize == stream.len()
        && stream.chunks_exact(first.len()).all(|c| c == first)
    {
        Some(first.to_vec())
    } else {
        None
    }
}

/// Cut one column stream at row boundaries, every `rows_per_piece` rows —
/// a multiple of the row quantum chosen from the stream's mean value width
/// so pieces land near the byte target. The per-piece row count depends
/// only on row count and stream length, so identical column content yields
/// identical pieces across epochs.
fn cut_row_aligned(stream: &[u8], rows: u32, cfg: &Chunking) -> Vec<Vec<u8>> {
    if rows == 0 {
        debug_assert!(stream.is_empty());
        return Vec::new();
    }
    let q = cfg.row_quantum.max(1);
    let avg = stream.len().div_ceil(rows as usize).max(1);
    let mut rows_per_piece = cfg.target_piece_bytes / avg / q * q;
    if rows_per_piece == 0 {
        rows_per_piece = q;
    }
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut in_piece = 0usize;
    for (pos, &b) in stream.iter().enumerate() {
        if b == b'\n' {
            in_piece += 1;
            if in_piece == rows_per_piece {
                out.push(stream[start..=pos].to_vec());
                start = pos + 1;
                in_piece = 0;
            }
        }
    }
    if start < stream.len() {
        out.push(stream[start..].to_vec());
    }
    out
}

fn parse_kv<T: std::str::FromStr>(line: &str, key: &str) -> Option<T> {
    for part in line.split_whitespace() {
        if let Some(v) = part.strip_prefix(key).and_then(|r| r.strip_prefix('=')) {
            return v.parse().ok();
        }
    }
    None
}

/// Rebuild the original bytes from a layout and its pieces (in the order
/// `split` emitted them). Fails on any count or shape mismatch.
pub fn assemble(layout: &Layout, pieces: &[Vec<u8>]) -> Result<Vec<u8>, &'static str> {
    if layout.piece_count() != pieces.len() {
        return Err("piece count does not match layout");
    }
    match layout {
        Layout::Blob { .. } => {
            let mut out = Vec::with_capacity(pieces.iter().map(Vec::len).sum());
            for p in pieces {
                out.extend_from_slice(p);
            }
            Ok(out)
        }
        Layout::Columnar { header, tables } => {
            let mut out = Vec::new();
            out.extend_from_slice(header);
            let mut next = 0usize;
            for table in tables {
                out.extend_from_slice(&table.header);
                if table.pieces_per_col.len() != table.cols as usize {
                    return Err("column count does not match layout");
                }
                // Rebuild each column's value stream. A column with zero
                // pieces (while rows > 0) continues the piece run opened
                // by an earlier column — grouped small columns share
                // pieces — so each column consumes exactly `rows` values
                // from the current run before the next run may begin.
                // Constant columns replay their single-value piece `rows`
                // times without touching the run.
                let mut streams: Vec<Vec<u8>> = Vec::with_capacity(table.cols as usize);
                let mut run: Vec<u8> = Vec::new();
                let mut cursor = 0usize;
                for &n in &table.pieces_per_col {
                    if n == CONSTANT_COL {
                        let value = &pieces[next];
                        next += 1;
                        if value.iter().position(|&b| b == b'\n') != Some(value.len() - 1) {
                            return Err("constant piece is not one value");
                        }
                        let mut s = Vec::with_capacity(value.len() * table.rows as usize);
                        for _ in 0..table.rows {
                            s.extend_from_slice(value);
                        }
                        streams.push(s);
                        continue;
                    }
                    if n > 0 {
                        if cursor != run.len() {
                            return Err("piece run has trailing rows");
                        }
                        run.clear();
                        cursor = 0;
                        for _ in 0..n {
                            run.extend_from_slice(&pieces[next]);
                            next += 1;
                        }
                    }
                    let start = cursor;
                    for _ in 0..table.rows {
                        let end = run[cursor..]
                            .iter()
                            .position(|&b| b == b'\n')
                            .map(|p| cursor + p)
                            .ok_or("column stream ran out of rows")?;
                        cursor = end + 1;
                    }
                    streams.push(run[start..cursor].to_vec());
                }
                if cursor != run.len() {
                    return Err("piece run has trailing rows");
                }
                let mut cursors = vec![0usize; streams.len()];
                for _ in 0..table.rows {
                    for (c, stream) in streams.iter().enumerate() {
                        let start = cursors[c];
                        let end = stream[start..]
                            .iter()
                            .position(|&b| b == b'\n')
                            .map(|p| start + p)
                            .ok_or("column stream ran out of rows")?;
                        if c > 0 {
                            out.push(b',');
                        }
                        out.extend_from_slice(&stream[start..end]);
                        cursors[c] = end + 1;
                    }
                    out.push(b'\n');
                }
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telco_trace::{TraceConfig, TraceGenerator};

    fn round_trip(raw: &[u8], cfg: &Chunking) -> Layout {
        let (layout, pieces) = split(raw, cfg);
        let back = assemble(&layout, &pieces).expect("assemble");
        assert_eq!(back, raw, "chunker must be lossless");
        layout
    }

    #[test]
    fn real_snapshots_go_columnar_and_round_trip() {
        let cfg = Chunking::default();
        for snap in TraceGenerator::new(TraceConfig::tiny()).take(4) {
            let layout = round_trip(&snap.to_bytes(), &cfg);
            assert!(
                matches!(layout, Layout::Columnar { .. }),
                "wire snapshots must take the columnar path"
            );
        }
    }

    #[test]
    fn opaque_bytes_fall_back_to_blob() {
        let cfg = Chunking {
            blob_piece_bytes: 8,
            ..Chunking::default()
        };
        for raw in [
            &b""[..],
            &b"no trailing newline"[..],
            &b"#SNAPSHOT but then garbage\nnot a table\n"[..],
            &[0u8, 1, 2, 255, 254][..],
        ] {
            let layout = round_trip(raw, &cfg);
            assert!(matches!(layout, Layout::Blob { .. }), "{raw:?}");
        }
    }

    #[test]
    fn constant_columns_repeat_pieces() {
        // Two epochs with different row counts over one constant column:
        // the full (quantum-aligned) pieces must be byte-identical.
        let cfg = Chunking {
            row_quantum: 4,
            target_piece_bytes: 8,
            min_piece_bytes: 0,
            ..Chunking::default()
        };
        let make = |rows: usize| {
            let mut s = String::from("#SNAPSHOT epoch=1 ts=0\n");
            s.push_str(&format!("#TABLE CDR rows={rows} cols=1\n"));
            for _ in 0..rows {
                s.push_str("0\n");
            }
            s.into_bytes()
        };
        let (_, a) = split(&make(10), &cfg);
        let (_, b) = split(&make(13), &cfg);
        assert_eq!(a[0], b[0], "aligned full pieces dedup across epochs");
        round_trip(&make(10), &cfg);
        round_trip(&make(13), &cfg);
    }

    #[test]
    fn small_columns_share_group_pieces_and_round_trip() {
        // 6 narrow columns under the grouping floor plus one wide column:
        // the narrow ones must coalesce (fewer pieces than columns) and
        // everything must still reassemble exactly.
        let cfg = Chunking {
            row_quantum: 4,
            target_piece_bytes: 64,
            min_piece_bytes: 24,
            ..Chunking::default()
        };
        let rows = 8usize;
        let mut s = String::from("#SNAPSHOT epoch=1 ts=0\n");
        s.push_str(&format!("#TABLE CDR rows={rows} cols=7\n"));
        for r in 0..rows {
            // Narrow columns vary per row so they group rather than take
            // the constant-column path.
            let narrow: Vec<String> = (0..6).map(|c| format!("{}", (r + c) % 10)).collect();
            s.push_str(&format!(
                "{},wide-value-{r:04}-padding-padding\n",
                narrow.join(",")
            ));
        }
        let raw = s.into_bytes();
        let (layout, pieces) = split(&raw, &cfg);
        let Layout::Columnar { tables, .. } = &layout else {
            panic!("expected columnar");
        };
        let per_col = &tables[0].pieces_per_col;
        assert!(
            per_col.iter().filter(|&&n| n == 0).count() > 0,
            "some columns must continue a shared group piece: {per_col:?}"
        );
        assert!(pieces.len() < 7, "grouping must merge small columns");
        assert_eq!(assemble(&layout, &pieces).expect("assemble"), raw);
    }

    #[test]
    fn constant_columns_collapse_to_one_value_piece() {
        // Constant columns store a single value piece regardless of row
        // count — identical across epochs — and a group run spans them
        // without fragmenting.
        let cfg = Chunking {
            row_quantum: 4,
            target_piece_bytes: 64,
            min_piece_bytes: 24,
            ..Chunking::default()
        };
        let make = |rows: usize| {
            let mut s = String::from("#SNAPSHOT epoch=1 ts=0\n");
            s.push_str(&format!("#TABLE CDR rows={rows} cols=4\n"));
            for r in 0..rows {
                // cols: varying, constant zero, varying, constant zero
                s.push_str(&format!("{},0,{},0\n", r % 7, (r + 3) % 7));
            }
            s.into_bytes()
        };
        let (layout_a, pieces_a) = split(&make(9), &cfg);
        let (_, pieces_b) = split(&make(14), &cfg);
        let Layout::Columnar { tables, .. } = &layout_a else {
            panic!("expected columnar");
        };
        let per_col = &tables[0].pieces_per_col;
        assert_eq!(per_col[1], CONSTANT_COL);
        assert_eq!(per_col[3], CONSTANT_COL);
        assert_eq!(
            per_col[2], 0,
            "group run must span the constant column: {per_col:?}"
        );
        // The constant columns' pieces are the bare value, identical in
        // both epochs despite different row counts.
        let zero: Vec<Vec<u8>> = pieces_a
            .iter()
            .filter(|p| p.as_slice() == b"0\n")
            .cloned()
            .collect();
        assert_eq!(zero.len(), 2);
        assert!(pieces_b.iter().filter(|p| p.as_slice() == b"0\n").count() == 2);
        round_trip(&make(9), &cfg);
        round_trip(&make(14), &cfg);
    }

    #[test]
    fn mismatched_pieces_are_rejected() {
        let cfg = Chunking::default();
        let snap = TraceGenerator::new(TraceConfig::tiny())
            .next()
            .unwrap()
            .to_bytes();
        let (layout, mut pieces) = split(&snap, &cfg);
        pieces.pop();
        assert!(assemble(&layout, &pieces).is_err());
    }

    #[test]
    fn empty_table_sections_round_trip() {
        let cfg = Chunking::default();
        let raw = b"#SNAPSHOT epoch=0 ts=0\n#TABLE CDR rows=0 cols=200\n#TABLE NMS rows=0 cols=8\n";
        let layout = round_trip(raw, &cfg);
        assert!(matches!(layout, Layout::Columnar { .. }));
        assert_eq!(layout.piece_count(), 0);
    }
}
