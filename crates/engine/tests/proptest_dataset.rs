//! Property tests: every data-parallel operator must agree with its
//! obvious sequential counterpart, for any data and any partitioning.

use engine::Dataset;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn map_filter_equals_sequential(
        data in proptest::collection::vec(any::<i32>(), 0..500),
        parts in 1usize..12,
    ) {
        let parallel: Vec<i64> = Dataset::from_vec(data.clone(), parts)
            .map(|x| i64::from(x) * 3)
            .filter(|x| x % 2 == 0)
            .collect();
        let sequential: Vec<i64> = data
            .iter()
            .map(|&x| i64::from(x) * 3)
            .filter(|x| x % 2 == 0)
            .collect();
        prop_assert_eq!(parallel, sequential);
    }

    #[test]
    fn aggregate_equals_fold(
        data in proptest::collection::vec(any::<i16>(), 0..500),
        parts in 1usize..12,
    ) {
        let parallel = Dataset::from_vec(data.clone(), parts)
            .aggregate(0i64, |acc, &x| acc + i64::from(x), |a, b| a + b);
        let sequential: i64 = data.iter().map(|&x| i64::from(x)).sum();
        prop_assert_eq!(parallel, sequential);
    }

    #[test]
    fn reduce_by_key_equals_hashmap_fold(
        pairs in proptest::collection::vec((0u8..16, any::<i16>()), 0..400),
        parts in 1usize..8,
    ) {
        let typed: Vec<(u8, i64)> = pairs.iter().map(|&(k, v)| (k, i64::from(v))).collect();
        let parallel = Dataset::from_vec(typed.clone(), parts).reduce_by_key(|a, b| a + b);
        let mut sequential: HashMap<u8, i64> = HashMap::new();
        for (k, v) in typed {
            *sequential.entry(k).or_insert(0) += v;
        }
        prop_assert_eq!(parallel, sequential);
    }

    #[test]
    fn join_equals_nested_loop(
        left in proptest::collection::vec((0u8..8, 0u16..100), 0..60),
        right in proptest::collection::vec((0u8..8, 0u16..100), 0..60),
        parts in 1usize..6,
    ) {
        let mut parallel = Dataset::from_vec(left.clone(), parts)
            .join(Dataset::from_vec(right.clone(), parts))
            .collect();
        let mut sequential: Vec<(u8, (u16, u16))> = Vec::new();
        for &(lk, lv) in &left {
            for &(rk, rv) in &right {
                if lk == rk {
                    sequential.push((lk, (lv, rv)));
                }
            }
        }
        parallel.sort_unstable();
        sequential.sort_unstable();
        prop_assert_eq!(parallel, sequential);
    }

    #[test]
    fn reduce_is_order_insensitive_for_commutative_ops(
        data in proptest::collection::vec(0u32..1000, 0..300),
        parts in 1usize..10,
    ) {
        let parallel = Dataset::from_vec(data.clone(), parts).reduce(|a, b| a.max(b));
        prop_assert_eq!(parallel, data.iter().copied().max());
    }

    #[test]
    fn partition_count_never_loses_elements(
        data in proptest::collection::vec(any::<u8>(), 0..500),
        parts in 1usize..20,
    ) {
        let d = Dataset::from_vec(data.clone(), parts);
        prop_assert_eq!(d.len(), data.len());
        prop_assert!(d.n_partitions() >= 1);
        let mut collected = d.collect();
        let mut expected = data;
        collected.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(collected, expected);
    }
}
