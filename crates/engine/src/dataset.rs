//! `Dataset<T>`: a partitioned collection with data-parallel operators.
//!
//! Operators execute one worker thread per partition via crossbeam scoped
//! threads. Transformations are eager (no lazy DAG) — the workloads here
//! are single-pass pipelines over snapshot data, where laziness buys
//! nothing but complexity.

use std::collections::HashMap;
use std::hash::Hash;

/// Number of partitions to use by default: one per available core.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// A partitioned in-memory collection.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset<T> {
    partitions: Vec<Vec<T>>,
}

impl<T: Send + Sync> Dataset<T> {
    /// Distribute `data` round-robin-by-chunk over `n_partitions`.
    pub fn from_vec(data: Vec<T>, n_partitions: usize) -> Self {
        let n_partitions = n_partitions.max(1);
        let chunk = data.len().div_ceil(n_partitions).max(1);
        let mut partitions: Vec<Vec<T>> = Vec::with_capacity(n_partitions);
        let mut rest = data;
        while rest.len() > chunk {
            let tail = rest.split_off(chunk);
            partitions.push(rest);
            rest = tail;
        }
        partitions.push(rest);
        Self { partitions }
    }

    /// Use the machine's core count for partitioning.
    pub fn parallelize(data: Vec<T>) -> Self {
        let p = default_parallelism();
        Self::from_vec(data, p)
    }

    pub fn from_partitions(partitions: Vec<Vec<T>>) -> Self {
        Self { partitions }
    }

    pub fn n_partitions(&self) -> usize {
        self.partitions.len()
    }

    pub fn len(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.partitions.iter().all(Vec::is_empty)
    }

    /// Run `f` over each partition in parallel, collecting the outputs.
    fn run_partitions<U: Send>(self, f: impl Fn(Vec<T>) -> Vec<U> + Sync) -> Dataset<U> {
        let out = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .partitions
                .into_iter()
                .map(|part| scope.spawn(|_| f(part)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("scope panicked");
        Dataset { partitions: out }
    }

    pub fn map<U: Send>(self, f: impl Fn(T) -> U + Sync) -> Dataset<U> {
        let _s = obs::span("engine.map");
        self.run_partitions(|part| part.into_iter().map(&f).collect())
    }

    pub fn filter(self, pred: impl Fn(&T) -> bool + Sync) -> Dataset<T> {
        let _s = obs::span("engine.filter");
        self.run_partitions(|part| part.into_iter().filter(|t| pred(t)).collect())
    }

    pub fn flat_map<U: Send, I: IntoIterator<Item = U>>(
        self,
        f: impl Fn(T) -> I + Sync,
    ) -> Dataset<U> {
        let _s = obs::span("engine.flat_map");
        self.run_partitions(|part| part.into_iter().flat_map(&f).collect())
    }

    /// Gather all elements (partition order preserved).
    pub fn collect(self) -> Vec<T> {
        self.partitions.into_iter().flatten().collect()
    }

    /// Parallel fold-then-combine (Spark's `aggregate`).
    pub fn aggregate<A: Send + Clone>(
        self,
        zero: A,
        seq: impl Fn(A, &T) -> A + Sync,
        comb: impl Fn(A, A) -> A,
    ) -> A {
        let _s = obs::span("engine.aggregate");
        let partials = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .partitions
                .iter()
                .map(|part| {
                    let zero = zero.clone();
                    let seq = &seq;
                    scope.spawn(move |_| part.iter().fold(zero, seq))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("scope panicked");
        partials.into_iter().fold(zero, comb)
    }

    /// Parallel reduction; `None` on an empty dataset.
    pub fn reduce(self, f: impl Fn(T, T) -> T + Sync) -> Option<T> {
        let _s = obs::span("engine.reduce");
        let partials = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .partitions
                .into_iter()
                .map(|part| {
                    let f = &f;
                    scope.spawn(move |_| part.into_iter().reduce(f))
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|h| h.join().expect("worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("scope panicked");
        partials.into_iter().reduce(f)
    }
}

impl<K, V> Dataset<(K, V)>
where
    K: Send + Eq + Hash,
    V: Send,
{
    /// Merge values per key with `f` (Spark's `reduceByKey`): local combine
    /// per partition, then a global merge.
    pub fn reduce_by_key(self, f: impl Fn(V, V) -> V + Sync) -> HashMap<K, V> {
        let _s = obs::span("engine.reduce_by_key");
        let locals: Vec<HashMap<K, V>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .partitions
                .into_iter()
                .map(|part| {
                    let f = &f;
                    scope.spawn(move |_| {
                        let mut m: HashMap<K, V> = HashMap::new();
                        for (k, v) in part {
                            match m.remove(&k) {
                                Some(prev) => {
                                    m.insert(k, f(prev, v));
                                }
                                None => {
                                    m.insert(k, v);
                                }
                            }
                        }
                        m
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
        .expect("scope panicked");

        let mut out: HashMap<K, V> = HashMap::new();
        for local in locals {
            for (k, v) in local {
                match out.remove(&k) {
                    Some(prev) => {
                        out.insert(k, f(prev, v));
                    }
                    None => {
                        out.insert(k, v);
                    }
                }
            }
        }
        out
    }

    /// Group values per key.
    pub fn group_by_key(self) -> HashMap<K, Vec<V>> {
        let mut out: HashMap<K, Vec<V>> = HashMap::new();
        for part in self.partitions {
            for (k, v) in part {
                out.entry(k).or_default().push(v);
            }
        }
        out
    }
}

impl<K, V> Dataset<(K, V)>
where
    K: Send + Sync + Eq + Hash + Clone,
    V: Send + Sync + Clone,
{
    /// Inner hash join on the key.
    pub fn join<W: Send + Sync + Clone>(self, other: Dataset<(K, W)>) -> Dataset<(K, (V, W))> {
        let _s = obs::span("engine.join");
        // Build side: the other dataset's grouped map.
        let build: HashMap<K, Vec<W>> = other.group_by_key();
        let build = &build;
        self.run_partitions(|part| {
            let mut out = Vec::new();
            for (k, v) in part {
                if let Some(ws) = build.get(&k) {
                    for w in ws {
                        out.push((k.clone(), (v.clone(), w.clone())));
                    }
                }
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioning_covers_all_elements() {
        let d = Dataset::from_vec((0..100).collect(), 7);
        assert_eq!(d.len(), 100);
        assert!(d.n_partitions() <= 7);
        let mut all = d.collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_element_datasets() {
        let d: Dataset<i32> = Dataset::from_vec(vec![], 4);
        assert!(d.is_empty());
        assert_eq!(d.reduce(|a, b| a + b), None);

        let d = Dataset::from_vec(vec![42], 4);
        assert_eq!(d.len(), 1);
        assert_eq!(d.reduce(|a, b| a + b), Some(42));
    }

    #[test]
    fn map_filter_flat_map() {
        let d = Dataset::from_vec((1..=10).collect::<Vec<i64>>(), 3);
        let result: Vec<i64> = d
            .map(|x| x * 2)
            .filter(|x| x % 4 == 0)
            .flat_map(|x| vec![x, -x])
            .collect();
        let mut sorted = result.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![-20, -16, -12, -8, -4, 4, 8, 12, 16, 20]);
    }

    #[test]
    fn aggregate_sums_across_partitions() {
        let d = Dataset::from_vec((1..=1000u64).collect(), 8);
        let sum = d.aggregate(0u64, |acc, &x| acc + x, |a, b| a + b);
        assert_eq!(sum, 500_500);
    }

    #[test]
    fn reduce_by_key_merges_everywhere() {
        let pairs: Vec<(u32, u64)> = (0..1000).map(|i| (i % 10, 1u64)).collect();
        let counts = Dataset::from_vec(pairs, 6).reduce_by_key(|a, b| a + b);
        assert_eq!(counts.len(), 10);
        for k in 0..10 {
            assert_eq!(counts[&k], 100);
        }
    }

    #[test]
    fn group_by_key_collects_values() {
        let pairs = vec![("a", 1), ("b", 2), ("a", 3), ("c", 4), ("a", 5)];
        let grouped = Dataset::from_vec(pairs, 2).group_by_key();
        let mut a = grouped["a"].clone();
        a.sort_unstable();
        assert_eq!(a, vec![1, 3, 5]);
        assert_eq!(grouped["b"], vec![2]);
        assert_eq!(grouped.len(), 3);
    }

    #[test]
    fn hash_join_produces_all_matches() {
        let left = Dataset::from_vec(vec![(1, "l1"), (2, "l2"), (1, "l3"), (9, "l9")], 2);
        let right = Dataset::from_vec(vec![(1, "r1"), (1, "r2"), (2, "r3"), (8, "r8")], 2);
        let mut joined = left.join(right).collect();
        joined.sort();
        assert_eq!(
            joined,
            vec![
                (1, ("l1", "r1")),
                (1, ("l1", "r2")),
                (1, ("l3", "r1")),
                (1, ("l3", "r2")),
                (2, ("l2", "r3")),
            ]
        );
    }

    #[test]
    fn parallelize_uses_machine_parallelism() {
        let d = Dataset::parallelize((0..64).collect::<Vec<i32>>());
        assert!(d.n_partitions() >= 1);
        assert_eq!(d.len(), 64);
    }

    #[test]
    fn heavy_parallel_map_is_correct() {
        // Cross-check a nontrivial computation against the sequential answer.
        let data: Vec<u64> = (0..10_000).collect();
        let expected: u64 = data.iter().map(|&x| x.wrapping_mul(x) % 97).sum();
        let got = Dataset::from_vec(data, 16)
            .map(|x| x.wrapping_mul(x) % 97)
            .aggregate(0u64, |a, &x| a + x, |a, b| a + b);
        assert_eq!(got, expected);
    }
}
