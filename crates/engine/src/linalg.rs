//! Minimal dense linear algebra: just enough to solve the normal equations
//! of ordinary least squares (used by [`crate::ml::linreg`]).

/// A small square linear system `A x = b`, solved in place by Gaussian
/// elimination with partial pivoting. Returns `None` for (numerically)
/// singular systems.
pub fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n);
    for row in &a {
        assert_eq!(row.len(), n);
    }

    for col in 0..n {
        // Partial pivot: largest |a[row][col]| among remaining rows.
        let pivot =
            (col..n).max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);

        let diag = a[col][col];
        for row in col + 1..n {
            let factor = a[row][col] / diag;
            if factor == 0.0 {
                continue;
            }
            // Split borrows: the pivot row is immutable while `row` mutates.
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot = &pivot_rows[col];
            for (x, p) in rest[0].iter_mut().zip(pivot).skip(col) {
                *x -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Squared Euclidean distance of two equal-length vectors.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(a, vec![3.0, -4.0]).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_known_system() {
        // 2x + y = 5 ; x - y = 1  →  x = 2, y = 1
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let x = solve(a, vec![5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn needs_pivoting() {
        // Zero on the initial diagonal forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve(a, vec![7.0, 9.0]).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singularity() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn random_systems_round_trip() {
        // Solve A x = A x0 and recover x0.
        let n = 6;
        let mut seed = 0x5EEDu64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for _ in 0..20 {
            let a: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
            let x0: Vec<f64> = (0..n).map(|_| next()).collect();
            let b: Vec<f64> = a
                .iter()
                .map(|row| row.iter().zip(&x0).map(|(r, x)| r * x).sum())
                .collect();
            if let Some(x) = solve(a, b) {
                for (got, want) in x.iter().zip(&x0) {
                    assert!((got - want).abs() < 1e-6, "{got} vs {want}");
                }
            }
        }
    }

    #[test]
    fn sq_dist_basics() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(sq_dist(&[1.0], &[1.0]), 0.0);
    }
}
