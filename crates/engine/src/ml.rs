//! The three ML workloads of the paper's heavy tasks, implemented from
//! scratch over [`crate::Dataset`]:
//!
//! * [`colstats`] — multivariate column statistics
//!   (T6, Spark's `Statistics.colStats`): column-wise max, min, mean,
//!   variance, number of non-zeros and total count — exactly the paper's
//!   list.
//! * [`kmeans`] — Lloyd's k-means with deterministic k-means++-style
//!   seeding (T7, Spark's `KMeans`).
//! * [`linreg`] — ordinary least squares via the normal equations
//!   (T8, Spark's `regression.LinearRegression`).

use crate::dataset::Dataset;
use crate::linalg::{solve, sq_dist};

/// Column-wise multivariate statistics (paper T6: "column-wise max, min,
/// mean, variance, number of non-zeros and the total count").
#[derive(Debug, Clone, PartialEq)]
pub struct ColStats {
    pub count: u64,
    pub max: Vec<f64>,
    pub min: Vec<f64>,
    pub mean: Vec<f64>,
    pub variance: Vec<f64>,
    pub non_zeros: Vec<u64>,
}

#[derive(Clone)]
struct StatsAcc {
    count: u64,
    max: Vec<f64>,
    min: Vec<f64>,
    sum: Vec<f64>,
    sum_sq: Vec<f64>,
    non_zeros: Vec<u64>,
}

impl StatsAcc {
    fn new(dims: usize) -> Self {
        Self {
            count: 0,
            max: vec![f64::NEG_INFINITY; dims],
            min: vec![f64::INFINITY; dims],
            sum: vec![0.0; dims],
            sum_sq: vec![0.0; dims],
            non_zeros: vec![0; dims],
        }
    }

    fn add(mut self, row: &[f64]) -> Self {
        self.count += 1;
        for (d, &v) in row.iter().enumerate() {
            if v > self.max[d] {
                self.max[d] = v;
            }
            if v < self.min[d] {
                self.min[d] = v;
            }
            self.sum[d] += v;
            self.sum_sq[d] += v * v;
            if v != 0.0 {
                self.non_zeros[d] += 1;
            }
        }
        self
    }

    fn merge(mut self, other: Self) -> Self {
        self.count += other.count;
        for d in 0..self.max.len() {
            self.max[d] = self.max[d].max(other.max[d]);
            self.min[d] = self.min[d].min(other.min[d]);
            self.sum[d] += other.sum[d];
            self.sum_sq[d] += other.sum_sq[d];
            self.non_zeros[d] += other.non_zeros[d];
        }
        self
    }
}

/// Compute [`ColStats`] over rows of equal dimension. Returns `None` for an
/// empty dataset.
pub fn colstats(rows: Dataset<Vec<f64>>, dims: usize) -> Option<ColStats> {
    if rows.is_empty() {
        return None;
    }
    let acc = rows.aggregate(
        StatsAcc::new(dims),
        |acc, row| {
            debug_assert_eq!(row.len(), dims);
            acc.add(row)
        },
        StatsAcc::merge,
    );
    let n = acc.count as f64;
    let mean: Vec<f64> = acc.sum.iter().map(|s| s / n).collect();
    // Sample variance (n-1 denominator), matching Spark's colStats.
    let denom = if acc.count > 1 { n - 1.0 } else { 1.0 };
    let variance: Vec<f64> = acc
        .sum_sq
        .iter()
        .zip(&mean)
        .map(|(&ss, &m)| ((ss - n * m * m) / denom).max(0.0))
        .collect();
    Some(ColStats {
        count: acc.count,
        max: acc.max,
        min: acc.min,
        mean,
        variance,
        non_zeros: acc.non_zeros,
    })
}

/// Pearson correlation matrix over row vectors (Spark's
/// `Statistics.corr`), computed in one data-parallel pass over the
/// sufficient statistics (sums, squares, cross products).
///
/// Returns the symmetric `dims × dims` matrix; entries involving a
/// zero-variance column are 0 (by convention, rather than NaN). `None` for
/// datasets with fewer than two rows.
pub fn correlation_matrix(rows: Dataset<Vec<f64>>, dims: usize) -> Option<Vec<Vec<f64>>> {
    if rows.len() < 2 {
        return None;
    }
    // (n, sums, cross-product matrix)
    let (n, sums, cross) = rows.aggregate(
        (0u64, vec![0.0f64; dims], vec![vec![0.0f64; dims]; dims]),
        |mut acc, row| {
            debug_assert_eq!(row.len(), dims);
            acc.0 += 1;
            for i in 0..dims {
                acc.1[i] += row[i];
                for j in i..dims {
                    acc.2[i][j] += row[i] * row[j];
                }
            }
            acc
        },
        |mut a, b| {
            a.0 += b.0;
            for (x, y) in a.1.iter_mut().zip(b.1) {
                *x += y;
            }
            for (ra, rb) in a.2.iter_mut().zip(b.2) {
                for (x, y) in ra.iter_mut().zip(rb) {
                    *x += y;
                }
            }
            a
        },
    );
    let n = n as f64;
    let mut corr = vec![vec![0.0; dims]; dims];
    for i in 0..dims {
        for j in i..dims {
            let cov = cross[i][j] / n - (sums[i] / n) * (sums[j] / n);
            let var_i = cross[i][i] / n - (sums[i] / n) * (sums[i] / n);
            let var_j = cross[j][j] / n - (sums[j] / n) * (sums[j] / n);
            let denom = (var_i * var_j).sqrt();
            let r = if denom > 1e-12 {
                (cov / denom).clamp(-1.0, 1.0)
            } else {
                0.0
            };
            corr[i][j] = r;
            corr[j][i] = r;
        }
    }
    for (i, row) in corr.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    Some(corr)
}

/// A fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeansModel {
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of points to their assigned centroid.
    pub inertia: f64,
    pub iterations: u32,
}

impl KMeansModel {
    /// Index of the nearest centroid to `point`.
    pub fn predict(&self, point: &[f64]) -> usize {
        nearest(&self.centroids, point).0
    }
}

fn nearest(centroids: &[Vec<f64>], point: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = sq_dist(c, point);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// Lloyd's algorithm with deterministic farthest-point ("k-means++ style")
/// seeding. Runs at most `max_iters` iterations or until assignments
/// converge. Panics if `k == 0`; an empty dataset returns a model with no
/// centroids.
pub fn kmeans(points: &Dataset<Vec<f64>>, k: usize, max_iters: u32) -> KMeansModel {
    assert!(k > 0, "k must be positive");
    let data: Vec<Vec<f64>> = points.clone().collect();
    if data.is_empty() {
        return KMeansModel {
            centroids: vec![],
            inertia: 0.0,
            iterations: 0,
        };
    }
    let k = k.min(data.len());

    // Deterministic k-means++-style seeding: start from the first point,
    // then repeatedly take the point farthest from the chosen set.
    let mut centroids: Vec<Vec<f64>> = vec![data[0].clone()];
    while centroids.len() < k {
        let far = data
            .iter()
            .map(|p| nearest(&centroids, p).1)
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        centroids.push(data[far].clone());
    }

    let dims = data[0].len();
    let mut iterations = 0;
    let mut inertia = f64::INFINITY;
    for it in 0..max_iters {
        iterations = it + 1;
        // Assignment + per-cluster sums, in parallel.
        let centroids_ref = &centroids;
        let (sums, counts, new_inertia) = points.clone().aggregate(
            (vec![vec![0.0; dims]; k], vec![0u64; k], 0.0),
            |mut acc, p| {
                let (c, d) = nearest(centroids_ref, p);
                for (dst, src) in acc.0[c].iter_mut().zip(p) {
                    *dst += src;
                }
                acc.1[c] += 1;
                acc.2 += d;
                acc
            },
            |mut a, b| {
                for (sa, sb) in a.0.iter_mut().zip(b.0) {
                    for (x, y) in sa.iter_mut().zip(sb) {
                        *x += y;
                    }
                }
                for (ca, cb) in a.1.iter_mut().zip(b.1) {
                    *ca += cb;
                }
                a.2 += b.2;
                a
            },
        );

        for c in 0..k {
            if counts[c] > 0 {
                centroids[c] = sums[c].iter().map(|s| s / counts[c] as f64).collect();
            }
        }
        let improvement = inertia - new_inertia;
        inertia = new_inertia;
        if improvement.abs() < 1e-9 {
            break;
        }
    }
    KMeansModel {
        centroids,
        inertia,
        iterations,
    }
}

/// A fitted ordinary-least-squares model: `y ≈ intercept + w · x`.
#[derive(Debug, Clone)]
pub struct LinearModel {
    pub weights: Vec<f64>,
    pub intercept: f64,
    /// Coefficient of determination on the training data.
    pub r2: f64,
}

impl LinearModel {
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.intercept + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }
}

/// Fit OLS over `(features, target)` pairs via the normal equations
/// `XᵀX w = Xᵀy` (with an intercept column), the XᵀX accumulation running
/// data-parallel. Returns `None` if the system is singular or the dataset
/// is empty.
pub fn linreg(samples: Dataset<(Vec<f64>, f64)>, dims: usize) -> Option<LinearModel> {
    linreg_ridge(samples, dims, 0.0)
}

/// [`linreg`] with L2 (ridge) regularization `lambda` on the non-intercept
/// weights. A tiny positive `lambda` makes degenerate feature columns
/// (constant or collinear) solvable instead of singular.
pub fn linreg_ridge(
    samples: Dataset<(Vec<f64>, f64)>,
    dims: usize,
    lambda: f64,
) -> Option<LinearModel> {
    if samples.is_empty() {
        return None;
    }
    let d = dims + 1; // intercept column first
    let (xtx, xty, sum_y, sum_y2, n) = samples.clone().aggregate(
        (vec![vec![0.0; d]; d], vec![0.0; d], 0.0, 0.0, 0u64),
        |mut acc, (x, y)| {
            debug_assert_eq!(x.len(), dims);
            let mut row = Vec::with_capacity(d);
            row.push(1.0);
            row.extend_from_slice(x);
            for i in 0..d {
                for j in 0..d {
                    acc.0[i][j] += row[i] * row[j];
                }
                acc.1[i] += row[i] * y;
            }
            acc.2 += y;
            acc.3 += y * y;
            acc.4 += 1;
            acc
        },
        |mut a, b| {
            for (ra, rb) in a.0.iter_mut().zip(b.0) {
                for (x, y) in ra.iter_mut().zip(rb) {
                    *x += y;
                }
            }
            for (x, y) in a.1.iter_mut().zip(b.1) {
                *x += y;
            }
            a.2 += b.2;
            a.3 += b.3;
            a.4 += b.4;
            a
        },
    );

    let mut xtx = xtx;
    for (i, row) in xtx.iter_mut().enumerate().skip(1) {
        row[i] += lambda;
    }
    let coeffs = solve(xtx, xty)?;
    let intercept = coeffs[0];
    let weights = coeffs[1..].to_vec();

    // R² on the training set.
    let model = LinearModel {
        weights,
        intercept,
        r2: 0.0,
    };
    let ss_res = samples.aggregate(
        0.0,
        |acc, (x, y)| {
            let e = y - model.predict(x);
            acc + e * e
        },
        |a, b| a + b,
    );
    let mean_y = sum_y / n as f64;
    let ss_tot = (sum_y2 - n as f64 * mean_y * mean_y).max(1e-30);
    Some(LinearModel {
        r2: 1.0 - ss_res / ss_tot,
        ..model
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds<T: Send + Sync>(v: Vec<T>) -> Dataset<T> {
        Dataset::from_vec(v, 4)
    }

    #[test]
    fn colstats_matches_hand_computation() {
        let rows = vec![
            vec![1.0, 0.0],
            vec![2.0, 5.0],
            vec![3.0, 0.0],
            vec![4.0, -5.0],
        ];
        let s = colstats(ds(rows), 2).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.max, vec![4.0, 5.0]);
        assert_eq!(s.min, vec![1.0, -5.0]);
        assert_eq!(s.mean, vec![2.5, 0.0]);
        assert_eq!(s.non_zeros, vec![4, 2]);
        // Sample variance of 1..4 is 5/3; of {0,5,0,-5} is 50/3.
        assert!((s.variance[0] - 5.0 / 3.0).abs() < 1e-12);
        assert!((s.variance[1] - 50.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn colstats_empty_and_single() {
        assert!(colstats(ds::<Vec<f64>>(vec![]), 3).is_none());
        let s = colstats(ds(vec![vec![7.0]]), 1).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.variance, vec![0.0]);
        assert_eq!(s.mean, vec![7.0]);
    }

    #[test]
    fn correlation_matrix_recovers_known_relations() {
        // col1 = 2*col0 (r=1), col2 = -col0 (r=-1), col3 independent-ish.
        let rows: Vec<Vec<f64>> = (0..500)
            .map(|i| {
                let x = f64::from(i % 37);
                let noise = f64::from((i * 7919) % 101) - 50.0;
                vec![x, 2.0 * x, -x, noise]
            })
            .collect();
        let corr = correlation_matrix(ds(rows), 4).unwrap();
        for (i, row) in corr.iter().enumerate() {
            assert!((row[i] - 1.0).abs() < 1e-12);
            for (j, &v) in row.iter().enumerate() {
                assert!((v - corr[j][i]).abs() < 1e-12, "symmetry");
                assert!(v.abs() <= 1.0 + 1e-12);
            }
        }
        assert!((corr[0][1] - 1.0).abs() < 1e-9, "perfect positive");
        assert!((corr[0][2] + 1.0).abs() < 1e-9, "perfect negative");
        assert!(
            corr[0][3].abs() < 0.3,
            "independent columns ~0: {}",
            corr[0][3]
        );
    }

    #[test]
    fn correlation_matrix_degenerate_inputs() {
        assert!(correlation_matrix(ds::<Vec<f64>>(vec![]), 2).is_none());
        assert!(correlation_matrix(ds(vec![vec![1.0, 2.0]]), 2).is_none());
        // Constant column: correlation defined as 0 off-diagonal.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![f64::from(i), 5.0]).collect();
        let corr = correlation_matrix(ds(rows), 2).unwrap();
        assert_eq!(corr[0][1], 0.0);
        assert_eq!(corr[1][1], 1.0);
    }

    #[test]
    fn kmeans_separates_obvious_clusters() {
        let mut points = Vec::new();
        for i in 0..50 {
            let j = f64::from(i % 7) * 0.01;
            points.push(vec![0.0 + j, 0.0 + j]);
            points.push(vec![10.0 + j, 10.0 + j]);
            points.push(vec![-10.0 + j, 10.0 + j]);
        }
        let model = kmeans(&ds(points), 3, 50);
        assert_eq!(model.centroids.len(), 3);
        assert!(model.inertia < 1.0, "inertia {}", model.inertia);
        // The three cluster centers are recovered (in some order).
        let mut found = [false; 3];
        for c in &model.centroids {
            if sq_dist(c, &[0.03, 0.03]) < 0.1 {
                found[0] = true;
            }
            if sq_dist(c, &[10.03, 10.03]) < 0.1 {
                found[1] = true;
            }
            if sq_dist(c, &[-9.97, 10.03]) < 0.1 {
                found[2] = true;
            }
        }
        assert_eq!(found, [true; 3]);
        // Prediction assigns a fresh point to the right cluster.
        let p0 = model.predict(&[0.1, -0.1]);
        let p1 = model.predict(&[9.5, 10.5]);
        assert_ne!(p0, p1);
    }

    #[test]
    fn kmeans_edge_cases() {
        // k larger than the dataset degrades to one centroid per point.
        let model = kmeans(&ds(vec![vec![1.0], vec![2.0]]), 5, 10);
        assert_eq!(model.centroids.len(), 2);
        assert!(model.inertia < 1e-12);

        let empty = kmeans(&ds::<Vec<f64>>(vec![]), 3, 10);
        assert!(empty.centroids.is_empty());

        // Identical points: converges immediately, zero inertia.
        let model = kmeans(&ds(vec![vec![3.0, 3.0]; 20]), 2, 10);
        assert!(model.inertia < 1e-12);
    }

    #[test]
    fn linreg_recovers_exact_linear_function() {
        // y = 3 + 2a - 5b, no noise.
        let samples: Vec<(Vec<f64>, f64)> = (0..200)
            .map(|i| {
                let a = f64::from(i % 17);
                let b = f64::from(i % 5) * 0.5;
                (vec![a, b], 3.0 + 2.0 * a - 5.0 * b)
            })
            .collect();
        let m = linreg(ds(samples), 2).unwrap();
        assert!(
            (m.intercept - 3.0).abs() < 1e-8,
            "intercept {}",
            m.intercept
        );
        assert!((m.weights[0] - 2.0).abs() < 1e-8);
        assert!((m.weights[1] + 5.0).abs() < 1e-8);
        assert!(m.r2 > 0.999999);
        assert!((m.predict(&[1.0, 1.0]) - 0.0).abs() < 1e-8);
    }

    #[test]
    fn linreg_with_noise_still_close() {
        let mut seed = 11u64;
        let mut noise = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 0.2
        };
        let samples: Vec<(Vec<f64>, f64)> = (0..500)
            .map(|i| {
                let x = f64::from(i) / 50.0;
                (vec![x], 1.0 + 4.0 * x + noise())
            })
            .collect();
        let m = linreg(ds(samples), 1).unwrap();
        assert!((m.weights[0] - 4.0).abs() < 0.05);
        assert!((m.intercept - 1.0).abs() < 0.15);
        assert!(m.r2 > 0.99);
    }

    #[test]
    fn linreg_degenerate_inputs() {
        assert!(linreg(ds::<(Vec<f64>, f64)>(vec![]), 2).is_none());
        // Constant feature duplicating the intercept → singular.
        let samples: Vec<(Vec<f64>, f64)> = (0..10).map(|i| (vec![1.0], f64::from(i))).collect();
        assert!(linreg(ds(samples), 1).is_none());
    }
}
