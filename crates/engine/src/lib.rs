//! A partitioned data-parallel compute engine (Spark-class substrate).
//!
//! The paper runs its heavy tasks — multivariate statistics (T6), k-means
//! clustering (T7) and linear regression (T8) — "with Spark
//! parallelization" over snapshots loaded from HDFS. This crate provides
//! the equivalent: an in-process [`Dataset`] of partitions executed across
//! threads ([`dataset`]), plus the three ML algorithms the tasks use
//! ([`ml`]), implemented from scratch.
//!
//! Those tasks are CPU-bound; the experimental point (Fig. 12) is that
//! compressed input neither helps nor hurts much once decompression has
//! happened in the first pass. Any data-parallel executor with the same
//! algorithms reproduces that, which is why an in-process engine is a
//! faithful substitute.

pub mod dataset;
pub mod linalg;
pub mod ml;

pub use dataset::Dataset;
pub use ml::{
    colstats, correlation_matrix, kmeans, linreg, linreg_ridge, ColStats, KMeansModel, LinearModel,
};
