//! LZMA-style adaptive binary range coder.
//!
//! This is the entropy stage of the `7z-lite` codec: an arithmetic coder
//! over single bits, each predicted by an adaptive 11-bit probability model.
//! Also provides unmodeled "direct bits" and bit-tree contexts, the building
//! blocks LZMA composes its literal/length/distance coders from.

const PROB_BITS: u32 = 11;
const PROB_INIT: u16 = (1 << PROB_BITS) / 2;
const MOVE_BITS: u32 = 5;
const TOP: u32 = 1 << 24;

/// Adaptive probability of a zero bit (11-bit fixed point).
#[derive(Debug, Clone, Copy)]
pub struct BitModel(u16);

impl Default for BitModel {
    fn default() -> Self {
        BitModel(PROB_INIT)
    }
}

impl BitModel {
    #[inline]
    fn update(&mut self, bit: u32) {
        if bit == 0 {
            self.0 += ((1 << PROB_BITS) - self.0) >> MOVE_BITS;
        } else {
            self.0 -= self.0 >> MOVE_BITS;
        }
    }
}

/// Range encoder producing a byte stream.
#[derive(Debug)]
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    pub fn new() -> Self {
        Self {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    #[inline]
    fn shift_low(&mut self) {
        if (self.low as u32) < 0xFF00_0000 || (self.low >> 32) != 0 {
            let carry = (self.low >> 32) as u8;
            self.out.push(self.cache.wrapping_add(carry));
            for _ in 1..self.cache_size {
                self.out.push(0xFFu8.wrapping_add(carry));
            }
            self.cache = (self.low >> 24) as u8;
            self.cache_size = 0;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    /// Encode one bit under an adaptive model.
    #[inline]
    pub fn encode_bit(&mut self, model: &mut BitModel, bit: u32) {
        let bound = (self.range >> PROB_BITS) * u32::from(model.0);
        if bit == 0 {
            self.range = bound;
        } else {
            self.low += u64::from(bound);
            self.range -= bound;
        }
        model.update(bit);
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    /// Encode `n` unmodeled bits of `value`, MSB first.
    pub fn encode_direct(&mut self, value: u32, n: u32) {
        for i in (0..n).rev() {
            self.range >>= 1;
            if (value >> i) & 1 != 0 {
                self.low += u64::from(self.range);
            }
            while self.range < TOP {
                self.range <<= 8;
                self.shift_low();
            }
        }
    }

    /// Flush and return the encoded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// Range decoder over a byte slice. Reads past the end yield zero bytes
/// (the encoder's flush guarantees well-formed streams never need them);
/// [`RangeDecoder::is_overrun`] reports whether any such read happened, so
/// callers decoding untrusted token counts can stop instead of synthesizing
/// output from the implicit zero padding forever.
#[derive(Debug)]
pub struct RangeDecoder<'a> {
    input: &'a [u8],
    pos: usize,
    code: u32,
    range: u32,
    overrun: bool,
}

impl<'a> RangeDecoder<'a> {
    pub fn new(input: &'a [u8]) -> Self {
        let mut d = Self {
            input,
            pos: 1, // skip the encoder's initial zero cache byte
            code: 0,
            range: u32::MAX,
            overrun: false,
        };
        for _ in 0..4 {
            d.code = (d.code << 8) | u32::from(d.next_byte());
        }
        d
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        if self.pos >= self.input.len() {
            self.overrun = true;
        }
        let b = self.input.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// True once any read has gone past the end of the input. Well-formed
    /// streams never overrun: the decoder's byte consumption mirrors the
    /// encoder's normalization schedule, and the encoder flushes five
    /// trailing bytes to cover the decoder's initial lookahead.
    pub fn is_overrun(&self) -> bool {
        self.overrun
    }

    /// Decode one bit under an adaptive model.
    #[inline]
    pub fn decode_bit(&mut self, model: &mut BitModel) -> u32 {
        let bound = (self.range >> PROB_BITS) * u32::from(model.0);
        let bit = if self.code < bound {
            self.range = bound;
            0
        } else {
            self.code -= bound;
            self.range -= bound;
            1
        };
        model.update(bit);
        while self.range < TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | u32::from(self.next_byte());
        }
        bit
    }

    /// Decode `n` unmodeled bits, MSB first.
    pub fn decode_direct(&mut self, n: u32) -> u32 {
        let mut value = 0u32;
        for _ in 0..n {
            self.range >>= 1;
            let bit = if self.code >= self.range {
                self.code -= self.range;
                1
            } else {
                0
            };
            value = (value << 1) | bit;
            while self.range < TOP {
                self.range <<= 8;
                self.code = (self.code << 8) | u32::from(self.next_byte());
            }
        }
        value
    }
}

/// A complete binary tree of bit models encoding fixed-width symbols.
#[derive(Debug, Clone)]
pub struct BitTree {
    models: Vec<BitModel>,
    bits: u32,
}

impl BitTree {
    pub fn new(bits: u32) -> Self {
        Self {
            models: vec![BitModel::default(); 1 << bits],
            bits,
        }
    }

    /// Encode a `bits`-wide symbol MSB-first.
    pub fn encode(&mut self, enc: &mut RangeEncoder, symbol: u32) {
        debug_assert!(symbol < (1 << self.bits));
        let mut m = 1usize;
        for i in (0..self.bits).rev() {
            let bit = (symbol >> i) & 1;
            enc.encode_bit(&mut self.models[m], bit);
            m = (m << 1) | bit as usize;
        }
    }

    /// Decode a `bits`-wide symbol.
    pub fn decode(&mut self, dec: &mut RangeDecoder<'_>) -> u32 {
        let mut m = 1usize;
        for _ in 0..self.bits {
            let bit = dec.decode_bit(&mut self.models[m]);
            m = (m << 1) | bit as usize;
        }
        (m as u32) - (1 << self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_model_bit_sequence_round_trips() {
        let bits: Vec<u32> = (0..5000).map(|i| u32::from(i % 10 == 0)).collect();
        let mut enc = RangeEncoder::new();
        let mut m = BitModel::default();
        for &b in &bits {
            enc.encode_bit(&mut m, b);
        }
        let bytes = enc.finish();
        // Skewed bits (90% zeros) must compress well below 1 bit/symbol.
        assert!(bytes.len() < bits.len() / 8);

        let mut dec = RangeDecoder::new(&bytes);
        let mut m = BitModel::default();
        for &b in &bits {
            assert_eq!(dec.decode_bit(&mut m), b);
        }
    }

    #[test]
    fn direct_bits_round_trip() {
        let values = [
            (0u32, 1u32),
            (1, 1),
            (0xABCD, 16),
            (0, 5),
            (31, 5),
            (0xFFFF_FFFF, 32),
        ];
        let mut enc = RangeEncoder::new();
        for &(v, n) in &values {
            enc.encode_direct(v, n);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        for &(v, n) in &values {
            assert_eq!(dec.decode_direct(n), v, "value {v:#x} width {n}");
        }
    }

    #[test]
    fn bit_tree_round_trips_all_symbols() {
        let mut tree_enc = BitTree::new(8);
        let symbols: Vec<u32> = (0..256)
            .chain((0..256).rev())
            .chain([0, 255, 128, 1])
            .collect();
        let mut enc = RangeEncoder::new();
        for &s in &symbols {
            tree_enc.encode(&mut enc, s);
        }
        let bytes = enc.finish();
        let mut tree_dec = BitTree::new(8);
        let mut dec = RangeDecoder::new(&bytes);
        for &s in &symbols {
            assert_eq!(tree_dec.decode(&mut dec), s);
        }
    }

    #[test]
    fn mixed_modeled_and_direct_round_trip() {
        let mut enc = RangeEncoder::new();
        let mut m = BitModel::default();
        let mut tree = BitTree::new(4);
        for i in 0..1000u32 {
            enc.encode_bit(&mut m, i & 1);
            tree.encode(&mut enc, i % 16);
            enc.encode_direct(i % 128, 7);
        }
        let bytes = enc.finish();

        let mut dec = RangeDecoder::new(&bytes);
        let mut m = BitModel::default();
        let mut tree = BitTree::new(4);
        for i in 0..1000u32 {
            assert_eq!(dec.decode_bit(&mut m), i & 1);
            assert_eq!(tree.decode(&mut dec), i % 16);
            assert_eq!(dec.decode_direct(7), i % 128);
        }
    }

    #[test]
    fn carry_propagation_is_handled() {
        // Long runs of highly-probable bits stress the carry/cache path.
        let mut enc = RangeEncoder::new();
        let mut m = BitModel::default();
        let pattern: Vec<u32> = (0..20_000).map(|i| u32::from(i % 1000 == 999)).collect();
        for &b in &pattern {
            enc.encode_bit(&mut m, b);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        let mut m = BitModel::default();
        for &b in &pattern {
            assert_eq!(dec.decode_bit(&mut m), b);
        }
    }
}
