//! `snappy-lite`: a byte-oriented LZ codec with no entropy stage,
//! Snappy-class — maximum speed, roughly half the compression ratio of the
//! entropy-coded codecs (exactly the trade-off Table I reports for SNAPPY).
//!
//! The wire format follows Snappy's tag-byte design: the low two bits of
//! each tag select literal-run vs copy, the high six bits carry the length.

use crate::crc32::crc32;
use crate::lz77::{self, Lz77Config, Token, MIN_MATCH};
use crate::varint;
use crate::{Codec, CodecError};

const MAGIC: &[u8; 4] = b"SPSN";
const TAG_LITERAL: u8 = 0b00;
const TAG_COPY: u8 = 0b10;

/// Snappy-class codec. See the module docs.
#[derive(Debug, Clone, Copy)]
pub struct SnappyLite {
    config: Lz77Config,
}

impl Default for SnappyLite {
    fn default() -> Self {
        Self {
            config: Lz77Config::snappy_class(),
        }
    }
}

impl SnappyLite {
    pub fn with_config(config: Lz77Config) -> Self {
        assert!(config.window_log <= 16, "copies carry 16-bit offsets");
        assert!(config.max_match <= MIN_MATCH as u32 + 63);
        Self { config }
    }
}

fn emit_literal_run(out: &mut Vec<u8>, run: &[u8]) {
    let mut rest = run;
    while !rest.is_empty() {
        // Up to 60 literal bytes fit the tag; longer runs use extension bytes.
        let take = rest.len().min(1 << 16);
        let n = take - 1;
        if n < 60 {
            out.push(TAG_LITERAL | ((n as u8) << 2));
        } else if n < 256 {
            out.push(TAG_LITERAL | (60 << 2));
            out.push(n as u8);
        } else {
            out.push(TAG_LITERAL | (61 << 2));
            out.extend_from_slice(&(n as u16).to_le_bytes());
        }
        out.extend_from_slice(&rest[..take]);
        rest = &rest[take..];
    }
}

impl Codec for SnappyLite {
    fn name(&self) -> &'static str {
        "snappy-lite"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let tokens = lz77::parse(input, self.config);
        let mut out = Vec::with_capacity(input.len() / 2 + 64);
        out.extend_from_slice(MAGIC);
        varint::write_u64(&mut out, input.len() as u64);
        out.extend_from_slice(&crc32(input).to_le_bytes());

        // Batch consecutive literals into runs.
        let mut run_start = 0usize; // position in input of the pending run
        let mut pos = 0usize;
        for t in &tokens {
            match *t {
                Token::Literal(_) => pos += 1,
                Token::Match { len, dist } => {
                    if pos > run_start {
                        emit_literal_run(&mut out, &input[run_start..pos]);
                    }
                    debug_assert!(len >= MIN_MATCH as u32 && len <= MIN_MATCH as u32 + 63);
                    out.push(TAG_COPY | (((len - MIN_MATCH as u32) as u8) << 2));
                    out.extend_from_slice(&(dist as u16).to_le_bytes());
                    pos += len as usize;
                    run_start = pos;
                }
            }
        }
        if pos > run_start {
            emit_literal_run(&mut out, &input[run_start..pos]);
        }
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        if input.len() < 4 || &input[..4] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let mut pos = 4;
        let declared_len = varint::read_u64(input, &mut pos)? as usize;
        if pos + 4 > input.len() {
            return Err(CodecError::Truncated);
        }
        let stored_crc = u32::from_le_bytes(input[pos..pos + 4].try_into().unwrap());
        pos += 4;

        let mut out = Vec::with_capacity(crate::bounded_capacity(declared_len));
        while out.len() < declared_len {
            let tag = *input.get(pos).ok_or(CodecError::Truncated)?;
            pos += 1;
            match tag & 0b11 {
                TAG_LITERAL => {
                    let code = usize::from(tag >> 2);
                    let n = match code {
                        0..=59 => code + 1,
                        60 => {
                            let b = *input.get(pos).ok_or(CodecError::Truncated)?;
                            pos += 1;
                            usize::from(b) + 1
                        }
                        61 => {
                            if pos + 2 > input.len() {
                                return Err(CodecError::Truncated);
                            }
                            let v = u16::from_le_bytes(input[pos..pos + 2].try_into().unwrap());
                            pos += 2;
                            usize::from(v) + 1
                        }
                        _ => return Err(CodecError::Corrupt("reserved literal tag")),
                    };
                    if pos + n > input.len() {
                        return Err(CodecError::Truncated);
                    }
                    out.extend_from_slice(&input[pos..pos + n]);
                    pos += n;
                }
                TAG_COPY => {
                    let len = usize::from(tag >> 2) + MIN_MATCH;
                    if pos + 2 > input.len() {
                        return Err(CodecError::Truncated);
                    }
                    let dist =
                        usize::from(u16::from_le_bytes(input[pos..pos + 2].try_into().unwrap()));
                    pos += 2;
                    if dist == 0 || dist > out.len() {
                        return Err(CodecError::Corrupt("copy distance exceeds history"));
                    }
                    let start = out.len() - dist;
                    for i in 0..len {
                        let b = out[start + i];
                        out.push(b);
                    }
                }
                _ => return Err(CodecError::Corrupt("unknown tag type")),
            }
            if out.len() > declared_len {
                return Err(CodecError::Corrupt("output exceeds declared length"));
            }
        }
        let actual = crc32(&out);
        if actual != stored_crc {
            return Err(CodecError::ChecksumMismatch {
                expected: stored_crc,
                actual,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GzipLite;

    fn round_trip(data: &[u8]) -> Vec<u8> {
        let codec = SnappyLite::default();
        let packed = codec.compress(data);
        assert_eq!(codec.decompress(&packed).unwrap(), data);
        packed
    }

    #[test]
    fn empty_and_small() {
        round_trip(b"");
        round_trip(b"q");
        round_trip(b"snappy");
    }

    #[test]
    fn long_literal_runs() {
        // Incompressible: exercises 1-byte and 2-byte literal extensions.
        let mut state = 5u64;
        for n in [1usize, 59, 60, 61, 255, 256, 257, 70_000] {
            let data: Vec<u8> = (0..n)
                .map(|_| {
                    state = state.wrapping_mul(0x5851_F42D_4C95_7F2D).wrapping_add(1);
                    (state >> 48) as u8
                })
                .collect();
            round_trip(&data);
        }
    }

    #[test]
    fn repetitive_data_compresses_but_less_than_gzip() {
        let row = b"ts=201601221530,cell=1234,up=500,down=32000\n";
        let data: Vec<u8> = row.iter().copied().cycle().take(150_000).collect();
        let snappy = round_trip(&data);
        let gzip = GzipLite::default().compress(&data);
        assert!(
            snappy.len() < data.len() / 2,
            "must compress repetitive data"
        );
        assert!(
            gzip.len() < snappy.len(),
            "entropy coding should beat tag bytes: gzip {} vs snappy {}",
            gzip.len(),
            snappy.len()
        );
    }

    #[test]
    fn overlapping_copies() {
        round_trip(&vec![b'z'; 4096]);
    }

    #[test]
    fn rejects_corruption() {
        let codec = SnappyLite::default();
        let data = b"hello hello hello hello hello".repeat(50);
        let mut packed = codec.compress(&data);
        let mid = packed.len() / 2;
        packed[mid] = packed[mid].wrapping_add(1);
        assert!(codec.decompress(&packed).is_err());
        assert_eq!(codec.decompress(b"BAD!"), Err(CodecError::BadMagic));
    }

    #[test]
    fn truncation_detected() {
        let codec = SnappyLite::default();
        let data = b"some data to truncate ".repeat(30);
        let packed = codec.compress(&data);
        assert!(codec.decompress(&packed[..packed.len() - 2]).is_err());
    }
}
