//! `zstd-lite`: a Zstd-class codec — LZ77 over a 128 KiB window with the
//! token stream split into literal / literal-length / match-length /
//! distance streams, each entropy-coded with tANS ([`crate::fse`]), plus
//! optional trained dictionaries ([`crate::dict`]).
//!
//! Mirrors the paper's ZSTD entry: "new generation entropy coders ... of the
//! Asymmetric Numeral Systems family" with "domain-specific training
//! dictionaries" (§IV-B).

use crate::bitio::{BitReader, BitWriter};
use crate::crc32::crc32;
use crate::dict::Dictionary;
use crate::fse::{normalize, read_norm, write_norm, FseDecoder, FseEncoder};
use crate::lz77::{self, Lz77Config, Token, MIN_MATCH};
use crate::slots::{base_of, slot_of};
use crate::varint;
use crate::{Codec, CodecError};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"SPZS";
const FLAG_DICT: u8 = 0b0000_0001;
const LIT_TABLE_LOG: u32 = 11;
const SLOT_TABLE_LOG: u32 = 8;
const SLOT_ALPHABET: usize = 64;

/// Zstd-class codec, optionally armed with a trained dictionary.
#[derive(Debug, Clone)]
pub struct ZstdLite {
    config: Lz77Config,
    dict: Option<Arc<Dictionary>>,
}

impl Default for ZstdLite {
    fn default() -> Self {
        Self {
            config: Lz77Config::zstd_class(),
            dict: None,
        }
    }
}

impl ZstdLite {
    pub fn with_config(config: Lz77Config) -> Self {
        // Distance slots cover values below 2^31 within the 64-symbol
        // alphabet; 26 bits (64 MiB window) keeps extra-bit counts sane.
        assert!(
            config.window_log <= 26,
            "window too large for distance slots"
        );
        Self { config, dict: None }
    }

    /// Attach a trained dictionary. Compressed output records the
    /// dictionary id; decompression verifies it.
    pub fn with_dictionary(mut self, dict: Arc<Dictionary>) -> Self {
        // A dictionary longer than the window would produce unreachable
        // distances; clamp by construction.
        assert!(dict.len() <= self.config.window_size());
        self.dict = Some(dict);
        self
    }

    pub fn dictionary(&self) -> Option<&Arc<Dictionary>> {
        self.dict.as_ref()
    }
}

/// A decomposed token stream: zstd-style sequences.
struct Sequences {
    literals: Vec<u8>,
    /// (literal run length, match length, distance) triples.
    seqs: Vec<(u32, u32, u32)>,
    /// Literals after the final match.
    trailing: u32,
}

fn tokens_to_sequences(tokens: &[Token]) -> Sequences {
    let mut literals = Vec::new();
    let mut seqs = Vec::new();
    let mut run = 0u32;
    for t in tokens {
        match *t {
            Token::Literal(b) => {
                literals.push(b);
                run += 1;
            }
            Token::Match { len, dist } => {
                seqs.push((run, len, dist));
                run = 0;
            }
        }
    }
    Sequences {
        literals,
        seqs,
        trailing: run,
    }
}

/// Stream encoding modes.
const MODE_EMPTY: u8 = 0;
const MODE_RLE: u8 = 1;
const MODE_FSE: u8 = 2;

fn write_stream(out: &mut Vec<u8>, symbols: &[u16], alphabet: usize, table_log: u32) {
    if symbols.is_empty() {
        out.push(MODE_EMPTY);
        return;
    }
    let mut counts = vec![0u64; alphabet];
    for &s in symbols {
        counts[usize::from(s)] += 1;
    }
    let distinct = counts.iter().filter(|&&c| c > 0).count();
    if distinct == 1 {
        out.push(MODE_RLE);
        varint::write_u32(out, u32::from(symbols[0]));
        varint::write_u32(out, symbols.len() as u32);
        return;
    }
    let norm = normalize(&counts, table_log).expect("nonempty stream");
    let enc = FseEncoder::new(&norm, table_log);
    let (bits, state) = enc.encode_all(symbols);
    out.push(MODE_FSE);
    write_norm(out, &norm);
    varint::write_u32(out, symbols.len() as u32);
    varint::write_u32(out, state);
    varint::write_u32(out, bits.len() as u32);
    out.extend_from_slice(&bits);
}

fn read_stream(
    input: &[u8],
    pos: &mut usize,
    alphabet: usize,
    table_log: u32,
) -> Result<Vec<u16>, CodecError> {
    let mode = *input.get(*pos).ok_or(CodecError::Truncated)?;
    *pos += 1;
    match mode {
        MODE_EMPTY => Ok(Vec::new()),
        MODE_RLE => {
            let sym = varint::read_u32(input, pos)?;
            if sym as usize >= alphabet {
                return Err(CodecError::Corrupt("rle symbol out of range"));
            }
            let count = varint::read_u32(input, pos)? as usize;
            if count > 1 << 28 {
                return Err(CodecError::Corrupt("rle count implausible"));
            }
            Ok(vec![sym as u16; count])
        }
        MODE_FSE => {
            let norm = read_norm(input, pos)?;
            if norm.len() != alphabet {
                return Err(CodecError::Corrupt("stream alphabet mismatch"));
            }
            let count = varint::read_u32(input, pos)? as usize;
            if count > 1 << 28 {
                return Err(CodecError::Corrupt("stream count implausible"));
            }
            let state = varint::read_u32(input, pos)?;
            let bits_len = varint::read_u32(input, pos)? as usize;
            if *pos + bits_len > input.len() {
                return Err(CodecError::Truncated);
            }
            let dec = FseDecoder::new(&norm, table_log)?;
            let symbols = dec.decode_all(&input[*pos..*pos + bits_len], state, count)?;
            *pos += bits_len;
            Ok(symbols)
        }
        _ => Err(CodecError::Corrupt("unknown stream mode")),
    }
}

impl Codec for ZstdLite {
    fn name(&self) -> &'static str {
        "zstd-lite"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let dict_bytes = self
            .dict
            .as_deref()
            .map(Dictionary::as_bytes)
            .unwrap_or(&[]);
        let tokens = if dict_bytes.is_empty() {
            lz77::parse(input, self.config)
        } else {
            lz77::parse_with_dict(dict_bytes, input, self.config)
        };
        let s = tokens_to_sequences(&tokens);

        let mut out = Vec::with_capacity(input.len() / 4 + 64);
        out.extend_from_slice(MAGIC);
        out.push(if dict_bytes.is_empty() { 0 } else { FLAG_DICT });
        varint::write_u64(&mut out, input.len() as u64);
        out.extend_from_slice(&crc32(input).to_le_bytes());
        if !dict_bytes.is_empty() {
            // Only flagged streams carry the id (an attached-but-empty
            // dictionary behaves exactly like no dictionary).
            let dict = self.dict.as_ref().expect("non-empty dict bytes");
            out.extend_from_slice(&dict.id().to_le_bytes());
        }

        // Literal bytes: one FSE stream over the byte alphabet.
        let lit_syms: Vec<u16> = s.literals.iter().map(|&b| u16::from(b)).collect();
        write_stream(&mut out, &lit_syms, 256, LIT_TABLE_LOG);

        // Sequence slots: three streams plus a shared raw extra-bit stream.
        let mut ll = Vec::with_capacity(s.seqs.len());
        let mut ml = Vec::with_capacity(s.seqs.len());
        let mut dd = Vec::with_capacity(s.seqs.len());
        let mut extras = BitWriter::new();
        for &(lit_len, match_len, dist) in &s.seqs {
            let (ls, leb, lev) = slot_of(lit_len);
            let (ms, meb, mev) = slot_of(match_len - MIN_MATCH as u32);
            let (ds, deb, dev) = slot_of(dist - 1);
            ll.push(ls as u16);
            ml.push(ms as u16);
            dd.push(ds as u16);
            extras.write_bits(lev, leb);
            extras.write_bits(mev, meb);
            extras.write_bits(dev, deb);
        }
        write_stream(&mut out, &ll, SLOT_ALPHABET, SLOT_TABLE_LOG);
        write_stream(&mut out, &ml, SLOT_ALPHABET, SLOT_TABLE_LOG);
        write_stream(&mut out, &dd, SLOT_ALPHABET, SLOT_TABLE_LOG);
        varint::write_u32(&mut out, s.trailing);
        let extra_bytes = extras.finish();
        varint::write_u32(&mut out, extra_bytes.len() as u32);
        out.extend_from_slice(&extra_bytes);
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        if input.len() < 5 || &input[..4] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let flags = input[4];
        let mut pos = 5;
        let declared_len = varint::read_u64(input, &mut pos)? as usize;
        if pos + 4 > input.len() {
            return Err(CodecError::Truncated);
        }
        let stored_crc = u32::from_le_bytes(input[pos..pos + 4].try_into().unwrap());
        pos += 4;

        let dict_bytes: &[u8] = if flags & FLAG_DICT != 0 {
            if pos + 4 > input.len() {
                return Err(CodecError::Truncated);
            }
            let dict_id = u32::from_le_bytes(input[pos..pos + 4].try_into().unwrap());
            pos += 4;
            let dict = self
                .dict
                .as_deref()
                .ok_or(CodecError::Corrupt("stream needs a dictionary"))?;
            if dict.id() != dict_id {
                return Err(CodecError::Corrupt("dictionary id mismatch"));
            }
            dict.as_bytes()
        } else {
            &[]
        };

        let lit_syms = read_stream(input, &mut pos, 256, LIT_TABLE_LOG)?;
        let ll = read_stream(input, &mut pos, SLOT_ALPHABET, SLOT_TABLE_LOG)?;
        let ml = read_stream(input, &mut pos, SLOT_ALPHABET, SLOT_TABLE_LOG)?;
        let dd = read_stream(input, &mut pos, SLOT_ALPHABET, SLOT_TABLE_LOG)?;
        if ll.len() != ml.len() || ll.len() != dd.len() {
            return Err(CodecError::Corrupt("sequence stream length mismatch"));
        }
        let trailing = varint::read_u32(input, &mut pos)? as usize;
        let extras_len = varint::read_u32(input, &mut pos)? as usize;
        if pos + extras_len > input.len() {
            return Err(CodecError::Truncated);
        }
        let mut extras = BitReader::new(&input[pos..pos + extras_len]);

        let mut buf = Vec::with_capacity(crate::bounded_capacity(dict_bytes.len() + declared_len));
        buf.extend_from_slice(dict_bytes);
        let mut lit_pos = 0usize;
        let take_literals =
            |buf: &mut Vec<u8>, lit_pos: &mut usize, n: usize| -> Result<(), CodecError> {
                if *lit_pos + n > lit_syms.len() {
                    return Err(CodecError::Corrupt("literal stream exhausted"));
                }
                buf.extend(lit_syms[*lit_pos..*lit_pos + n].iter().map(|&s| s as u8));
                *lit_pos += n;
                Ok(())
            };

        for i in 0..ll.len() {
            let (lbase, leb) = base_of(u32::from(ll[i]));
            let (mbase, meb) = base_of(u32::from(ml[i]));
            let (dbase, deb) = base_of(u32::from(dd[i]));
            let lit_len = (lbase + extras.read_bits(leb)) as usize;
            let match_len = (mbase + extras.read_bits(meb)) as usize + MIN_MATCH;
            let dist = (dbase + extras.read_bits(deb)) as usize + 1;
            take_literals(&mut buf, &mut lit_pos, lit_len)?;
            if dist > buf.len() {
                return Err(CodecError::Corrupt("match distance exceeds history"));
            }
            if buf.len() + match_len > dict_bytes.len() + declared_len {
                return Err(CodecError::Corrupt("output exceeds declared length"));
            }
            let start = buf.len() - dist;
            for k in 0..match_len {
                let b = buf[start + k];
                buf.push(b);
            }
        }
        take_literals(&mut buf, &mut lit_pos, trailing)?;
        if lit_pos != lit_syms.len() {
            return Err(CodecError::Corrupt("unconsumed literals"));
        }

        let out = buf.split_off(dict_bytes.len());
        if out.len() != declared_len {
            return Err(CodecError::Corrupt("decoded length mismatch"));
        }
        let actual = crc32(&out);
        if actual != stored_crc {
            return Err(CodecError::ChecksumMismatch {
                expected: stored_crc,
                actual,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SnappyLite;

    fn round_trip(data: &[u8]) -> Vec<u8> {
        let codec = ZstdLite::default();
        let packed = codec.compress(data);
        assert_eq!(codec.decompress(&packed).unwrap(), data);
        packed
    }

    #[test]
    fn empty_and_small() {
        round_trip(b"");
        round_trip(b"z");
        round_trip(b"zstd-lite");
    }

    #[test]
    fn repetitive_data_beats_snappy() {
        let row = b"nms,cell=0042,drops=0,attempts=25,tput=11.5,rssi=-87\n";
        let data: Vec<u8> = row.iter().copied().cycle().take(200_000).collect();
        let zstd = round_trip(&data);
        let snappy = SnappyLite::default().compress(&data);
        assert!(
            zstd.len() < snappy.len() / 2,
            "entropy coding should roughly double the ratio: zstd {} vs snappy {}",
            zstd.len(),
            snappy.len()
        );
    }

    #[test]
    fn incompressible_data_round_trips() {
        let mut state = 0xFEED_FACEu64;
        let data: Vec<u8> = (0..80_000)
            .map(|_| {
                state = state.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xB5);
                (state >> 45) as u8
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn pure_literal_input() {
        // All-distinct short input: no matches, exercises trailing literals.
        let data: Vec<u8> = (0..=255u8).collect();
        round_trip(&data);
    }

    #[test]
    fn all_same_byte() {
        round_trip(&vec![b'q'; 100_000]);
    }

    #[test]
    fn dictionary_improves_small_snapshot_compression() {
        // Small payloads with shared vocabulary: the dictionary lets the
        // very first bytes match, which a cold window cannot.
        let make_doc = |seed: u32| -> Vec<u8> {
            let mut s = Vec::new();
            for j in 0..20u32 {
                s.extend_from_slice(
                    format!(
                        "callrecord,8210000{:03},LTE,result=success,duration={}\n",
                        (seed + j) % 50,
                        j * 7
                    )
                    .as_bytes(),
                );
            }
            s
        };
        let corpus: Vec<Vec<u8>> = (0..16).map(make_doc).collect();
        let refs: Vec<&[u8]> = corpus.iter().map(|v| v.as_slice()).collect();
        let dict = Arc::new(Dictionary::train(&refs, 4096));

        let plain = ZstdLite::default();
        let trained = ZstdLite::default().with_dictionary(dict);

        let doc = make_doc(99);
        let packed_plain = plain.compress(&doc);
        let packed_trained = trained.compress(&doc);
        assert_eq!(trained.decompress(&packed_trained).unwrap(), doc);
        assert!(
            packed_trained.len() < packed_plain.len(),
            "trained {} vs plain {}",
            packed_trained.len(),
            packed_plain.len()
        );
    }

    #[test]
    fn dictionary_id_is_verified() {
        let d1 = Arc::new(Dictionary::from_bytes(b"shared vocabulary one".to_vec()));
        let d2 = Arc::new(Dictionary::from_bytes(b"shared vocabulary two".to_vec()));
        let enc = ZstdLite::default().with_dictionary(d1);
        let dec_wrong = ZstdLite::default().with_dictionary(d2);
        let dec_none = ZstdLite::default();

        let data = b"shared vocabulary one plus payload".repeat(5);
        let packed = enc.compress(&data);
        assert_eq!(enc.decompress(&packed).unwrap(), data);
        assert!(dec_wrong.decompress(&packed).is_err());
        assert!(dec_none.decompress(&packed).is_err());
    }

    #[test]
    fn rejects_corruption_and_truncation() {
        let codec = ZstdLite::default();
        let data = b"corrupt and truncate ".repeat(200);
        let mut packed = codec.compress(&data);
        assert!(codec.decompress(&packed[..packed.len() / 3]).is_err());
        let mid = packed.len() * 2 / 3;
        packed[mid] ^= 0x55;
        assert!(codec.decompress(&packed).is_err());
        assert_eq!(codec.decompress(b"JUNK?"), Err(CodecError::BadMagic));
    }
}
