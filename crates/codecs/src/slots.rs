//! Logarithmic slot bucketing for match lengths and distances.
//!
//! Large integer values are split into a small "slot" code (entropy coded)
//! plus raw extra bits, the same scheme DEFLATE uses for distances and Zstd
//! uses for all sequence fields. Slots 0–3 are exact; slot `2k + h` covers
//! `(2 + h) << (k - 1)` upward with `k - 1` extra bits.

/// Decompose `v` into `(slot, extra_bits, extra_value)`.
#[inline]
pub fn slot_of(v: u32) -> (u32, u32, u32) {
    if v < 4 {
        (v, 0, 0)
    } else {
        let nb = 31 - v.leading_zeros();
        let extra = nb - 1;
        let slot = 2 * nb + ((v >> (nb - 1)) & 1);
        (slot, extra, v & ((1 << extra) - 1))
    }
}

/// Inverse of [`slot_of`]: the base value and extra-bit count of a slot.
#[inline]
pub fn base_of(slot: u32) -> (u32, u32) {
    if slot < 4 {
        (slot, 0)
    } else {
        let nb = slot / 2;
        let half = slot & 1;
        ((2 + half) << (nb - 1), nb - 1)
    }
}

/// Number of slots needed to represent values below `limit`.
pub fn slot_count(limit: u32) -> usize {
    slot_of(limit - 1).0 as usize + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_value_round_trips() {
        for v in (0u32..4096).chain([65_535, 1 << 16, (1 << 20) - 1, 1 << 24]) {
            let (slot, extra_bits, extra_val) = slot_of(v);
            let (base, eb) = base_of(slot);
            assert_eq!(eb, extra_bits, "v={v}");
            assert_eq!(base + extra_val, v, "v={v}");
            assert!(extra_val < (1 << extra_bits) || extra_bits == 0);
        }
    }

    #[test]
    fn slots_are_monotone() {
        let mut prev = 0;
        for v in 0u32..100_000 {
            let (slot, _, _) = slot_of(v);
            assert!(slot >= prev);
            prev = slot;
        }
    }

    #[test]
    fn slot_counts_match_known_limits() {
        // DEFLATE-style: distances below 32 KiB need 30 slots.
        assert_eq!(slot_count(1 << 15), 30);
        assert_eq!(slot_count(4), 4);
        assert_eq!(slot_count(1 << 16), 32);
    }
}
