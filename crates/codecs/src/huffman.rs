//! Canonical, length-limited Huffman coding with a table-driven decoder.
//!
//! Code lengths are derived from symbol frequencies with a classic
//! heap-built Huffman tree, then clamped to the requested maximum length
//! with a Kraft-sum repair pass (the zlib approach). Codes are assigned
//! canonically — sorted by (length, symbol) — so only the length array needs
//! to be transmitted. Encoded bits are stored reversed so the LSB-first
//! [`crate::bitio`] stream can be decoded with a single table lookup.

use crate::bitio::{BitReader, BitWriter};
use crate::CodecError;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Compute length-limited code lengths from frequencies.
///
/// Returns one length per symbol; zero means the symbol is absent. If no
/// symbol has a nonzero frequency the result is all zeros. A single-symbol
/// alphabet gets a 1-bit code.
pub fn build_lengths(freqs: &[u64], max_len: u8) -> Vec<u8> {
    assert!((1..=15).contains(&max_len));
    let n = freqs.len();
    let live: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    let mut lengths = vec![0u8; n];
    match live.len() {
        0 => return lengths,
        1 => {
            lengths[live[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Standard heap-built Huffman tree over the live symbols.
    // Node ids: 0..live.len() are leaves, the rest internal.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = live
        .iter()
        .enumerate()
        .map(|(leaf, &sym)| Reverse((freqs[sym], leaf)))
        .collect();
    let mut parent = vec![usize::MAX; live.len() * 2 - 1];
    let mut next_id = live.len();
    while heap.len() > 1 {
        let Reverse((f1, a)) = heap.pop().unwrap();
        let Reverse((f2, b)) = heap.pop().unwrap();
        parent[a] = next_id;
        parent[b] = next_id;
        heap.push(Reverse((f1 + f2, next_id)));
        next_id += 1;
    }
    let root = next_id - 1;

    // Depth of each leaf = chain length to the root.
    for (leaf, &sym) in live.iter().enumerate() {
        let mut depth = 0u32;
        let mut node = leaf;
        while node != root {
            node = parent[node];
            depth += 1;
        }
        lengths[sym] = depth.min(u32::from(max_len)) as u8;
    }

    enforce_kraft(&mut lengths, freqs, max_len);
    lengths
}

/// Repair a clamped length assignment so the Kraft sum does not exceed 1.
///
/// Clamping long codes to `max_len` can push the Kraft sum over 1 (an
/// unrealizable code). Lengthening the cheapest (lowest-frequency) short
/// codes restores feasibility with minimal cost.
fn enforce_kraft(lengths: &mut [u8], freqs: &[u64], max_len: u8) {
    let budget: u64 = 1 << max_len;
    let kraft = |lengths: &[u8]| -> u64 {
        lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (max_len - l))
            .sum()
    };
    let mut k = kraft(lengths);
    if k <= budget {
        return;
    }
    // Symbols ordered by ascending frequency: lengthen the cheapest first.
    let mut order: Vec<usize> = (0..lengths.len()).filter(|&i| lengths[i] > 0).collect();
    order.sort_by_key(|&i| freqs[i]);
    'outer: while k > budget {
        for &i in &order {
            if lengths[i] < max_len {
                k -= 1 << (max_len - lengths[i]);
                lengths[i] += 1;
                k += 1 << (max_len - lengths[i]);
                continue 'outer;
            }
        }
        unreachable!("Kraft repair failed: alphabet larger than 2^max_len");
    }
}

/// Assign canonical codes (MSB-first numbering) from lengths.
fn canonical_codes(lengths: &[u8]) -> Vec<u32> {
    let max_len = lengths.iter().copied().max().unwrap_or(0);
    let mut bl_count = vec![0u32; usize::from(max_len) + 1];
    for &l in lengths {
        if l > 0 {
            bl_count[usize::from(l)] += 1;
        }
    }
    let mut next_code = vec![0u32; usize::from(max_len) + 2];
    let mut code = 0u32;
    for bits in 1..=usize::from(max_len) {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next_code[usize::from(l)];
                next_code[usize::from(l)] += 1;
                c
            }
        })
        .collect()
}

#[inline]
fn reverse_bits(code: u32, len: u8) -> u32 {
    code.reverse_bits() >> (32 - u32::from(len))
}

/// Canonical Huffman encoder.
#[derive(Debug, Clone)]
pub struct HuffmanEncoder {
    /// Bit-reversed codes ready for LSB-first emission.
    codes: Vec<u32>,
    lengths: Vec<u8>,
}

impl HuffmanEncoder {
    /// Build an encoder directly from symbol frequencies.
    pub fn from_frequencies(freqs: &[u64], max_len: u8) -> Self {
        Self::from_lengths(&build_lengths(freqs, max_len))
    }

    /// Build an encoder from an existing (transmitted) length array.
    pub fn from_lengths(lengths: &[u8]) -> Self {
        let codes = canonical_codes(lengths)
            .into_iter()
            .zip(lengths)
            .map(|(c, &l)| if l == 0 { 0 } else { reverse_bits(c, l) })
            .collect();
        Self {
            codes,
            lengths: lengths.to_vec(),
        }
    }

    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }

    /// Emit the code for `sym`. Panics (debug) if `sym` has no code.
    #[inline]
    pub fn encode(&self, w: &mut BitWriter, sym: usize) {
        let len = self.lengths[sym];
        debug_assert!(len > 0, "encoding symbol {sym} with no assigned code");
        w.write_bits(self.codes[sym], u32::from(len));
    }

    /// Cost in bits of encoding `sym` (for size estimation).
    #[inline]
    pub fn cost(&self, sym: usize) -> u32 {
        u32::from(self.lengths[sym])
    }
}

/// Table-driven canonical Huffman decoder.
///
/// A single table of `2^max_len` entries maps the next `max_len` peeked bits
/// to `(symbol, length)`.
#[derive(Debug)]
pub struct HuffmanDecoder {
    table: Vec<(u16, u8)>,
    max_len: u8,
}

const INVALID: (u16, u8) = (u16::MAX, 0);

impl HuffmanDecoder {
    pub fn from_lengths(lengths: &[u8]) -> Result<Self, CodecError> {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        if max_len == 0 {
            return Err(CodecError::Corrupt("huffman table with no codes"));
        }
        if max_len > 15 {
            return Err(CodecError::Corrupt("huffman code length > 15"));
        }
        // Validate the Kraft inequality before building the table.
        let kraft: u64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (max_len - l))
            .sum();
        if kraft > 1u64 << max_len {
            return Err(CodecError::Corrupt("huffman lengths violate Kraft"));
        }
        let codes = canonical_codes(lengths);
        let mut table = vec![INVALID; 1usize << max_len];
        for (sym, (&len, code)) in lengths.iter().zip(codes).enumerate() {
            if len == 0 {
                continue;
            }
            let rev = reverse_bits(code, len);
            let step = 1usize << len;
            let mut idx = rev as usize;
            while idx < table.len() {
                table[idx] = (sym as u16, len);
                idx += step;
            }
        }
        Ok(Self { table, max_len })
    }

    /// Decode one symbol from the bit stream.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, CodecError> {
        let peek = r.peek_bits(u32::from(self.max_len));
        let (sym, len) = self.table[peek as usize];
        if len == 0 {
            return Err(CodecError::Corrupt("invalid huffman code"));
        }
        r.consume(u32::from(len));
        Ok(sym)
    }
}

/// Serialize a length array as 4-bit nibbles (lengths ≤ 15).
pub fn write_lengths(out: &mut Vec<u8>, lengths: &[u8]) {
    crate::varint::write_u32(out, lengths.len() as u32);
    let mut nibble_hi = false;
    let mut cur = 0u8;
    for &l in lengths {
        debug_assert!(l <= 15);
        if nibble_hi {
            out.push(cur | (l << 4));
        } else {
            cur = l;
        }
        nibble_hi = !nibble_hi;
    }
    if nibble_hi {
        out.push(cur);
    }
}

/// Inverse of [`write_lengths`].
pub fn read_lengths(input: &[u8], pos: &mut usize) -> Result<Vec<u8>, CodecError> {
    let n = crate::varint::read_u32(input, pos)? as usize;
    if n > 1 << 20 {
        return Err(CodecError::Corrupt("huffman alphabet too large"));
    }
    let bytes = n.div_ceil(2);
    if *pos + bytes > input.len() {
        return Err(CodecError::Truncated);
    }
    let mut lengths = Vec::with_capacity(n);
    for i in 0..n {
        let byte = input[*pos + i / 2];
        lengths.push(if i % 2 == 0 { byte & 0x0F } else { byte >> 4 });
    }
    *pos += bytes;
    Ok(lengths)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_symbols(freqs: &[u64], stream: &[usize], max_len: u8) {
        let enc = HuffmanEncoder::from_frequencies(freqs, max_len);
        let dec = HuffmanDecoder::from_lengths(enc.lengths()).unwrap();
        let mut w = BitWriter::new();
        for &s in stream {
            enc.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in stream {
            assert_eq!(dec.decode(&mut r).unwrap() as usize, s);
        }
    }

    #[test]
    fn skewed_distribution_round_trip() {
        let freqs = [1000u64, 500, 100, 10, 1, 1, 0, 3];
        let stream: Vec<usize> = (0..200)
            .map(|i| [0, 0, 1, 2, 0, 3, 7, 4, 5, 1][i % 10])
            .collect();
        round_trip_symbols(&freqs, &stream, 13);
    }

    #[test]
    fn single_symbol_alphabet() {
        let freqs = [0u64, 42, 0];
        let stream = vec![1usize; 50];
        round_trip_symbols(&freqs, &stream, 13);
        let lengths = build_lengths(&freqs, 13);
        assert_eq!(lengths, vec![0, 1, 0]);
    }

    #[test]
    fn empty_alphabet_yields_zero_lengths() {
        assert_eq!(build_lengths(&[0, 0, 0], 13), vec![0, 0, 0]);
        assert!(HuffmanDecoder::from_lengths(&[0, 0]).is_err());
    }

    #[test]
    fn skewed_codes_are_shorter_for_frequent_symbols() {
        let freqs = [10_000u64, 100, 100, 100, 1];
        let lengths = build_lengths(&freqs, 13);
        assert!(lengths[0] <= lengths[1]);
        assert!(lengths[1] <= lengths[4]);
    }

    #[test]
    fn length_limit_is_respected_under_extreme_skew() {
        // Fibonacci-like frequencies force very deep unrestricted trees.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let next = a + b;
            a = b;
            b = next;
        }
        for max_len in [8u8, 10, 13, 15] {
            let lengths = build_lengths(&freqs, max_len);
            assert!(lengths.iter().all(|&l| l <= max_len));
            // Kraft inequality must hold.
            let kraft: f64 = lengths
                .iter()
                .filter(|&&l| l > 0)
                .map(|&l| 2f64.powi(-i32::from(l)))
                .sum();
            assert!(kraft <= 1.0 + 1e-9, "kraft {kraft} for max_len {max_len}");
            // And it must still decode.
            let enc = HuffmanEncoder::from_lengths(&lengths);
            let dec = HuffmanDecoder::from_lengths(&lengths).unwrap();
            let mut w = BitWriter::new();
            for s in 0..freqs.len() {
                enc.encode(&mut w, s);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for s in 0..freqs.len() {
                assert_eq!(dec.decode(&mut r).unwrap() as usize, s);
            }
        }
    }

    #[test]
    fn full_byte_alphabet() {
        let mut freqs = vec![1u64; 256];
        freqs[b' ' as usize] = 5000;
        freqs[b'e' as usize] = 3000;
        freqs[b'0' as usize] = 2500;
        let stream: Vec<usize> = (0..=255usize).chain((0..=255).rev()).collect();
        round_trip_symbols(&freqs, &stream, 13);
    }

    #[test]
    fn lengths_serialization_round_trip() {
        let lengths = vec![0u8, 3, 5, 15, 1, 0, 0, 7, 2];
        let mut buf = Vec::new();
        write_lengths(&mut buf, &lengths);
        let mut pos = 0;
        assert_eq!(read_lengths(&buf, &mut pos).unwrap(), lengths);
        assert_eq!(pos, buf.len());

        // Odd and even counts both round-trip.
        let even = vec![4u8, 4, 4, 4];
        let mut buf = Vec::new();
        write_lengths(&mut buf, &even);
        let mut pos = 0;
        assert_eq!(read_lengths(&buf, &mut pos).unwrap(), even);
    }

    #[test]
    fn decoder_rejects_invalid_kraft() {
        // Three 1-bit codes cannot coexist.
        assert!(HuffmanDecoder::from_lengths(&[1, 1, 1]).is_err());
    }

    #[test]
    fn decoder_rejects_garbage_bits() {
        // Kraft-deficient code: symbol 0 has the only code (0b0, 2 bits
        // would be canonical 00). Bits selecting an unassigned slot error.
        let lengths = [2u8, 2, 0, 0];
        let dec = HuffmanDecoder::from_lengths(&lengths).unwrap();
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2); // reversed pattern not covered by any code
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(dec.decode(&mut r).is_err());
    }
}
