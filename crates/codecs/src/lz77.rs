//! Shared LZ77 match finder used by the DEFLATE-, LZMA- and Zstd-class
//! codecs.
//!
//! The matcher is a classic hash-chain design: a rolling 4-byte hash indexes
//! chains of previous positions inside a sliding window. Codecs differ only
//! in their [`Lz77Config`] (window size, chain depth, lazy matching) and in
//! how they entropy-code the resulting [`Token`] stream.

/// Minimum match length. Using 4 keeps the hash exact for the first probe.
pub const MIN_MATCH: usize = 4;

/// A single LZ77 parse decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// Emit one literal byte.
    Literal(u8),
    /// Copy `len` bytes starting `dist` bytes back in the output.
    Match {
        /// Match length, `MIN_MATCH ..= config.max_match`.
        len: u32,
        /// Backward distance, `1 ..= window size`.
        dist: u32,
    },
}

/// Tuning parameters for the match finder.
#[derive(Debug, Clone, Copy)]
pub struct Lz77Config {
    /// log2 of the sliding window size (distances are bounded by
    /// `1 << window_log`).
    pub window_log: u32,
    /// Maximum number of chain links followed per position. Higher finds
    /// better matches but costs compression time.
    pub max_chain: u32,
    /// Longest allowed match.
    pub max_match: u32,
    /// If true, defer a match by one byte when the next position offers a
    /// longer one (zlib-style lazy matching).
    pub lazy: bool,
    /// Stop chain traversal early once a match of this length is found.
    pub good_enough: u32,
}

impl Lz77Config {
    /// DEFLATE-class parameters: 32 KiB window, moderate chains.
    pub fn deflate_class() -> Self {
        Self {
            window_log: 15,
            max_chain: 64,
            max_match: 258,
            lazy: true,
            good_enough: 64,
        }
    }

    /// LZMA-class parameters: 1 MiB window, deep chains, lazy matching.
    pub fn lzma_class() -> Self {
        Self {
            window_log: 20,
            max_chain: 512,
            max_match: 259,
            lazy: true,
            good_enough: 128,
        }
    }

    /// Snappy-class parameters: 64 KiB window, single probe, greedy.
    pub fn snappy_class() -> Self {
        Self {
            window_log: 16,
            max_chain: 4,
            max_match: 64,
            lazy: false,
            good_enough: 16,
        }
    }

    /// Zstd-class parameters: 128 KiB window, moderately deep chains.
    pub fn zstd_class() -> Self {
        Self {
            window_log: 17,
            max_chain: 192,
            max_match: 1 << 16,
            lazy: true,
            good_enough: 96,
        }
    }

    pub fn window_size(&self) -> usize {
        1usize << self.window_log
    }
}

const HASH_LOG: u32 = 16;

#[inline(always)]
fn hash4(data: &[u8], pos: usize) -> usize {
    let v = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_LOG)) as usize
}

/// Hash-chain LZ77 match finder over a single input buffer.
///
/// `prefix_len` bytes at the start of the buffer act as a preset dictionary:
/// matches may start inside the prefix but tokens are only produced for the
/// payload that follows it (used by [`crate::ZstdLite`] dictionary mode).
pub struct MatchFinder<'a> {
    data: &'a [u8],
    config: Lz77Config,
    head: Vec<i32>,
    prev: Vec<i32>,
    window_mask: usize,
}

impl<'a> MatchFinder<'a> {
    pub fn new(data: &'a [u8], config: Lz77Config) -> Self {
        let window = config.window_size();
        Self {
            data,
            config,
            head: vec![-1; 1 << HASH_LOG],
            prev: vec![-1; window],
            window_mask: window - 1,
        }
    }

    #[inline]
    fn insert(&mut self, pos: usize) {
        if pos + MIN_MATCH > self.data.len() {
            return;
        }
        let h = hash4(self.data, pos);
        self.prev[pos & self.window_mask] = self.head[h];
        self.head[h] = pos as i32;
    }

    /// Length of the common prefix of `data[a..]` and `data[b..]`, capped.
    #[inline]
    fn match_len(&self, a: usize, b: usize, cap: usize) -> usize {
        let data = self.data;
        let max = cap.min(data.len() - b);
        let mut n = 0;
        // Compare 8 bytes at a time.
        while n + 8 <= max {
            let x = u64::from_le_bytes(data[a + n..a + n + 8].try_into().unwrap());
            let y = u64::from_le_bytes(data[b + n..b + n + 8].try_into().unwrap());
            let xor = x ^ y;
            if xor != 0 {
                return n + (xor.trailing_zeros() / 8) as usize;
            }
            n += 8;
        }
        while n < max && data[a + n] == data[b + n] {
            n += 1;
        }
        n
    }

    /// Best match for position `pos`, or `None`.
    fn find_match(&self, pos: usize) -> Option<(u32, u32)> {
        if pos + MIN_MATCH > self.data.len() {
            return None;
        }
        let min_pos = pos.saturating_sub(self.config.window_size());
        let mut cand = self.head[hash4(self.data, pos)];
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0u32;
        let cap = self.config.max_match as usize;
        let mut chain = self.config.max_chain;
        while cand >= 0 && chain > 0 {
            let c = cand as usize;
            if c < min_pos || c >= pos {
                break;
            }
            // Quick reject: check the byte just past the current best.
            if pos + best_len < self.data.len()
                && self.data[c + best_len] == self.data[pos + best_len]
            {
                let len = self.match_len(c, pos, cap);
                if len > best_len {
                    best_len = len;
                    best_dist = (pos - c) as u32;
                    if len >= self.config.good_enough as usize || len >= cap {
                        break;
                    }
                }
            }
            cand = self.prev[c & self.window_mask];
            chain -= 1;
        }
        if best_len >= MIN_MATCH {
            Some((best_len as u32, best_dist))
        } else {
            None
        }
    }

    /// Parse the payload (everything after `prefix_len`) into tokens.
    pub fn parse(mut self, prefix_len: usize) -> Vec<Token> {
        let data = self.data;
        let n = data.len();
        // Seed the chains with the dictionary prefix.
        for pos in 0..prefix_len.min(n) {
            self.insert(pos);
        }
        let mut tokens = Vec::with_capacity((n - prefix_len) / 2 + 16);
        let mut pos = prefix_len;
        while pos < n {
            let here = self.find_match(pos);
            match here {
                None => {
                    tokens.push(Token::Literal(data[pos]));
                    self.insert(pos);
                    pos += 1;
                }
                Some((mut len, mut dist)) => {
                    // Lazy evaluation: if the next position has a strictly
                    // longer match, emit a literal instead and retry there.
                    if self.config.lazy
                        && pos + 1 < n
                        && (len as usize) < self.config.good_enough as usize
                    {
                        self.insert(pos);
                        let mut match_pos = pos;
                        if let Some((len2, dist2)) = self.find_match(pos + 1) {
                            if len2 > len + 1 {
                                tokens.push(Token::Literal(data[pos]));
                                match_pos = pos + 1;
                                len = len2;
                                dist = dist2;
                            }
                        }
                        tokens.push(Token::Match { len, dist });
                        let end = match_pos + len as usize;
                        // `pos` was already inserted above; index the rest of
                        // the matched region.
                        for p in (pos + 1)..end.min(n) {
                            self.insert(p);
                        }
                        pos = end;
                    } else {
                        tokens.push(Token::Match { len, dist });
                        let end = pos + len as usize;
                        for p in pos..end.min(n) {
                            self.insert(p);
                        }
                        pos = end;
                    }
                }
            }
        }
        tokens
    }
}

/// Convenience: parse `input` with `config` and no dictionary prefix.
pub fn parse(input: &[u8], config: Lz77Config) -> Vec<Token> {
    MatchFinder::new(input, config).parse(0)
}

/// Parse `payload` with `dict` acting as a preset window prefix.
pub fn parse_with_dict(dict: &[u8], payload: &[u8], config: Lz77Config) -> Vec<Token> {
    let mut joined = Vec::with_capacity(dict.len() + payload.len());
    joined.extend_from_slice(dict);
    joined.extend_from_slice(payload);
    MatchFinder::new(&joined, config).parse(dict.len())
}

/// Reconstruct the original payload from a token stream. `dict` must be the
/// same preset dictionary used at parse time (empty when none).
pub fn reconstruct(dict: &[u8], tokens: &[Token]) -> Vec<u8> {
    let mut out = dict.to_vec();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let start = out.len() - dist as usize;
                for i in 0..len as usize {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    out.split_off(dict.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8], config: Lz77Config) {
        let tokens = parse(data, config);
        assert_eq!(reconstruct(&[], &tokens), data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for config in [
            Lz77Config::deflate_class(),
            Lz77Config::lzma_class(),
            Lz77Config::snappy_class(),
            Lz77Config::zstd_class(),
        ] {
            round_trip(b"", config);
            round_trip(b"a", config);
            round_trip(b"abc", config);
            round_trip(b"abcd", config);
        }
    }

    #[test]
    fn repetitive_input_finds_matches() {
        let data = b"cell=42,drop=0;".repeat(100);
        let tokens = parse(&data, Lz77Config::deflate_class());
        let matches = tokens
            .iter()
            .filter(|t| matches!(t, Token::Match { .. }))
            .count();
        assert!(matches > 0, "repetitive data must produce matches");
        assert!(
            tokens.len() < data.len() / 4,
            "token stream should be much shorter than input"
        );
        assert_eq!(reconstruct(&[], &tokens), data);
    }

    #[test]
    fn overlapping_match_reconstruction() {
        // 'aaaa...' forces dist=1 overlapping copies.
        let data = vec![b'a'; 500];
        round_trip(&data, Lz77Config::deflate_class());
    }

    #[test]
    fn random_bytes_round_trip() {
        // Pseudo-random incompressible data: every config must still be exact.
        let mut state = 0x1234_5678u32;
        let data: Vec<u8> = (0..8192)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (state >> 24) as u8
            })
            .collect();
        for config in [
            Lz77Config::deflate_class(),
            Lz77Config::lzma_class(),
            Lz77Config::snappy_class(),
            Lz77Config::zstd_class(),
        ] {
            round_trip(&data, config);
        }
    }

    #[test]
    fn distances_respect_window() {
        let config = Lz77Config {
            window_log: 8,
            max_chain: 32,
            max_match: 64,
            lazy: false,
            good_enough: 32,
        };
        let mut data = b"unique-prefix-0123456789".to_vec();
        data.extend(std::iter::repeat_n(b'x', 1000));
        data.extend_from_slice(b"unique-prefix-0123456789");
        let tokens = parse(&data, config);
        for t in &tokens {
            if let Token::Match { dist, len } = t {
                assert!(*dist as usize <= config.window_size());
                assert!(*len as usize >= MIN_MATCH);
                assert!(*len <= config.max_match);
            }
        }
        assert_eq!(reconstruct(&[], &tokens), data);
    }

    #[test]
    fn dictionary_prefix_enables_cross_references() {
        let dict = b"SELECT upflux, downflux FROM CDR WHERE ts=";
        let payload = b"SELECT upflux, downflux FROM CDR WHERE ts=201601221530";
        let tokens = parse_with_dict(dict, payload, Lz77Config::zstd_class());
        // The payload's long shared prefix should be one big match into the dict.
        assert!(matches!(tokens[0], Token::Match { .. }));
        assert_eq!(reconstruct(dict, &tokens), payload);
    }

    #[test]
    fn lazy_matching_still_exact_on_adversarial_input() {
        // Alternating near-matches exercise the lazy path.
        let mut data = Vec::new();
        for i in 0..300u32 {
            data.extend_from_slice(b"abcabcab");
            data.push((i % 7) as u8 + b'0');
            data.extend_from_slice(b"bcabcabc");
        }
        round_trip(&data, Lz77Config::deflate_class());
        round_trip(&data, Lz77Config::lzma_class());
    }
}
