//! LEB128-style variable-length integers used by container headers and the
//! byte-oriented Snappy-class format.

use crate::CodecError;

/// Append `value` as a little-endian base-128 varint.
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a `u32` varint.
#[inline]
pub fn write_u32(out: &mut Vec<u8>, value: u32) {
    write_u64(out, u64::from(value));
}

/// Decode a varint starting at `input[*pos]`, advancing `*pos`.
#[inline]
pub fn read_u64(input: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *input.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(CodecError::Corrupt("varint overflow"));
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::Corrupt("varint too long"));
        }
    }
}

/// Decode a `u32` varint, rejecting values that do not fit.
#[inline]
pub fn read_u32(input: &[u8], pos: &mut usize) -> Result<u32, CodecError> {
    let v = read_u64(input, pos)?;
    u32::try_from(v).map_err(|_| CodecError::Corrupt("varint exceeds u32"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX / 2,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn encoding_lengths() {
        let len = |v: u64| {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            buf.len()
        };
        assert_eq!(len(0), 1);
        assert_eq!(len(127), 1);
        assert_eq!(len(128), 2);
        assert_eq!(len(16_383), 2);
        assert_eq!(len(16_384), 3);
        assert_eq!(len(u64::MAX), 10);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 1 << 20);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), Err(CodecError::Truncated));
    }

    #[test]
    fn overlong_input_is_rejected() {
        let buf = vec![0x80u8; 11];
        let mut pos = 0;
        assert!(matches!(
            read_u64(&buf, &mut pos),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn u32_range_check() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::from(u32::MAX) + 1);
        let mut pos = 0;
        assert!(matches!(
            read_u32(&buf, &mut pos),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn sequence_of_varints() {
        let values = [5u64, 300, 0, 70_000, 2];
        let mut buf = Vec::new();
        for &v in &values {
            write_u64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }
}
