//! Finite State Entropy (tANS) coding — the entropy stage of `zstd-lite`.
//!
//! A table-based asymmetric numeral system: symbol frequencies are
//! normalized to a power-of-two table, symbols are spread across the table
//! with the standard FSE stride, and coding walks a state machine emitting /
//! consuming a variable number of raw bits per symbol. Matches the classic
//! FSE construction (encode back-to-front, decode front-to-back).

use crate::bitio::{BitReader, BitWriter};
use crate::CodecError;

/// Maximum supported table log (keeps all intermediate math in `u32`).
pub const MAX_TABLE_LOG: u32 = 12;

#[inline]
fn highbit(v: u32) -> u32 {
    debug_assert!(v > 0);
    31 - v.leading_zeros()
}

/// Normalize raw counts so they sum to `1 << table_log`, keeping every
/// present symbol at frequency ≥ 1. Returns `None` if no symbol is present.
pub fn normalize(counts: &[u64], table_log: u32) -> Option<Vec<u32>> {
    assert!((5..=MAX_TABLE_LOG).contains(&table_log));
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let size = 1u64 << table_log;
    let mut norm: Vec<u32> = counts
        .iter()
        .map(|&c| {
            if c == 0 {
                0
            } else {
                (((c * size) + total / 2) / total).max(1) as u32
            }
        })
        .collect();
    let mut sum: i64 = norm.iter().map(|&n| i64::from(n)).sum();
    // Steal from / give to the largest symbols until the sum is exact.
    while sum != i64::from(size as u32) {
        if sum > i64::from(size as u32) {
            let i = (0..norm.len())
                .filter(|&i| norm[i] > 1)
                .max_by_key(|&i| norm[i])
                .expect("normalization cannot shrink: alphabet larger than table");
            norm[i] -= 1;
            sum -= 1;
        } else {
            let i = (0..norm.len())
                .filter(|&i| norm[i] > 0)
                .max_by_key(|&i| norm[i])
                .unwrap();
            norm[i] += 1;
            sum += 1;
        }
    }
    Some(norm)
}

/// The standard FSE symbol spread order.
fn spread_symbols(norm: &[u32], table_log: u32) -> Vec<u16> {
    let size = 1usize << table_log;
    let mask = size - 1;
    let step = (size >> 1) + (size >> 3) + 3;
    let mut table = vec![0u16; size];
    let mut pos = 0usize;
    for (sym, &freq) in norm.iter().enumerate() {
        for _ in 0..freq {
            table[pos] = sym as u16;
            pos = (pos + step) & mask;
        }
    }
    debug_assert_eq!(pos, 0);
    table
}

/// Per-symbol encoding parameters (classic `FSE_symbolCompressionTransform`).
#[derive(Debug, Clone, Copy, Default)]
struct SymbolTT {
    delta_nb_bits: u32,
    delta_find_state: i32,
}

/// FSE encoder table for one alphabet.
#[derive(Debug, Clone)]
pub struct FseEncoder {
    table_log: u32,
    /// next-state table indexed by cumulative symbol rank.
    state_table: Vec<u16>,
    symbol_tt: Vec<SymbolTT>,
}

impl FseEncoder {
    pub fn new(norm: &[u32], table_log: u32) -> Self {
        let size = 1usize << table_log;
        debug_assert_eq!(norm.iter().map(|&f| f as usize).sum::<usize>(), size);
        let spread = spread_symbols(norm, table_log);

        let mut cumul = vec![0u32; norm.len() + 1];
        for s in 0..norm.len() {
            cumul[s + 1] = cumul[s] + norm[s];
        }
        let mut state_table = vec![0u16; size];
        let mut fill = cumul.clone();
        for (u, &sym) in spread.iter().enumerate() {
            let s = usize::from(sym);
            state_table[fill[s] as usize] = (size + u) as u16;
            fill[s] += 1;
        }

        let mut symbol_tt = vec![SymbolTT::default(); norm.len()];
        for (s, &freq) in norm.iter().enumerate() {
            if freq == 0 {
                continue;
            }
            let max_bits_out = table_log - highbit(freq);
            let min_state_plus = freq << max_bits_out;
            // A symbol owning the whole table (freq == size) always flushes
            // zero bits; the generic formula would underflow.
            let delta_nb_bits = if max_bits_out == 0 {
                0
            } else {
                (max_bits_out << 16) - min_state_plus
            };
            symbol_tt[s] = SymbolTT {
                delta_nb_bits,
                delta_find_state: cumul[s] as i32 - freq as i32,
            };
        }
        Self {
            table_log,
            state_table,
            symbol_tt,
        }
    }

    /// Encode `symbols` and return `(bitstream bytes, final state)`.
    ///
    /// FSE encodes back-to-front; this method handles the reversal so the
    /// produced stream decodes front-to-back with [`FseDecoder::decode_all`].
    pub fn encode_all(&self, symbols: &[u16]) -> (Vec<u8>, u32) {
        let size = 1u32 << self.table_log;
        let mut state = size; // any state in [size, 2*size) is valid
        let mut ops: Vec<(u32, u32)> = Vec::with_capacity(symbols.len());
        for &sym in symbols.iter().rev() {
            let tt = self.symbol_tt[usize::from(sym)];
            let nb_bits = (state + tt.delta_nb_bits) >> 16;
            ops.push((state & ((1 << nb_bits) - 1), nb_bits));
            let idx = (state >> nb_bits) as i32 + tt.delta_find_state;
            state = u32::from(self.state_table[idx as usize]);
        }
        let mut w = BitWriter::with_capacity(symbols.len() / 4 + 8);
        for &(value, nb_bits) in ops.iter().rev() {
            w.write_bits(value, nb_bits);
        }
        (w.finish(), state - size)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct DecodeEntry {
    symbol: u16,
    nb_bits: u8,
    new_state_base: u16,
}

/// FSE decoder table for one alphabet.
#[derive(Debug, Clone)]
pub struct FseDecoder {
    table: Vec<DecodeEntry>,
}

impl FseDecoder {
    pub fn new(norm: &[u32], table_log: u32) -> Result<Self, CodecError> {
        let size = 1usize << table_log;
        let total: usize = norm.iter().map(|&f| f as usize).sum();
        if total != size {
            return Err(CodecError::Corrupt("fse norm does not sum to table size"));
        }
        let spread = spread_symbols(norm, table_log);
        let mut symbol_next: Vec<u32> = norm.to_vec();
        let mut table = vec![DecodeEntry::default(); size];
        for (u, &sym) in spread.iter().enumerate() {
            let s = usize::from(sym);
            let next_state = symbol_next[s];
            symbol_next[s] += 1;
            let nb_bits = table_log - highbit(next_state);
            table[u] = DecodeEntry {
                symbol: sym,
                nb_bits: nb_bits as u8,
                new_state_base: ((next_state << nb_bits) - size as u32) as u16,
            };
        }
        Ok(Self { table })
    }

    /// Decode exactly `count` symbols starting from `initial_state` (the
    /// value returned by [`FseEncoder::encode_all`]).
    pub fn decode_all(
        &self,
        bits: &[u8],
        initial_state: u32,
        count: usize,
    ) -> Result<Vec<u16>, CodecError> {
        if initial_state as usize >= self.table.len() {
            return Err(CodecError::Corrupt("fse initial state out of range"));
        }
        let mut r = BitReader::new(bits);
        let mut state = initial_state as usize;
        let mut out = Vec::with_capacity(crate::bounded_capacity(count));
        for _ in 0..count {
            let e = self.table[state];
            out.push(e.symbol);
            state = usize::from(e.new_state_base) + r.read_bits(u32::from(e.nb_bits)) as usize;
            if state >= self.table.len() {
                return Err(CodecError::Corrupt("fse state out of range"));
            }
        }
        Ok(out)
    }
}

/// Serialize normalized frequencies (nonzero count, then varint pairs).
pub fn write_norm(out: &mut Vec<u8>, norm: &[u32]) {
    crate::varint::write_u32(out, norm.len() as u32);
    let present = norm.iter().filter(|&&f| f > 0).count();
    crate::varint::write_u32(out, present as u32);
    for (sym, &freq) in norm.iter().enumerate() {
        if freq > 0 {
            crate::varint::write_u32(out, sym as u32);
            crate::varint::write_u32(out, freq);
        }
    }
}

/// Inverse of [`write_norm`].
pub fn read_norm(input: &[u8], pos: &mut usize) -> Result<Vec<u32>, CodecError> {
    let len = crate::varint::read_u32(input, pos)? as usize;
    if len > 1 << 20 {
        return Err(CodecError::Corrupt("fse alphabet too large"));
    }
    let present = crate::varint::read_u32(input, pos)? as usize;
    if present > len {
        return Err(CodecError::Corrupt("fse present count exceeds alphabet"));
    }
    let mut norm = vec![0u32; len];
    for _ in 0..present {
        let sym = crate::varint::read_u32(input, pos)? as usize;
        let freq = crate::varint::read_u32(input, pos)?;
        if sym >= len {
            return Err(CodecError::Corrupt("fse symbol out of range"));
        }
        norm[sym] = freq;
    }
    Ok(norm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(symbols: &[u16], alphabet: usize, table_log: u32) -> usize {
        let mut counts = vec![0u64; alphabet];
        for &s in symbols {
            counts[usize::from(s)] += 1;
        }
        let norm = normalize(&counts, table_log).unwrap();
        let enc = FseEncoder::new(&norm, table_log);
        let dec = FseDecoder::new(&norm, table_log).unwrap();
        let (bits, state) = enc.encode_all(symbols);
        let decoded = dec.decode_all(&bits, state, symbols.len()).unwrap();
        assert_eq!(decoded, symbols);
        bits.len()
    }

    #[test]
    fn normalize_sums_to_table_size() {
        let counts = vec![100u64, 50, 25, 12, 6, 3, 1, 1, 0, 900];
        for log in [5u32, 8, 11, 12] {
            let norm = normalize(&counts, log).unwrap();
            assert_eq!(norm.iter().sum::<u32>(), 1 << log);
            for (i, &c) in counts.iter().enumerate() {
                assert_eq!(c > 0, norm[i] > 0, "presence preserved at {i}");
            }
        }
    }

    #[test]
    fn normalize_empty_returns_none() {
        assert!(normalize(&[0, 0, 0], 8).is_none());
    }

    #[test]
    fn skewed_byte_stream_round_trips_and_compresses() {
        // 90% zeros: tANS must get well under 8 bits/byte.
        let symbols: Vec<u16> = (0..20_000u32)
            .map(|i| if i % 10 == 0 { (i % 7) as u16 + 1 } else { 0 })
            .collect();
        let bytes = round_trip(&symbols, 8, 11);
        assert!(bytes < symbols.len() / 4, "compressed to {bytes} bytes");
    }

    #[test]
    fn uniform_stream_round_trips() {
        let symbols: Vec<u16> = (0..10_000u32).map(|i| (i % 256) as u16).collect();
        round_trip(&symbols, 256, 11);
    }

    #[test]
    fn two_symbol_alphabet() {
        let symbols: Vec<u16> = (0..5_000u32).map(|i| u16::from(i % 17 == 0)).collect();
        round_trip(&symbols, 2, 6);
    }

    #[test]
    fn short_streams() {
        round_trip(&[3], 5, 5);
        round_trip(&[1, 2], 4, 5);
        round_trip(&[0, 0, 1], 2, 5);
    }

    #[test]
    fn extreme_skew_with_rare_symbol() {
        let mut symbols = vec![0u16; 9_999];
        symbols.push(255);
        round_trip(&symbols, 256, 12);
    }

    #[test]
    fn single_symbol_alphabet_round_trips() {
        let symbols = vec![7u16; 1000];
        round_trip(&symbols, 8, 5);
    }

    #[test]
    fn norm_serialization_round_trip() {
        let counts = vec![5u64, 0, 0, 900, 1, 33, 0];
        let norm = normalize(&counts, 9).unwrap();
        let mut buf = Vec::new();
        write_norm(&mut buf, &norm);
        let mut pos = 0;
        assert_eq!(read_norm(&buf, &mut pos).unwrap(), norm);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn decoder_rejects_bad_norm() {
        // Frequencies not summing to the table size must be rejected.
        assert!(FseDecoder::new(&[3, 3], 5).is_err());
    }

    #[test]
    fn decoder_rejects_out_of_range_state() {
        let norm = normalize(&[10, 20], 6).unwrap();
        let dec = FseDecoder::new(&norm, 6).unwrap();
        assert!(dec.decode_all(&[], 1 << 6, 1).is_err());
    }
}
