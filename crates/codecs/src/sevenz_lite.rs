//! `7z-lite`: an LZMA-class codec — deep lazy LZ77 over a 1 MiB window with
//! all tokens entropy-coded by the adaptive binary range coder.
//!
//! Mirrors the paper's 7z/LZMA entry in Table I: the best compression ratio
//! of the four codecs, paid for with the slowest compression.

use crate::crc32::crc32;
use crate::lz77::{self, Lz77Config, Token, MIN_MATCH};
use crate::range_coder::{BitModel, BitTree, RangeDecoder, RangeEncoder};
use crate::slots::{base_of, slot_of};
use crate::varint;
use crate::{Codec, CodecError};

const MAGIC: &[u8; 4] = b"SP7Z";
/// Literal coding context: top 3 bits of the previous byte.
const LIT_CONTEXTS: usize = 8;

/// LZMA-class codec. See the module docs.
#[derive(Debug, Clone, Copy)]
pub struct SevenzLite {
    config: Lz77Config,
}

impl Default for SevenzLite {
    fn default() -> Self {
        Self {
            config: Lz77Config::lzma_class(),
        }
    }
}

impl SevenzLite {
    pub fn with_config(config: Lz77Config) -> Self {
        assert!(config.window_log <= 20);
        assert!(config.max_match <= MIN_MATCH as u32 + 255);
        Self { config }
    }
}

/// The adaptive model set, identical on both coder sides.
struct Models {
    is_match: BitModel,
    literal: Vec<BitTree>,
    length: BitTree,
    dist_slot: BitTree,
}

impl Models {
    fn new() -> Self {
        Self {
            is_match: BitModel::default(),
            literal: (0..LIT_CONTEXTS).map(|_| BitTree::new(8)).collect(),
            length: BitTree::new(8),
            dist_slot: BitTree::new(6),
        }
    }

    #[inline]
    fn lit_ctx(prev: u8) -> usize {
        usize::from(prev >> 5)
    }
}

impl Codec for SevenzLite {
    fn name(&self) -> &'static str {
        "7z-lite"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let tokens = lz77::parse(input, self.config);
        let mut out = Vec::with_capacity(input.len() / 6 + 64);
        out.extend_from_slice(MAGIC);
        varint::write_u64(&mut out, input.len() as u64);
        out.extend_from_slice(&crc32(input).to_le_bytes());
        varint::write_u64(&mut out, tokens.len() as u64);

        let mut models = Models::new();
        let mut enc = RangeEncoder::new();
        let mut prev_byte = 0u8;
        let mut produced = 0usize;
        for t in &tokens {
            match *t {
                Token::Literal(b) => {
                    enc.encode_bit(&mut models.is_match, 0);
                    let ctx = Models::lit_ctx(prev_byte);
                    models.literal[ctx].encode(&mut enc, u32::from(b));
                    prev_byte = b;
                    produced += 1;
                }
                Token::Match { len, dist } => {
                    enc.encode_bit(&mut models.is_match, 1);
                    models.length.encode(&mut enc, len - MIN_MATCH as u32);
                    let (slot, extra_bits, extra_val) = slot_of(dist - 1);
                    models.dist_slot.encode(&mut enc, slot);
                    if extra_bits > 0 {
                        enc.encode_direct(extra_val, extra_bits);
                    }
                    produced += len as usize;
                    // Track the final byte of the match for literal context.
                    prev_byte = input[produced - 1];
                }
            }
        }
        out.extend_from_slice(&enc.finish());
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        if input.len() < 4 || &input[..4] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let mut pos = 4;
        let declared_len = varint::read_u64(input, &mut pos)? as usize;
        if pos + 4 > input.len() {
            return Err(CodecError::Truncated);
        }
        let stored_crc = u32::from_le_bytes(input[pos..pos + 4].try_into().unwrap());
        pos += 4;
        let n_tokens = varint::read_u64(input, &mut pos)? as usize;
        // Every token emits at least one output byte, so more tokens than
        // declared bytes is structurally impossible.
        if n_tokens > declared_len {
            return Err(CodecError::Corrupt("token count exceeds declared length"));
        }

        let mut models = Models::new();
        let mut dec = RangeDecoder::new(&input[pos..]);
        let mut out = Vec::with_capacity(crate::bounded_capacity(declared_len));
        let mut prev_byte = 0u8;
        for _ in 0..n_tokens {
            // The range decoder yields zero bytes past the end of input; a
            // well-formed stream never needs them (the encoder's 5-byte
            // flush covers the decoder's lookahead), so an overrun means the
            // stream was truncated and the remaining tokens are fiction.
            if dec.is_overrun() {
                return Err(CodecError::Truncated);
            }
            if dec.decode_bit(&mut models.is_match) == 0 {
                let ctx = Models::lit_ctx(prev_byte);
                let b = models.literal[ctx].decode(&mut dec) as u8;
                out.push(b);
                prev_byte = b;
            } else {
                let len = models.length.decode(&mut dec) as usize + MIN_MATCH;
                let slot = models.dist_slot.decode(&mut dec);
                let (base, extra_bits) = base_of(slot);
                let extra = if extra_bits > 0 {
                    dec.decode_direct(extra_bits)
                } else {
                    0
                };
                let dist = (base + extra) as usize + 1;
                if dist > out.len() {
                    return Err(CodecError::Corrupt("match distance exceeds history"));
                }
                if out.len() + len > declared_len {
                    return Err(CodecError::Corrupt("output exceeds declared length"));
                }
                let start = out.len() - dist;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
                prev_byte = *out.last().unwrap();
            }
            if out.len() > declared_len {
                return Err(CodecError::Corrupt("output exceeds declared length"));
            }
        }
        if out.len() != declared_len {
            return Err(CodecError::Corrupt("decoded length mismatch"));
        }
        let actual = crc32(&out);
        if actual != stored_crc {
            return Err(CodecError::ChecksumMismatch {
                expected: stored_crc,
                actual,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GzipLite;

    fn round_trip(data: &[u8]) -> Vec<u8> {
        let codec = SevenzLite::default();
        let packed = codec.compress(data);
        assert_eq!(
            codec.decompress(&packed).unwrap(),
            data,
            "len {}",
            data.len()
        );
        packed
    }

    #[test]
    fn empty_and_small_inputs() {
        round_trip(b"");
        round_trip(b"x");
        round_trip(b"abcd");
        round_trip(b"the quick brown fox");
    }

    #[test]
    fn repetitive_data_beats_gzip_lite() {
        let row = b"cell=000123,attempts=17,drops=0,tput=3.5,rssi=-92;";
        let data: Vec<u8> = row.iter().copied().cycle().take(200_000).collect();
        let seven = round_trip(&data);
        let gzip = GzipLite::default().compress(&data);
        assert!(
            seven.len() < gzip.len(),
            "7z-lite ({}) should out-compress gzip-lite ({}) on redundant data",
            seven.len(),
            gzip.len()
        );
    }

    #[test]
    fn structured_text_round_trip() {
        let mut data = Vec::new();
        for i in 0..5000u32 {
            data.extend_from_slice(
                format!(
                    "82100000{:04},LTE,2016-01-{:02}T{:02}:30,{},0\n",
                    i % 500,
                    i % 28 + 1,
                    i % 24,
                    i % 7
                )
                .as_bytes(),
            );
        }
        round_trip(&data);
    }

    #[test]
    fn incompressible_data_round_trip() {
        let mut state = 99u64;
        let data: Vec<u8> = (0..60_000)
            .map(|_| {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                (state >> 33) as u8
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn long_range_matches_use_the_big_window() {
        // A block repeated 600 KiB apart: inside 7z-lite's 1 MiB window but
        // outside gzip-lite's 32 KiB one.
        let unique: Vec<u8> = (0..4096u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut state = 1u64;
        let filler: Vec<u8> = (0..600_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 40) as u8
            })
            .collect();
        let mut data = unique.clone();
        data.extend_from_slice(&filler);
        data.extend_from_slice(&unique);
        let seven = round_trip(&data);
        let gzip = GzipLite::default().compress(&data);
        assert!(seven.len() < gzip.len());
    }

    #[test]
    fn rejects_bad_magic_and_corruption() {
        let codec = SevenzLite::default();
        assert_eq!(codec.decompress(b"NOPE"), Err(CodecError::BadMagic));
        let data = b"corrupt me, plenty of redundancy here ".repeat(100);
        let mut packed = codec.compress(&data);
        let mid = packed.len() / 2;
        packed[mid] ^= 0x40;
        assert!(codec.decompress(&packed).is_err());
    }
}
