//! Differential (delta) compression of incremental snapshots.
//!
//! The paper's future work (§IX-B): "Differential compression is a topic
//! we will investigate more carefully in the future as it can reduce the
//! storage layer overheads in each acquisition cycle." Consecutive telco
//! snapshots share most of their structure — cell inventory, per-cell base
//! loads, subscriber vocabulary — so encoding a snapshot *against a
//! reference* (the previous snapshot, or a periodic anchor) beats encoding
//! it cold.
//!
//! The construction is the `zstd --patch-from` idea on top of this
//! crate's own machinery: the reference becomes a preset LZ dictionary
//! over a window large enough to span it, and the payload's matches reach
//! across into the reference. The container records the reference's CRC so
//! decompression against the wrong reference fails loudly.

use crate::crc32::crc32;
use crate::dict::Dictionary;
use crate::lz77::Lz77Config;
use crate::varint;
use crate::zstd_lite::ZstdLite;
use crate::{Codec, CodecError};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"SPDT";

/// Delta codec: compresses payloads relative to an explicit reference.
#[derive(Debug, Clone, Copy)]
pub struct DeltaCodec {
    /// log2 of the LZ window; the usable reference tail is half of it
    /// (the rest keeps intra-payload matches reachable).
    window_log: u32,
}

impl Default for DeltaCodec {
    fn default() -> Self {
        // 4 MiB window → 2 MiB reference tail: plenty for scaled
        // snapshots, and still laptop-cheap matcher state.
        Self { window_log: 22 }
    }
}

impl DeltaCodec {
    pub fn with_window_log(window_log: u32) -> Self {
        assert!((16..=26).contains(&window_log));
        Self { window_log }
    }

    fn inner_config(&self) -> Lz77Config {
        Lz77Config {
            window_log: self.window_log,
            ..Lz77Config::zstd_class()
        }
    }

    /// Usable reference length (the tail of longer references is kept,
    /// closest to the payload).
    fn ref_budget(&self) -> usize {
        1usize << (self.window_log - 1)
    }

    fn clamp_reference<'a>(&self, reference: &'a [u8]) -> &'a [u8] {
        let budget = self.ref_budget();
        if reference.len() > budget {
            &reference[reference.len() - budget..]
        } else {
            reference
        }
    }

    fn inner(&self, reference: &[u8]) -> ZstdLite {
        let clamped = self.clamp_reference(reference);
        ZstdLite::with_config(self.inner_config())
            .with_dictionary(Arc::new(Dictionary::from_bytes(clamped.to_vec())))
    }

    /// Compress `payload` as a delta against `reference`.
    pub fn compress(&self, reference: &[u8], payload: &[u8]) -> Vec<u8> {
        let inner = self.inner(reference);
        let body = inner.compress(payload);
        let mut out = Vec::with_capacity(body.len() + 16);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&crc32(self.clamp_reference(reference)).to_le_bytes());
        varint::write_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        out
    }

    /// Decompress a delta produced against the same `reference`.
    pub fn decompress(&self, reference: &[u8], packed: &[u8]) -> Result<Vec<u8>, CodecError> {
        if packed.len() < 8 || &packed[..4] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let stored_ref_crc = u32::from_le_bytes(packed[4..8].try_into().unwrap());
        let clamped = self.clamp_reference(reference);
        let actual = crc32(clamped);
        if actual != stored_ref_crc {
            return Err(CodecError::ChecksumMismatch {
                expected: stored_ref_crc,
                actual,
            });
        }
        let mut pos = 8;
        let body_len = varint::read_u32(packed, &mut pos)? as usize;
        if pos + body_len > packed.len() {
            return Err(CodecError::Truncated);
        }
        self.inner(reference)
            .decompress(&packed[pos..pos + body_len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GzipLite;

    /// Two "snapshots" sharing most structure, differing in a few fields.
    fn similar_payloads() -> (Vec<u8>, Vec<u8>) {
        let make = |epoch: u32| -> Vec<u8> {
            let mut s = Vec::new();
            for cell in 0..400u32 {
                s.extend_from_slice(
                    format!(
                        "2016011812{:02},{cell},{},0,{},{},-88,2\n",
                        epoch % 60,
                        10 + cell % 7,
                        (10 + cell % 7) * 60,
                        (cell % 5) * 1000 + 5000,
                    )
                    .as_bytes(),
                );
            }
            s
        };
        (make(0), make(30))
    }

    #[test]
    fn round_trip_against_reference() {
        let (reference, payload) = similar_payloads();
        let delta = DeltaCodec::default();
        let packed = delta.compress(&reference, &payload);
        assert_eq!(delta.decompress(&reference, &packed).unwrap(), payload);
    }

    #[test]
    fn delta_beats_cold_compression_on_similar_snapshots() {
        let (reference, payload) = similar_payloads();
        let delta = DeltaCodec::default();
        let packed_delta = delta.compress(&reference, &payload);
        let packed_cold = GzipLite::default().compress(&payload);
        // These payloads are internally redundant too, so cold compression
        // is already strong; the delta must still win clearly.
        assert!(
            (packed_delta.len() as f64) < packed_cold.len() as f64 * 0.75,
            "delta {} vs cold {}",
            packed_delta.len(),
            packed_cold.len()
        );
    }

    #[test]
    fn wrong_reference_is_rejected() {
        let (reference, payload) = similar_payloads();
        let delta = DeltaCodec::default();
        let packed = delta.compress(&reference, &payload);
        let mut other = reference.clone();
        other[10] ^= 1;
        assert!(matches!(
            delta.decompress(&other, &packed),
            Err(CodecError::ChecksumMismatch { .. })
        ));
        assert_eq!(
            delta.decompress(&reference, b"JUNKJUNK"),
            Err(CodecError::BadMagic)
        );
    }

    #[test]
    fn empty_reference_and_payload_edges() {
        let delta = DeltaCodec::default();
        // Empty reference degrades to plain compression.
        let packed = delta.compress(b"", b"some payload bytes");
        assert_eq!(
            delta.decompress(b"", &packed).unwrap(),
            b"some payload bytes"
        );
        // Empty payload.
        let packed = delta.compress(b"reference", b"");
        assert_eq!(delta.decompress(b"reference", &packed).unwrap(), b"");
    }

    #[test]
    fn long_references_are_tail_clamped_consistently() {
        let delta = DeltaCodec::with_window_log(16); // 32 KiB ref budget
        let reference: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let payload: Vec<u8> = reference[95_000..].to_vec(); // matches the tail
        let packed = delta.compress(&reference, &payload);
        assert_eq!(delta.decompress(&reference, &packed).unwrap(), payload);
        assert!(packed.len() < payload.len() / 3);
    }

    #[test]
    fn truncated_container_detected() {
        let (reference, payload) = similar_payloads();
        let delta = DeltaCodec::default();
        let packed = delta.compress(&reference, &payload);
        assert!(delta
            .decompress(&reference, &packed[..packed.len() / 2])
            .is_err());
        assert!(delta.decompress(&reference, &packed[..6]).is_err());
    }
}
