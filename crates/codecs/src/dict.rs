//! Dictionary training for `zstd-lite`.
//!
//! The paper singles out ZSTD's ability to build "domain-specific training
//! dictionaries" (§IV-B). Telco snapshots are ideal dictionary material:
//! every 30-minute batch shares schema headers, cell identifiers and flag
//! vocabulary. Training selects the sample fragments whose byte shingles
//! recur most across the corpus and concatenates them (most valuable last,
//! closest to the window) into a preset LZ prefix.

use crate::crc32::crc32;
use std::collections::HashMap;

const SHINGLE: usize = 8;

/// A trained compression dictionary shared by compressor and decompressor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dictionary {
    data: Vec<u8>,
    id: u32,
}

impl Dictionary {
    /// Wrap raw bytes as a dictionary (e.g. loaded from storage).
    pub fn from_bytes(data: Vec<u8>) -> Self {
        let id = crc32(&data);
        Self { data, id }
    }

    /// Train a dictionary of at most `budget` bytes from sample documents.
    ///
    /// Samples are split into newline-delimited fragments; each fragment is
    /// scored by how often its 8-byte shingles appear across the whole
    /// corpus, normalized by length. The top-scoring distinct fragments are
    /// concatenated until the budget is filled.
    pub fn train(samples: &[&[u8]], budget: usize) -> Self {
        let mut shingle_counts: HashMap<u64, u32> = HashMap::new();
        for sample in samples {
            for window in sample.windows(SHINGLE).step_by(4) {
                let key = u64::from_le_bytes(window.try_into().unwrap());
                *shingle_counts.entry(key).or_insert(0) += 1;
            }
        }

        // Collect distinct fragments with their corpus-wide scores.
        let mut seen: HashMap<&[u8], ()> = HashMap::new();
        let mut scored: Vec<(f64, &[u8])> = Vec::new();
        for sample in samples {
            for frag in sample.split(|&b| b == b'\n') {
                if frag.len() < SHINGLE || seen.contains_key(frag) {
                    continue;
                }
                seen.insert(frag, ());
                let mut score = 0u64;
                for window in frag.windows(SHINGLE).step_by(4) {
                    let key = u64::from_le_bytes(window.try_into().unwrap());
                    score += u64::from(*shingle_counts.get(&key).unwrap_or(&0));
                }
                // Normalize per byte so long fragments don't dominate for free.
                scored.push((score as f64 / frag.len() as f64, frag));
            }
        }
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

        let mut picked: Vec<&[u8]> = Vec::new();
        let mut used = 0usize;
        for (_, frag) in &scored {
            if used + frag.len() + 1 > budget {
                continue;
            }
            picked.push(frag);
            used += frag.len() + 1;
            if used + SHINGLE >= budget {
                break;
            }
        }
        // Highest-value fragments go last (smallest match distances).
        picked.reverse();
        let mut data = Vec::with_capacity(used);
        for frag in picked {
            data.extend_from_slice(frag);
            data.push(b'\n');
        }
        Self::from_bytes(data)
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Stable identifier (CRC-32 of the content) stored in containers so a
    /// decompressor can verify it holds the right dictionary.
    pub fn id(&self) -> u32 {
        self.id
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_corpus() -> Vec<Vec<u8>> {
        (0..20u32)
            .map(|i| {
                let mut s = Vec::new();
                for j in 0..50u32 {
                    s.extend_from_slice(
                        format!(
                            "8210000{:03},LTE,success,cell-{:04},up={},down={}\n",
                            j % 100,
                            (i * j) % 40,
                            j * 11,
                            j * 173
                        )
                        .as_bytes(),
                    );
                }
                s
            })
            .collect()
    }

    #[test]
    fn training_respects_budget() {
        let corpus = sample_corpus();
        let refs: Vec<&[u8]> = corpus.iter().map(|v| v.as_slice()).collect();
        for budget in [64usize, 256, 1024, 4096] {
            let dict = Dictionary::train(&refs, budget);
            assert!(dict.len() <= budget, "budget {budget}, got {}", dict.len());
        }
    }

    #[test]
    fn trained_dictionary_contains_common_vocabulary() {
        let corpus = sample_corpus();
        let refs: Vec<&[u8]> = corpus.iter().map(|v| v.as_slice()).collect();
        let dict = Dictionary::train(&refs, 2048);
        assert!(!dict.is_empty());
        let text = dict.as_bytes();
        let contains = |needle: &[u8]| text.windows(needle.len()).any(|w| w == needle);
        assert!(contains(b"LTE"), "dict should pick up the common token LTE");
    }

    #[test]
    fn id_is_content_stable() {
        let d1 = Dictionary::from_bytes(b"abc".to_vec());
        let d2 = Dictionary::from_bytes(b"abc".to_vec());
        let d3 = Dictionary::from_bytes(b"abd".to_vec());
        assert_eq!(d1.id(), d2.id());
        assert_ne!(d1.id(), d3.id());
    }

    #[test]
    fn empty_corpus_yields_empty_dictionary() {
        let dict = Dictionary::train(&[], 1024);
        assert!(dict.is_empty());
        let dict = Dictionary::train(&[b"short".as_slice()], 0);
        assert!(dict.is_empty());
    }
}
