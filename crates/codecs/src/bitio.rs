//! LSB-first bit-level I/O used by the DEFLATE-class and tANS codecs.
//!
//! Bits are packed least-significant-bit first within each byte, matching
//! the convention of DEFLATE: the first bit written becomes bit 0 of the
//! first output byte.

use crate::CodecError;

/// Accumulates bits LSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    /// Bits not yet flushed to `out`, right-aligned.
    acc: u64,
    /// Number of valid bits in `acc` (always < 8 after `flush_acc`).
    nbits: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            out: Vec::with_capacity(bytes),
            acc: 0,
            nbits: 0,
        }
    }

    /// Write the low `n` bits of `value` (n ≤ 32).
    #[inline]
    pub fn write_bits(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 32);
        debug_assert!(n == 32 || u64::from(value) < (1u64 << n));
        self.acc |= u64::from(value) << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.acc & 0xFF) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Number of whole bits written so far.
    pub fn bit_len(&self) -> usize {
        self.out.len() * 8 + self.nbits as usize
    }

    /// Pad with zero bits to a byte boundary and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xFF) as u8);
        }
        self.out
    }
}

/// Reads bits LSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    input: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    pub fn new(input: &'a [u8]) -> Self {
        Self {
            input,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    #[inline]
    fn refill(&mut self) {
        while self.nbits <= 56 && self.pos < self.input.len() {
            self.acc |= u64::from(self.input[self.pos]) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Read `n` bits (n ≤ 32). Reading past the end of input yields zero
    /// bits, mirroring the zero padding `BitWriter::finish` applies; callers
    /// that need strict bounds should check [`BitReader::is_overrun`].
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> u32 {
        debug_assert!(n <= 32);
        if self.nbits < n {
            self.refill();
        }
        let mask = if n == 32 { u64::MAX } else { (1u64 << n) - 1 };
        let v = (self.acc & mask) as u32;
        self.acc >>= n;
        self.nbits = self.nbits.saturating_sub(n);
        v
    }

    /// Peek at the next `n` bits without consuming them.
    #[inline]
    pub fn peek_bits(&mut self, n: u32) -> u32 {
        debug_assert!(n <= 32);
        if self.nbits < n {
            self.refill();
        }
        let mask = if n == 32 { u64::MAX } else { (1u64 << n) - 1 };
        (self.acc & mask) as u32
    }

    /// Consume `n` bits previously inspected with [`BitReader::peek_bits`].
    ///
    /// Like [`BitReader::read_bits`], consuming past the end of input eats
    /// the implicit zero padding (possible when decoding corrupt streams);
    /// callers detect overruns via structural checks or checksums.
    #[inline]
    pub fn consume(&mut self, n: u32) {
        self.acc >>= n;
        self.nbits = self.nbits.saturating_sub(n);
    }

    /// True once a read has requested bits beyond the input (including the
    /// implicit zero padding of the final byte).
    pub fn is_overrun(&self) -> bool {
        self.pos >= self.input.len() && self.nbits == 0
    }

    /// Bits still available including buffered ones.
    pub fn remaining_bits(&self) -> usize {
        (self.input.len() - self.pos) * 8 + self.nbits as usize
    }

    /// Error helper for callers that detect truncation.
    pub fn truncated() -> CodecError {
        CodecError::Truncated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bits(0b1010, 4);
        w.write_bits(0xDEADBEEF, 32);
        w.write_bits(0x7F, 7);
        w.write_bits(0, 0);
        w.write_bits(0x3FFFF, 18);
        let bytes = w.finish();

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(1), 0b1);
        assert_eq!(r.read_bits(4), 0b1010);
        assert_eq!(r.read_bits(32), 0xDEADBEEF);
        assert_eq!(r.read_bits(7), 0x7F);
        assert_eq!(r.read_bits(0), 0);
        assert_eq!(r.read_bits(18), 0x3FFFF);
    }

    #[test]
    fn lsb_first_layout() {
        let mut w = BitWriter::new();
        // Writing 1,0,1,1 as single bits must produce 0b0000_1101.
        for bit in [1u32, 0, 1, 1] {
            w.write_bits(bit, 1);
        }
        assert_eq!(w.finish(), vec![0b0000_1101]);
    }

    #[test]
    fn peek_then_consume_matches_read() {
        let mut w = BitWriter::new();
        w.write_bits(0b110101, 6);
        w.write_bits(0xAB, 8);
        let bytes = w.finish();

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(6), 0b110101);
        r.consume(6);
        assert_eq!(r.read_bits(8), 0xAB);
    }

    #[test]
    fn reading_past_end_yields_zeros() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8), 0xFF);
        assert_eq!(r.read_bits(16), 0);
        assert!(r.is_overrun());
    }

    #[test]
    fn bit_len_counts_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0b101, 3);
        assert_eq!(w.bit_len(), 3);
        w.write_bits(0xFF, 8);
        assert_eq!(w.bit_len(), 11);
    }

    #[test]
    fn many_single_bits_round_trip() {
        let bits: Vec<u32> = (0..1000).map(|i| (i * 7 % 3 == 0) as u32).collect();
        let mut w = BitWriter::new();
        for &b in &bits {
            w.write_bits(b, 1);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &b in &bits {
            assert_eq!(r.read_bits(1), b);
        }
    }
}
