//! CRC-32 (IEEE 802.3 polynomial, reflected) used by every container format
//! in this crate to detect corruption of stored snapshots.

/// Reflected polynomial of CRC-32/ISO-HDLC, the same variant GZIP uses.
const POLY: u32 = 0xEDB8_8320;

/// 8 slice-by tables; table[0] is the classic byte table.
struct Tables([[u32; 256]; 8]);

const fn build_tables() -> Tables {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    Tables(t)
}

static TABLES: Tables = build_tables();

/// Streaming CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feed bytes into the hash. Processes 8 bytes at a time (slice-by-8).
    pub fn update(&mut self, mut data: &[u8]) {
        let t = &TABLES.0;
        let mut crc = self.state;
        while data.len() >= 8 {
            let lo = crc ^ u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
            let hi = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
            crc = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][(hi & 0xFF) as usize]
                ^ t[2][((hi >> 8) & 0xFF) as usize]
                ^ t[1][((hi >> 16) & 0xFF) as usize]
                ^ t[0][(hi >> 24) as usize];
            data = &data[8..];
        }
        for &b in data {
            crc = (crc >> 8) ^ t[0][((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 131 % 251) as u8).collect();
        let oneshot = crc32(&data);
        for chunk in [1usize, 3, 7, 8, 64, 1000] {
            let mut h = Crc32::new();
            for part in data.chunks(chunk) {
                h.update(part);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"telco snapshot 2016-01-22T15:30".to_vec();
        let before = crc32(&data);
        data[5] ^= 0x01;
        assert_ne!(crc32(&data), before);
    }
}
