//! `gzip-lite`: a DEFLATE-class codec — LZ77 over a 32 KiB window with
//! per-block canonical Huffman coding of literals, length slots and distance
//! slots — wrapped in a CRC-checked container.
//!
//! This is the codec SPATE's storage layer uses by default, mirroring the
//! paper's choice of GZIP (§IV-C: "we chose the GZIP library, which was
//! readily available").

use crate::bitio::{BitReader, BitWriter};
use crate::crc32::crc32;
use crate::huffman::{read_lengths, write_lengths, HuffmanDecoder, HuffmanEncoder};
use crate::lz77::{self, Lz77Config, Token, MIN_MATCH};
use crate::slots::{base_of, slot_of};
use crate::varint;
use crate::{Codec, CodecError};

const MAGIC: &[u8; 4] = b"SPZ1";
/// Literals 0–255 plus length slots starting at 256.
const LEN_SLOT_BASE: usize = 256;
const LITLEN_ALPHABET: usize = 256 + 16;
const DIST_ALPHABET: usize = 30;
const MAX_CODE_LEN: u8 = 13;
/// Tokens per block; each block carries its own Huffman tables.
const BLOCK_TOKENS: usize = 1 << 16;

/// DEFLATE-class codec. See the module docs.
#[derive(Debug, Clone, Copy)]
pub struct GzipLite {
    config: Lz77Config,
}

impl Default for GzipLite {
    fn default() -> Self {
        Self {
            config: Lz77Config::deflate_class(),
        }
    }
}

impl GzipLite {
    /// Override the match-finder configuration (window must stay ≤ 32 KiB
    /// so distances fit the 30-slot alphabet).
    pub fn with_config(config: Lz77Config) -> Self {
        assert!(config.window_log <= 15);
        assert!(config.max_match <= 258 + MIN_MATCH as u32);
        Self { config }
    }
}

fn encode_block(out: &mut Vec<u8>, tokens: &[Token]) {
    // Gather per-block symbol statistics.
    let mut litlen_freq = vec![0u64; LITLEN_ALPHABET];
    let mut dist_freq = vec![0u64; DIST_ALPHABET];
    for t in tokens {
        match *t {
            Token::Literal(b) => litlen_freq[usize::from(b)] += 1,
            Token::Match { len, dist } => {
                let (ls, _, _) = slot_of(len - MIN_MATCH as u32);
                litlen_freq[LEN_SLOT_BASE + ls as usize] += 1;
                let (ds, _, _) = slot_of(dist - 1);
                dist_freq[ds as usize] += 1;
            }
        }
    }
    let litlen_enc = HuffmanEncoder::from_frequencies(&litlen_freq, MAX_CODE_LEN);
    let has_matches = dist_freq.iter().any(|&f| f > 0);
    let dist_enc = HuffmanEncoder::from_frequencies(&dist_freq, MAX_CODE_LEN);

    write_lengths(out, litlen_enc.lengths());
    write_lengths(out, dist_enc.lengths());
    varint::write_u32(out, tokens.len() as u32);

    let mut w = BitWriter::with_capacity(tokens.len());
    for t in tokens {
        match *t {
            Token::Literal(b) => litlen_enc.encode(&mut w, usize::from(b)),
            Token::Match { len, dist } => {
                let (ls, leb, lev) = slot_of(len - MIN_MATCH as u32);
                litlen_enc.encode(&mut w, LEN_SLOT_BASE + ls as usize);
                if leb > 0 {
                    w.write_bits(lev, leb);
                }
                debug_assert!(has_matches);
                let (ds, deb, dev) = slot_of(dist - 1);
                dist_enc.encode(&mut w, ds as usize);
                if deb > 0 {
                    w.write_bits(dev, deb);
                }
            }
        }
    }
    let bits = w.finish();
    varint::write_u32(out, bits.len() as u32);
    out.extend_from_slice(&bits);
}

fn decode_block(
    input: &[u8],
    pos: &mut usize,
    out: &mut Vec<u8>,
    declared_len: usize,
) -> Result<(), CodecError> {
    let litlen_lengths = read_lengths(input, pos)?;
    if litlen_lengths.len() != LITLEN_ALPHABET {
        return Err(CodecError::Corrupt("bad litlen alphabet size"));
    }
    let dist_lengths = read_lengths(input, pos)?;
    if dist_lengths.len() != DIST_ALPHABET {
        return Err(CodecError::Corrupt("bad distance alphabet size"));
    }
    let litlen_dec = HuffmanDecoder::from_lengths(&litlen_lengths)?;
    // A block of pure literals has an empty distance table.
    let dist_dec = HuffmanDecoder::from_lengths(&dist_lengths).ok();

    let n_tokens = varint::read_u32(input, pos)? as usize;
    let bit_bytes = varint::read_u32(input, pos)? as usize;
    if *pos + bit_bytes > input.len() {
        return Err(CodecError::Truncated);
    }
    let mut r = BitReader::new(&input[*pos..*pos + bit_bytes]);
    *pos += bit_bytes;

    for _ in 0..n_tokens {
        // Past the end of the bit buffer the reader yields zero bits, which
        // a zero-valued Huffman code would happily decode forever; a token
        // count larger than the bits can support is a truncated stream.
        if r.is_overrun() {
            return Err(CodecError::Truncated);
        }
        let sym = litlen_dec.decode(&mut r)? as usize;
        if sym < LEN_SLOT_BASE {
            out.push(sym as u8);
        } else {
            let (base, leb) = base_of((sym - LEN_SLOT_BASE) as u32);
            let len = (base + if leb > 0 { r.read_bits(leb) } else { 0 }) as usize + MIN_MATCH;
            let dist_dec = dist_dec
                .as_ref()
                .ok_or(CodecError::Corrupt("match token without distance table"))?;
            let ds = dist_dec.decode(&mut r)? as u32;
            let (dbase, deb) = base_of(ds);
            let dist = (dbase + if deb > 0 { r.read_bits(deb) } else { 0 }) as usize + 1;
            if dist > out.len() {
                return Err(CodecError::Corrupt("match distance exceeds history"));
            }
            if out.len() + len > declared_len {
                return Err(CodecError::Corrupt("output exceeds declared length"));
            }
            let start = out.len() - dist;
            for i in 0..len {
                let b = out[start + i];
                out.push(b);
            }
        }
        if out.len() > declared_len {
            return Err(CodecError::Corrupt("output exceeds declared length"));
        }
    }
    Ok(())
}

impl Codec for GzipLite {
    fn name(&self) -> &'static str {
        "gzip-lite"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let tokens = lz77::parse(input, self.config);
        let mut out = Vec::with_capacity(input.len() / 4 + 64);
        out.extend_from_slice(MAGIC);
        varint::write_u64(&mut out, input.len() as u64);
        out.extend_from_slice(&crc32(input).to_le_bytes());
        let blocks: Vec<&[Token]> = tokens.chunks(BLOCK_TOKENS).collect();
        varint::write_u32(&mut out, blocks.len() as u32);
        for block in blocks {
            encode_block(&mut out, block);
        }
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        if input.len() < 4 || &input[..4] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let mut pos = 4;
        let declared_len = varint::read_u64(input, &mut pos)? as usize;
        if pos + 4 > input.len() {
            return Err(CodecError::Truncated);
        }
        let stored_crc = u32::from_le_bytes(input[pos..pos + 4].try_into().unwrap());
        pos += 4;
        let n_blocks = varint::read_u32(input, &mut pos)? as usize;
        let mut out = Vec::with_capacity(crate::bounded_capacity(declared_len));
        for _ in 0..n_blocks {
            decode_block(input, &mut pos, &mut out, declared_len)?;
        }
        if out.len() != declared_len {
            return Err(CodecError::Corrupt("decoded length mismatch"));
        }
        let actual = crc32(&out);
        if actual != stored_crc {
            return Err(CodecError::ChecksumMismatch {
                expected: stored_crc,
                actual,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> Vec<u8> {
        let codec = GzipLite::default();
        let packed = codec.compress(data);
        assert_eq!(codec.decompress(&packed).unwrap(), data);
        packed
    }

    #[test]
    fn empty_input() {
        round_trip(b"");
    }

    #[test]
    fn short_inputs() {
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"abcd");
        round_trip(b"hello, telco world");
    }

    #[test]
    fn repetitive_csv_compresses_well() {
        let row = b"8210000017,8210000453,LTE,2016-01-22T15:30:00,42,0,0,0,1500,72000\n";
        let data: Vec<u8> = row.iter().copied().cycle().take(100_000).collect();
        let packed = round_trip(&data);
        let ratio = data.len() as f64 / packed.len() as f64;
        assert!(
            ratio > 20.0,
            "highly repetitive data should compress >20x, got {ratio:.1}"
        );
    }

    #[test]
    fn incompressible_data_grows_only_slightly() {
        let mut state = 0xABCD_EF01u64;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        let packed = round_trip(&data);
        assert!(packed.len() < data.len() + data.len() / 8 + 512);
    }

    #[test]
    fn multi_block_input() {
        // Enough tokens to span several 64Ki-token blocks.
        let mut data = Vec::new();
        let mut state = 7u32;
        for i in 0..200_000u32 {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            data.push((state >> 24) as u8);
            if i % 17 == 0 {
                data.extend_from_slice(b"repeat-me-");
            }
        }
        round_trip(&data);
    }

    #[test]
    fn rejects_bad_magic() {
        let codec = GzipLite::default();
        assert_eq!(codec.decompress(b"XXXX1234"), Err(CodecError::BadMagic));
        assert_eq!(codec.decompress(b"SP"), Err(CodecError::BadMagic));
    }

    #[test]
    fn rejects_corrupted_payload() {
        let codec = GzipLite::default();
        let data = b"some moderately long payload with repeats repeats repeats".repeat(50);
        let mut packed = codec.compress(&data);
        // Flip a byte in the middle of the encoded stream.
        let mid = packed.len() / 2;
        packed[mid] ^= 0xFF;
        assert!(codec.decompress(&packed).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let codec = GzipLite::default();
        let data = b"truncate me please, many bytes of content here".repeat(20);
        let packed = codec.compress(&data);
        for cut in [packed.len() - 1, packed.len() / 2, 6] {
            assert!(codec.decompress(&packed[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn crc_mismatch_is_detected() {
        let codec = GzipLite::default();
        let data = b"payload".repeat(100);
        let mut packed = codec.compress(&data);
        // Corrupt the stored CRC (bytes right after magic + varint length).
        let mut pos = 4;
        varint::read_u64(&packed, &mut pos).unwrap();
        packed[pos] ^= 0x01;
        assert!(matches!(
            codec.decompress(&packed),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        round_trip(&data);
    }
}
