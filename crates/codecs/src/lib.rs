//! From-scratch lossless compression codecs for the SPATE storage layer.
//!
//! The SPATE paper (ICDE 2017, §IV) compares four lossless compression
//! libraries — GZIP, 7z (LZMA), SNAPPY and ZSTD — as candidates for
//! compressing 30-minute telco snapshots. This crate reimplements one codec
//! per algorithmic family so that the Table I microbenchmark can be
//! regenerated without external dependencies:
//!
//! * [`GzipLite`] — LZ77 + canonical Huffman, DEFLATE-class ("GZIP").
//! * [`SevenzLite`] — large-window lazy LZ77 + adaptive binary range coder,
//!   LZMA-class ("7z"). Best ratio, slowest.
//! * [`SnappyLite`] — byte-oriented greedy LZ with no entropy stage
//!   ("SNAPPY"). Fastest, roughly half the ratio of the others.
//! * [`ZstdLite`] — LZ77 + tANS (FSE) entropy coding with optional trained
//!   dictionaries ("ZSTD").
//!
//! All codecs implement the [`Codec`] trait and are exact: `decompress ∘
//! compress` is the identity for every byte string (verified by property
//! tests). Each compressed container embeds a CRC-32 of the original data
//! which is verified on decompression.
//!
//! # Example
//!
//! ```
//! use codecs::{Codec, GzipLite};
//!
//! let codec = GzipLite::default();
//! let data = b"cellid=17,drop=0,drop=0,drop=0,drop=0,cellid=17".repeat(10);
//! let packed = codec.compress(&data);
//! assert!(packed.len() < data.len());
//! assert_eq!(codec.decompress(&packed).unwrap(), data);
//! ```

pub mod bitio;
pub mod crc32;
pub mod delta;
pub mod dict;
pub mod fse;
pub mod gzip_lite;
pub mod huffman;
pub mod lz77;
pub mod range_coder;
pub mod sevenz_lite;
pub mod slots;
pub mod snappy_lite;
pub mod varint;
pub mod zstd_lite;

pub use delta::DeltaCodec;
pub use dict::Dictionary;
pub use gzip_lite::GzipLite;
pub use sevenz_lite::SevenzLite;
pub use snappy_lite::SnappyLite;
pub use zstd_lite::ZstdLite;

use std::fmt;

/// Error produced when decompressing malformed or corrupted input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The container magic bytes did not match the codec.
    BadMagic,
    /// The input ended before the declared payload was fully decoded.
    Truncated,
    /// A structural invariant of the stream was violated.
    Corrupt(&'static str),
    /// The CRC-32 of the decompressed payload did not match the stored one.
    ChecksumMismatch { expected: u32, actual: u32 },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "bad container magic"),
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
            CodecError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: stored {expected:#010x}, computed {actual:#010x}"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

/// Largest buffer a decoder pre-allocates from an untrusted declared length.
///
/// Container headers carry the decompressed size as a varint, so a corrupt
/// or hostile stream can declare a multi-gigabyte payload in a handful of
/// bytes. Decoders honour the declared length — output still grows on demand
/// past this cap — but they never *reserve* more than this up front, so a
/// forged header cannot commit memory before any decoding work has
/// validated the stream.
pub(crate) const MAX_PREALLOC: usize = 16 << 20;

/// Clamp an untrusted declared length to [`MAX_PREALLOC`] for use with
/// `Vec::with_capacity`.
#[inline]
pub(crate) fn bounded_capacity(declared: usize) -> usize {
    declared.min(MAX_PREALLOC)
}

/// A lossless, self-contained compression codec.
///
/// Implementations are stateless (any per-call state lives on the stack), so
/// a single codec value can be shared across threads.
pub trait Codec: Send + Sync {
    /// Short stable identifier, e.g. `"gzip-lite"`. Used by the storage
    /// layer to record which codec produced a stored block.
    fn name(&self) -> &'static str;

    /// Compress `input` into a self-describing container.
    fn compress(&self, input: &[u8]) -> Vec<u8>;

    /// Decompress a container produced by [`Codec::compress`] of the same
    /// codec, verifying the embedded checksum.
    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CodecError>;

    /// [`Codec::compress`] plus metering: records
    /// `codecs.<name>.compress.bytes_in` / `.bytes_out` counters and a
    /// `codecs.<name>.compress_ns` latency histogram in the global
    /// registry. Deliberately *not* a tracing span, so storage-level
    /// stage spans keep the codec work in their own self-time.
    fn compress_metered(&self, input: &[u8]) -> Vec<u8> {
        let start = std::time::Instant::now();
        let out = self.compress(input);
        let ns = start.elapsed().as_nanos() as u64;
        let name = self.name();
        obs::add(
            &format!("codecs.{name}.compress.bytes_in"),
            input.len() as u64,
        );
        obs::add(
            &format!("codecs.{name}.compress.bytes_out"),
            out.len() as u64,
        );
        obs::observe(&format!("codecs.{name}.compress_ns"), ns);
        out
    }

    /// [`Codec::decompress`] plus metering, mirroring
    /// [`Codec::compress_metered`]. Failed decompressions count under
    /// `codecs.<name>.decompress.errors` instead of `.bytes_out`.
    fn decompress_metered(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let start = std::time::Instant::now();
        let result = self.decompress(input);
        let ns = start.elapsed().as_nanos() as u64;
        let name = self.name();
        obs::add(
            &format!("codecs.{name}.decompress.bytes_in"),
            input.len() as u64,
        );
        obs::observe(&format!("codecs.{name}.decompress_ns"), ns);
        match &result {
            Ok(out) => {
                obs::add(
                    &format!("codecs.{name}.decompress.bytes_out"),
                    out.len() as u64,
                );
                // Attribute the produced bytes to this codec in the active
                // per-query cost profile (no-op outside a profiled query).
                obs::cost::add_decompressed(name, out.len() as u64);
            }
            Err(_) => obs::inc(&format!("codecs.{name}.decompress.errors")),
        }
        result
    }
}

/// The identity codec: stores data without compression.
///
/// This is what the paper's RAW baseline uses, and a useful control in
/// benchmarks.
#[derive(Debug, Default, Clone, Copy)]
pub struct Identity;

impl Codec for Identity {
    fn name(&self) -> &'static str {
        "identity"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        input.to_vec()
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        Ok(input.to_vec())
    }
}

/// All codecs evaluated in the paper's Table I, in paper order, behind a
/// uniform trait object. Useful for sweeps.
pub fn table1_codecs() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(GzipLite::default()),
        Box::new(SevenzLite::default()),
        Box::new(SnappyLite::default()),
        Box::new(ZstdLite::default()),
    ]
}

/// Look a codec up by its [`Codec::name`].
pub fn by_name(name: &str) -> Option<Box<dyn Codec>> {
    match name {
        "gzip-lite" => Some(Box::new(GzipLite::default())),
        "7z-lite" => Some(Box::new(SevenzLite::default())),
        "snappy-lite" => Some(Box::new(SnappyLite::default())),
        "zstd-lite" => Some(Box::new(ZstdLite::default())),
        "identity" => Some(Box::new(Identity)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trip() {
        let c = Identity;
        let data = b"hello world".to_vec();
        assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
        assert_eq!(c.name(), "identity");
    }

    #[test]
    fn metered_wrappers_record_bytes_and_latency() {
        let c = Identity;
        let data = vec![7u8; 2048];
        let before_in = obs::counter("codecs.identity.compress.bytes_in").get();
        let before_rt = obs::histogram("codecs.identity.decompress_ns").count();
        let packed = c.compress_metered(&data);
        let out = c.decompress_metered(&packed).unwrap();
        assert_eq!(out, data);
        assert_eq!(
            obs::counter("codecs.identity.compress.bytes_in").get() - before_in,
            2048
        );
        assert_eq!(
            obs::histogram("codecs.identity.decompress_ns").count() - before_rt,
            1
        );
        // Corrupt input is an error counter, not bytes_out.
        let before_err = obs::counter("codecs.gzip-lite.decompress.errors").get();
        assert!(GzipLite::default().decompress_metered(b"junk").is_err());
        assert_eq!(
            obs::counter("codecs.gzip-lite.decompress.errors").get() - before_err,
            1
        );
    }

    #[test]
    fn registry_finds_all_table1_codecs() {
        for codec in table1_codecs() {
            let found = by_name(codec.name()).expect("codec registered");
            assert_eq!(found.name(), codec.name());
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn error_display_is_informative() {
        let e = CodecError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("checksum"));
        assert!(CodecError::BadMagic.to_string().contains("magic"));
        assert!(CodecError::Truncated.to_string().contains("truncated"));
        assert!(CodecError::Corrupt("x").to_string().contains('x'));
    }
}
