//! Cross-codec behaviour: container discrimination, scaling behaviour, and
//! thread-safety of shared codec values.

use codecs::{table1_codecs, Codec, DeltaCodec, Dictionary, GzipLite, ZstdLite};
use std::sync::Arc;

/// A telco-ish payload with tunable redundancy.
fn payload(rows: usize, distinct_cells: u32) -> Vec<u8> {
    let mut out = Vec::new();
    for i in 0..rows {
        out.extend_from_slice(
            format!(
                "201601221530,{},{},0,{},{}00,-88,2\n",
                (i as u32) % distinct_cells,
                10 + (i % 7),
                (10 + (i % 7)) * 60,
                (i % 5) + 50,
            )
            .as_bytes(),
        );
    }
    out
}

#[test]
fn codecs_reject_each_others_containers() {
    let data = payload(200, 40);
    let all = table1_codecs();
    for producer in &all {
        let packed = producer.compress(&data);
        for consumer in &all {
            if consumer.name() == producer.name() {
                assert_eq!(consumer.decompress(&packed).unwrap(), data);
            } else {
                assert!(
                    consumer.decompress(&packed).is_err(),
                    "{} accepted a {} container",
                    consumer.name(),
                    producer.name()
                );
            }
        }
    }
}

#[test]
fn higher_redundancy_never_compresses_worse() {
    // Fewer distinct cells → more redundancy → at most equal size.
    for codec in table1_codecs() {
        let loose = codec.compress(&payload(2_000, 1_000));
        let tight = codec.compress(&payload(2_000, 4));
        assert!(
            tight.len() <= loose.len(),
            "{}: {} vs {}",
            codec.name(),
            tight.len(),
            loose.len()
        );
    }
}

#[test]
fn megabyte_scale_round_trips() {
    let data = payload(30_000, 400); // ~1.2 MB
    assert!(data.len() > 1_000_000);
    for codec in table1_codecs() {
        let packed = codec.compress(&data);
        assert_eq!(codec.decompress(&packed).unwrap(), data, "{}", codec.name());
        assert!(packed.len() < data.len() / 2, "{}", codec.name());
    }
}

#[test]
fn codecs_are_shareable_across_threads() {
    let codec: Arc<dyn Codec> = Arc::new(GzipLite::default());
    let data = payload(500, 40);
    std::thread::scope(|scope| {
        for t in 0..8 {
            let codec = Arc::clone(&codec);
            let data = data.clone();
            scope.spawn(move || {
                for i in 0..5 {
                    let mut local = data.clone();
                    local.extend_from_slice(format!("thread {t} round {i}\n").as_bytes());
                    let packed = codec.compress(&local);
                    assert_eq!(codec.decompress(&packed).unwrap(), local);
                }
            });
        }
    });
}

#[test]
fn dictionary_codec_shares_dictionaries_across_threads() {
    let corpus = payload(400, 20);
    let dict = Arc::new(Dictionary::train(&[corpus.as_slice()], 8 << 10));
    let codec = Arc::new(ZstdLite::default().with_dictionary(dict));
    std::thread::scope(|scope| {
        for t in 0..4 {
            let codec = Arc::clone(&codec);
            scope.spawn(move || {
                let local = payload(100 + t * 13, 20);
                let packed = codec.compress(&local);
                assert_eq!(codec.decompress(&packed).unwrap(), local);
            });
        }
    });
}

#[test]
fn delta_chain_over_many_epochs() {
    // A chain of evolving payloads, each delta'd against the first (anchor
    // semantics): all recoverable, all smaller than cold compression.
    let delta = DeltaCodec::default();
    let anchor = payload(2_000, 60);
    let gzip = GzipLite::default();
    for step in 1..=10usize {
        let mut evolved = anchor.clone();
        // Mutate ~step% of rows.
        let row_len = 40;
        for r in 0..(2_000 * step / 100) {
            let at = (r * 97) % (evolved.len() - row_len);
            evolved[at] = b'X';
        }
        let packed = delta.compress(&anchor, &evolved);
        assert_eq!(delta.decompress(&anchor, &packed).unwrap(), evolved);
        let cold = gzip.compress(&evolved);
        assert!(
            packed.len() < cold.len(),
            "step {step}: delta {} vs cold {}",
            packed.len(),
            cold.len()
        );
    }
}
