//! Property-based round-trip tests: for every codec and every byte string,
//! `decompress(compress(x)) == x`.

use codecs::{table1_codecs, Codec, Identity};
use proptest::prelude::*;

fn assert_round_trip(codec: &dyn Codec, data: &[u8]) {
    let packed = codec.compress(data);
    let unpacked = codec
        .decompress(&packed)
        .unwrap_or_else(|e| panic!("{} failed on {} bytes: {e}", codec.name(), data.len()));
    assert_eq!(unpacked, data, "{} round trip", codec.name());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_bytes_round_trip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        for codec in table1_codecs() {
            assert_round_trip(codec.as_ref(), &data);
        }
    }

    #[test]
    fn low_entropy_bytes_round_trip(
        data in proptest::collection::vec(prop_oneof![Just(b'0'), Just(b'1'), Just(b','), Just(b'\n')], 0..8192)
    ) {
        for codec in table1_codecs() {
            assert_round_trip(codec.as_ref(), &data);
        }
    }

    #[test]
    fn repeated_fragment_round_trip(
        fragment in proptest::collection::vec(any::<u8>(), 1..64),
        reps in 1usize..256,
    ) {
        let data: Vec<u8> = fragment.iter().copied().cycle().take(fragment.len() * reps).collect();
        for codec in table1_codecs() {
            assert_round_trip(codec.as_ref(), &data);
        }
    }

    #[test]
    fn truncated_containers_never_panic(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        cut_frac in 0.0f64..1.0,
    ) {
        for codec in table1_codecs() {
            let packed = codec.compress(&data);
            let cut = ((packed.len() as f64) * cut_frac) as usize;
            // Must return an error or (if the cut kept the whole payload
            // valid, impossible here since containers are exact) the data —
            // never panic.
            let _ = codec.decompress(&packed[..cut.min(packed.len().saturating_sub(1))]);
        }
    }

    #[test]
    fn single_byte_flips_are_detected_or_exact(
        data in proptest::collection::vec(any::<u8>(), 32..512),
        flip_pos_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        for codec in table1_codecs() {
            let mut packed = codec.compress(&data);
            let pos = ((packed.len() as f64) * flip_pos_frac) as usize % packed.len();
            packed[pos] ^= 1 << flip_bit;
            // Either an error is reported or — if the flip hit padding /
            // unread flush bytes — the exact original data is recovered.
            if let Ok(out) = codec.decompress(&packed) {
                assert_eq!(out, data, "{}: silent corruption", codec.name());
            }
        }
    }

    #[test]
    fn identity_is_exact(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
        assert_round_trip(&Identity, &data);
    }
}
