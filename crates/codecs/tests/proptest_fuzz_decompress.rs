//! Adversarial decompression fuzzing: for every codec, `decompress` on
//! hostile input must return `Err` (or, for flips that land in padding,
//! the exact original bytes) — it must never panic and never allocate or
//! loop unboundedly from a forged header.
//!
//! Complements `proptest_roundtrip.rs`, which checks the happy path; this
//! suite drives garbage, prefix-stitched, truncated and bit-flipped
//! containers through every `table1` codec, plus handcrafted forged-header
//! streams that previously triggered multi-gigabyte preallocations or
//! effectively unbounded token loops (range coder and bit reader both yield
//! zeros past the end of input).

use codecs::{table1_codecs, Codec};
use proptest::prelude::*;

/// The four container magics, so random bodies can be stitched behind a
/// valid magic and reach the header/token parsers instead of bouncing off
/// the magic check.
const MAGICS: [&[u8; 4]; 4] = [b"SPZ1", b"SP7Z", b"SPSN", b"SPZS"];

fn assert_rejects_cleanly(codec: &dyn Codec, input: &[u8]) {
    // Any Ok here would mean the codec invented a payload whose CRC-32
    // matches a random 32-bit header field — astronomically unlikely, and
    // worth failing loudly on because it signals the checksum is not
    // actually being checked.
    if let Ok(out) = codec.decompress(input) {
        panic!(
            "{} accepted {} hostile bytes as a {}-byte payload",
            codec.name(),
            input.len(),
            out.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_garbage_is_rejected(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        for codec in table1_codecs() {
            assert_rejects_cleanly(codec.as_ref(), &data);
        }
    }

    #[test]
    fn garbage_behind_a_valid_magic_is_rejected(
        body in proptest::collection::vec(any::<u8>(), 0..1024),
        magic_idx in 0usize..4,
    ) {
        let mut input = MAGICS[magic_idx].to_vec();
        input.extend_from_slice(&body);
        for codec in table1_codecs() {
            assert_rejects_cleanly(codec.as_ref(), &input);
        }
    }

    #[test]
    fn truncated_valid_streams_error_or_round_trip(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        cut_frac in 0.0f64..1.0,
    ) {
        for codec in table1_codecs() {
            let packed = codec.compress(&data);
            // Drop at least one byte. Cutting only the encoder's flush
            // padding can leave the payload fully decodable (7z-lite's
            // range decoder never reads its last flush bytes), so Ok is
            // tolerated iff the payload is byte-exact; anything else must
            // be an error, never a panic.
            let keep = (((packed.len() as f64) * cut_frac) as usize).min(packed.len() - 1);
            if let Ok(out) = codec.decompress(&packed[..keep]) {
                prop_assert_eq!(&out, &data, "{}: silent corruption after truncation", codec.name());
            }
        }
    }

    #[test]
    fn bit_flipped_streams_error_or_round_trip(
        data in proptest::collection::vec(any::<u8>(), 16..512),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        for codec in table1_codecs() {
            let mut packed = codec.compress(&data);
            let pos = ((packed.len() as f64) * pos_frac) as usize % packed.len();
            packed[pos] ^= 1 << bit;
            // A flip in the encoder's flush/padding bytes may be invisible;
            // anything the decoder does read must be caught by a structural
            // check or the CRC. Silent corruption is the only failure.
            if let Ok(out) = codec.decompress(&packed) {
                prop_assert_eq!(&out, &data, "{}: silent corruption", codec.name());
            }
        }
    }

    #[test]
    fn multi_flip_streams_error_or_round_trip(
        data in proptest::collection::vec(any::<u8>(), 16..512),
        seed in any::<u64>(),
        n_flips in 2usize..8,
    ) {
        for codec in table1_codecs() {
            let mut packed = codec.compress(&data);
            let mut s = seed | 1;
            for _ in 0..n_flips {
                // SplitMix64 step: cheap deterministic positions/bits.
                s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let pos = (z as usize) % packed.len();
                packed[pos] ^= 1 << ((z >> 32) & 7);
            }
            if let Ok(out) = codec.decompress(&packed) {
                prop_assert_eq!(&out, &data, "{}: silent corruption", codec.name());
            }
        }
    }
}

/// Build `magic ++ varint(declared_len) ++ crc ++ tail` — the common header
/// shape of all four containers — for forged-header tests.
fn forged_header(magic: &[u8; 4], declared_len: u64, tail: &[u8]) -> Vec<u8> {
    let mut out = magic.to_vec();
    let mut v = declared_len;
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
    out.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
    out.extend_from_slice(tail);
    out
}

/// A forged declared length of several exabytes must be rejected without
/// reserving memory for it. If the prealloc clamp regressed, this test
/// aborts the process (or the OOM killer does) rather than failing an
/// assert — either way CI catches it.
#[test]
fn astronomical_declared_lengths_do_not_preallocate() {
    for (codec, magic) in table1_codecs().iter().zip(MAGICS) {
        // Tail bytes parse as tiny token/block counts, so decoding ends
        // almost immediately with a structural error.
        let input = forged_header(magic, u64::MAX >> 2, &[0x01, 0x00, 0x00, 0x00]);
        assert!(
            codec.decompress(&input).is_err(),
            "{} accepted a forged exabyte header",
            codec.name()
        );
    }
}

/// A huge token count with no backing bits used to spin the gzip and 7z
/// token loops on the readers' implicit zero padding, pushing synthesized
/// literals until memory ran out. Both must now fail fast.
#[test]
fn huge_token_counts_with_no_input_fail_fast() {
    // gzip-lite: declared_len huge, then a single block whose token count
    // is u32::MAX but whose bit buffer is empty.
    let gzip = &table1_codecs()[0];
    let mut tail = Vec::new();
    tail.push(0x01); // n_blocks = 1
                     // Two length tables the block parser will reject cheaply — but even if
                     // a variant parses, the empty bit buffer must stop the token loop.
    tail.extend_from_slice(&[0x00, 0x00]);
    let input = forged_header(b"SPZ1", u64::MAX >> 2, &tail);
    assert!(gzip.decompress(&input).is_err());

    // 7z-lite: token count exceeding the declared length is structurally
    // impossible (every token emits at least one byte).
    let sevenz = &table1_codecs()[1];
    let mut tail = Vec::new();
    tail.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0x7F]); // n_tokens varint ≫ declared_len
    tail.extend_from_slice(&[0x00; 8]); // range coder bytes
    let input = forged_header(b"SP7Z", 4, &tail);
    assert!(sevenz.decompress(&input).is_err());

    // 7z-lite again: n_tokens ≤ declared_len but far more tokens than the
    // five range-coder bytes can encode — the overrun check must trip
    // instead of decoding literals from zero padding forever.
    let mut tail = Vec::new();
    tail.extend_from_slice(&[0xC0, 0x84, 0x3D]); // n_tokens = 1_000_000
    tail.extend_from_slice(&[0x00; 5]);
    let input = forged_header(b"SP7Z", 1_000_000, &tail);
    let start = std::time::Instant::now();
    assert!(sevenz.decompress(&input).is_err());
    assert!(
        start.elapsed().as_secs() < 5,
        "7z token loop did not fail fast on a truncated range stream"
    );
}

/// Sanity-pin the `table1_codecs` order the forged-header tests rely on.
#[test]
fn table1_codec_order_matches_magics() {
    let names: Vec<&str> = table1_codecs().iter().map(|c| c.name()).collect();
    assert_eq!(names, ["gzip-lite", "7z-lite", "snappy-lite", "zstd-lite"]);
}
