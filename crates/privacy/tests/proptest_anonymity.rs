//! Property tests: whatever the input table, the anonymizer's output is
//! k-anonymous over the generalized quasi-identifiers.

use privacy::{is_k_anonymous, Anonymizer, Hierarchy};
use proptest::prelude::*;
use telco_trace::record::{Record, Value};

prop_compose! {
    fn arb_record()(
        phone in "[0-9]{4,8}",
        duration in 0i64..2000,
        cell in 0u32..40,
    ) -> Record {
        Record::new(vec![
            Value::Str(phone),
            Value::Int(duration),
            Value::Str(format!("c{cell}")),
        ])
    }
}

fn anonymizer(k: usize, suppression: f64) -> Anonymizer {
    Anonymizer::new(
        vec![
            (0, Hierarchy::MaskSuffix { levels: 8 }),
            (
                1,
                Hierarchy::NumericRange {
                    base_width: 30.0,
                    levels: 8,
                },
            ),
            (2, Hierarchy::MaskSuffix { levels: 3 }),
        ],
        k,
    )
    .with_suppression_limit(suppression)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn output_is_always_k_anonymous(
        records in proptest::collection::vec(arb_record(), 0..120),
        k in 1usize..8,
    ) {
        let a = anonymizer(k, 0.1);
        if let Some(result) = a.anonymize(&records) {
            prop_assert!(is_k_anonymous(&result.records, &[0, 1, 2], k));
            // Suppression stays within budget.
            prop_assert!(result.suppressed <= records.len() / 10 + 1);
            // Row accounting: kept + suppressed = input.
            prop_assert_eq!(result.records.len() + result.suppressed, records.len());
        } else {
            // Failure is only legal when even full suppression-free
            // generalization cannot make classes of size k.
            prop_assert!(records.len() < k || k > 1);
        }
    }

    #[test]
    fn generalization_levels_are_within_hierarchy_bounds(
        records in proptest::collection::vec(arb_record(), 1..60),
        k in 1usize..5,
    ) {
        let a = anonymizer(k, 0.05);
        if let Some(result) = a.anonymize(&records) {
            prop_assert!(result.levels[0] <= 8);
            prop_assert!(result.levels[1] <= 8);
            prop_assert!(result.levels[2] <= 3);
            prop_assert!((0.0..=1.0).contains(&result.loss));
        }
    }

    #[test]
    fn k1_is_identity_like(records in proptest::collection::vec(arb_record(), 0..40)) {
        // k = 1 is satisfied by the raw data: no generalization, nothing
        // suppressed.
        let a = anonymizer(1, 0.0);
        let result = a.anonymize(&records).unwrap();
        prop_assert_eq!(result.levels, vec![0, 0, 0]);
        prop_assert_eq!(result.records.len(), records.len());
    }
}
