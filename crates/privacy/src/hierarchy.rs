//! Generalization hierarchies for quasi-identifiers.
//!
//! Each hierarchy defines a ladder of increasingly coarse views of a value;
//! level 0 is the original value, the top level is full suppression (`*`).

use std::collections::HashMap;

/// A full-domain generalization hierarchy.
#[derive(Debug, Clone)]
pub enum Hierarchy {
    /// Replace the rightmost `level` digits/characters with `*`
    /// (e.g. phone numbers: `8210000017` → `821000001*` → `82100000**` …).
    /// The top level (`= levels`) suppresses the whole value.
    MaskSuffix { levels: u32 },
    /// Bucket numeric values into ranges whose width doubles per level,
    /// starting at `base_width` (e.g. durations: `[0,10)` → `[0,20)` …).
    /// The top level suppresses.
    NumericRange { base_width: f64, levels: u32 },
    /// Explicit taxonomy: `maps[i]` rewrites a level-`i` value to its
    /// level-`i+1` parent (e.g. cell → region → city → `*`). Values missing
    /// from a map generalize to `*`.
    Taxonomy { maps: Vec<HashMap<String, String>> },
}

/// The suppressed value at the hierarchy top.
pub const SUPPRESSED: &str = "*";

impl Hierarchy {
    /// Number of generalization steps above level 0.
    pub fn max_level(&self) -> u32 {
        match self {
            Hierarchy::MaskSuffix { levels } => *levels,
            Hierarchy::NumericRange { levels, .. } => *levels,
            Hierarchy::Taxonomy { maps } => maps.len() as u32,
        }
    }

    /// The level-`level` view of `value`.
    pub fn generalize(&self, value: &str, level: u32) -> String {
        if level == 0 {
            return value.to_string();
        }
        if level >= self.max_level() && !matches!(self, Hierarchy::Taxonomy { .. }) {
            return SUPPRESSED.to_string();
        }
        match self {
            Hierarchy::MaskSuffix { .. } => {
                let chars: Vec<char> = value.chars().collect();
                let keep = chars.len().saturating_sub(level as usize);
                if keep == 0 {
                    return SUPPRESSED.to_string();
                }
                let mut out: String = chars[..keep].iter().collect();
                out.extend(std::iter::repeat_n('*', chars.len() - keep));
                out
            }
            Hierarchy::NumericRange { base_width, .. } => {
                let Ok(v) = value.parse::<f64>() else {
                    return SUPPRESSED.to_string();
                };
                let width = base_width * f64::from(1u32 << (level - 1));
                let lo = (v / width).floor() * width;
                format!("[{lo:.0},{:.0})", lo + width)
            }
            Hierarchy::Taxonomy { maps } => {
                let mut cur = value.to_string();
                for map in maps.iter().take(level as usize) {
                    cur = map
                        .get(&cur)
                        .cloned()
                        .unwrap_or_else(|| SUPPRESSED.to_string());
                    if cur == SUPPRESSED {
                        break;
                    }
                }
                cur
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_suffix_ladder() {
        let h = Hierarchy::MaskSuffix { levels: 4 };
        assert_eq!(h.max_level(), 4);
        assert_eq!(h.generalize("8210017", 0), "8210017");
        assert_eq!(h.generalize("8210017", 1), "821001*");
        assert_eq!(h.generalize("8210017", 3), "8210***");
        assert_eq!(h.generalize("8210017", 4), "*");
        // Values shorter than the mask suppress entirely.
        assert_eq!(h.generalize("ab", 3), "*");
    }

    #[test]
    fn numeric_ranges_widen() {
        let h = Hierarchy::NumericRange {
            base_width: 10.0,
            levels: 3,
        };
        assert_eq!(h.generalize("17", 1), "[10,20)");
        assert_eq!(h.generalize("17", 2), "[0,20)");
        assert_eq!(h.generalize("37", 2), "[20,40)");
        assert_eq!(h.generalize("17", 3), "*");
        assert_eq!(h.generalize("not-a-number", 1), "*");
    }

    #[test]
    fn taxonomy_walks_up() {
        let mut cell_to_region = HashMap::new();
        cell_to_region.insert("c1".to_string(), "north".to_string());
        cell_to_region.insert("c2".to_string(), "north".to_string());
        cell_to_region.insert("c3".to_string(), "south".to_string());
        let mut region_to_city = HashMap::new();
        region_to_city.insert("north".to_string(), "nicosia".to_string());
        region_to_city.insert("south".to_string(), "nicosia".to_string());
        let h = Hierarchy::Taxonomy {
            maps: vec![cell_to_region, region_to_city],
        };
        assert_eq!(h.max_level(), 2);
        assert_eq!(h.generalize("c1", 0), "c1");
        assert_eq!(h.generalize("c1", 1), "north");
        assert_eq!(h.generalize("c3", 1), "south");
        assert_eq!(h.generalize("c1", 2), "nicosia");
        assert_eq!(h.generalize("c3", 2), "nicosia");
        assert_eq!(h.generalize("unknown", 1), "*");
    }

    #[test]
    fn level_zero_is_identity_everywhere() {
        for h in [
            Hierarchy::MaskSuffix { levels: 2 },
            Hierarchy::NumericRange {
                base_width: 5.0,
                levels: 2,
            },
            Hierarchy::Taxonomy { maps: vec![] },
        ] {
            assert_eq!(h.generalize("xyz", 0), "xyz");
        }
    }
}
