//! k-anonymity for privacy-aware telco data sharing (paper task T5).
//!
//! "This task retrieves and anonymizes the result set based on the
//! k-anonymity model [Sweeney 2002] through the ARX Java library.
//! Particularly, it generates a k-anonymized dataset by generalizing,
//! substituting, inserting, and removing information as appropriate in
//! order to make the quasi-identifiers indistinguishable among k rows."
//!
//! This crate substitutes ARX with a from-scratch implementation of the
//! same model: full-domain generalization over per-attribute
//! [`Hierarchy`]s, a bottom-up lattice search for the minimal
//! generalization ([`Anonymizer::anonymize`], OLA/Flash-style with
//! monotonicity pruning), and bounded record suppression.

pub mod hierarchy;
pub mod lattice;

pub use hierarchy::Hierarchy;
pub use lattice::{is_k_anonymous, AnonymizedTable, Anonymizer};
