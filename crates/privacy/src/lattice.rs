//! The generalization lattice and the minimal k-anonymization search.
//!
//! Every combination of per-QI generalization levels is a lattice node;
//! generalization is monotone (raising any level only merges equivalence
//! classes), so the bottom-up breadth-first search by total level returns a
//! *minimal* satisfying node, the same optimality criterion ARX's OLA/Flash
//! algorithms use.

use crate::hierarchy::Hierarchy;
use std::collections::HashMap;
use telco_trace::record::{Record, Value};

/// A k-anonymization task over records.
#[derive(Debug, Clone)]
pub struct Anonymizer {
    /// `(column index, hierarchy)` per quasi-identifier.
    pub quasi_identifiers: Vec<(usize, Hierarchy)>,
    /// Minimum equivalence-class size.
    pub k: usize,
    /// Fraction of records that may be suppressed outright (ARX default 0).
    pub suppression_limit: f64,
}

/// Result of anonymization.
#[derive(Debug)]
pub struct AnonymizedTable {
    /// Generalized records (suppressed rows removed).
    pub records: Vec<Record>,
    /// The chosen generalization level per QI.
    pub levels: Vec<u32>,
    pub suppressed: usize,
    /// Information-loss proxy: mean fraction of hierarchy height used.
    pub loss: f64,
}

/// Check k-anonymity of `records` over the raw values of `qi_cols`.
pub fn is_k_anonymous(records: &[Record], qi_cols: &[usize], k: usize) -> bool {
    if records.is_empty() {
        return true;
    }
    let mut classes: HashMap<Vec<String>, usize> = HashMap::new();
    for r in records {
        let key: Vec<String> = qi_cols.iter().map(|&c| r.get(c).as_text()).collect();
        *classes.entry(key).or_insert(0) += 1;
    }
    classes.values().all(|&n| n >= k)
}

impl Anonymizer {
    pub fn new(quasi_identifiers: Vec<(usize, Hierarchy)>, k: usize) -> Self {
        assert!(k >= 1);
        Self {
            quasi_identifiers,
            k,
            suppression_limit: 0.02,
        }
    }

    pub fn with_suppression_limit(mut self, limit: f64) -> Self {
        assert!((0.0..=1.0).contains(&limit));
        self.suppression_limit = limit;
        self
    }

    /// Equivalence-class sizes at a lattice node.
    fn class_keys(&self, records: &[Record], levels: &[u32]) -> Vec<Vec<String>> {
        records
            .iter()
            .map(|r| {
                self.quasi_identifiers
                    .iter()
                    .zip(levels)
                    .map(|((col, h), &lvl)| h.generalize(&r.get(*col).as_text(), lvl))
                    .collect()
            })
            .collect()
    }

    /// Does this node satisfy k-anonymity within the suppression budget?
    /// Returns the number of suppressed records on success.
    fn check(&self, records: &[Record], levels: &[u32]) -> Option<usize> {
        let keys = self.class_keys(records, levels);
        let mut counts: HashMap<&[String], usize> = HashMap::new();
        for key in &keys {
            *counts.entry(key.as_slice()).or_insert(0) += 1;
        }
        let to_suppress: usize = counts.values().filter(|&&n| n < self.k).sum();
        let budget = (records.len() as f64 * self.suppression_limit) as usize;
        (to_suppress <= budget).then_some(to_suppress)
    }

    /// Find the minimal generalization satisfying k-anonymity and apply it.
    ///
    /// Returns `None` if even the lattice top (everything suppressed to
    /// `*`) fails — only possible when the table is smaller than `k`.
    pub fn anonymize(&self, records: &[Record]) -> Option<AnonymizedTable> {
        if records.is_empty() {
            return Some(AnonymizedTable {
                records: vec![],
                levels: vec![0; self.quasi_identifiers.len()],
                suppressed: 0,
                loss: 0.0,
            });
        }
        let maxima: Vec<u32> = self
            .quasi_identifiers
            .iter()
            .map(|(_, h)| h.max_level())
            .collect();

        // Breadth-first by total generalization (minimality), enumerating
        // the level lattice.
        let total_max: u32 = maxima.iter().sum();
        for budget in 0..=total_max {
            let mut found: Option<Vec<u32>> = None;
            enumerate_levels(&maxima, budget, &mut |levels| {
                if found.is_none() && self.check(records, levels).is_some() {
                    found = Some(levels.to_vec());
                }
            });
            if let Some(levels) = found {
                return Some(self.apply(records, &levels, &maxima));
            }
        }
        None
    }

    fn apply(&self, records: &[Record], levels: &[u32], maxima: &[u32]) -> AnonymizedTable {
        let keys = self.class_keys(records, levels);
        let mut counts: HashMap<&[String], usize> = HashMap::new();
        for key in &keys {
            *counts.entry(key.as_slice()).or_insert(0) += 1;
        }
        let mut out = Vec::with_capacity(records.len());
        let mut suppressed = 0usize;
        for (r, key) in records.iter().zip(&keys) {
            if counts[key.as_slice()] < self.k {
                suppressed += 1;
                continue;
            }
            let mut rec = r.clone();
            for (((col, _), &lvl), gen) in self.quasi_identifiers.iter().zip(levels).zip(key.iter())
            {
                let _ = lvl;
                rec.values[*col] = Value::Str(gen.clone());
            }
            out.push(rec);
        }
        let loss = levels
            .iter()
            .zip(maxima)
            .map(|(&l, &m)| {
                if m == 0 {
                    0.0
                } else {
                    f64::from(l) / f64::from(m)
                }
            })
            .sum::<f64>()
            / levels.len().max(1) as f64;
        AnonymizedTable {
            records: out,
            levels: levels.to_vec(),
            suppressed,
            loss,
        }
    }
}

/// Visit every level vector with the given total sum (bounded per-QI).
fn enumerate_levels(maxima: &[u32], total: u32, visit: &mut impl FnMut(&[u32])) {
    fn rec(
        maxima: &[u32],
        idx: usize,
        remaining: u32,
        cur: &mut Vec<u32>,
        visit: &mut impl FnMut(&[u32]),
    ) {
        if idx == maxima.len() {
            if remaining == 0 {
                visit(cur);
            }
            return;
        }
        let tail_max: u32 = maxima[idx + 1..].iter().sum();
        let lo = remaining.saturating_sub(tail_max);
        let hi = remaining.min(maxima[idx]);
        for l in lo..=hi {
            cur.push(l);
            rec(maxima, idx + 1, remaining - l, cur, visit);
            cur.pop();
        }
    }
    let mut cur = Vec::with_capacity(maxima.len());
    rec(maxima, 0, total, &mut cur, visit);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(phone: &str, duration: i64, cell: &str) -> Record {
        Record::new(vec![
            Value::Str(phone.to_string()),
            Value::Int(duration),
            Value::Str(cell.to_string()),
        ])
    }

    fn qis() -> Vec<(usize, Hierarchy)> {
        vec![
            (0, Hierarchy::MaskSuffix { levels: 7 }),
            (
                1,
                Hierarchy::NumericRange {
                    base_width: 10.0,
                    levels: 4,
                },
            ),
        ]
    }

    #[test]
    fn already_anonymous_data_needs_no_generalization() {
        // Four identical QI tuples: 2-anonymous at level 0.
        let records: Vec<Record> = (0..4).map(|_| record("5550000", 15, "c1")).collect();
        let a = Anonymizer::new(qis(), 2).with_suppression_limit(0.0);
        let result = a.anonymize(&records).unwrap();
        assert_eq!(result.levels, vec![0, 0]);
        assert_eq!(result.suppressed, 0);
        assert_eq!(result.records.len(), 4);
        assert_eq!(result.loss, 0.0);
    }

    #[test]
    fn distinct_phones_force_generalization() {
        let records: Vec<Record> = (0..8)
            .map(|i| record(&format!("555000{i}"), 15, "c1"))
            .collect();
        let a = Anonymizer::new(qis(), 4).with_suppression_limit(0.0);
        let result = a.anonymize(&records).unwrap();
        assert!(result.levels[0] >= 1, "phone digits must be masked");
        assert_eq!(result.records.len(), 8);
        // Output must be k-anonymous on the generalized QI columns.
        assert!(is_k_anonymous(&result.records, &[0, 1], 4));
    }

    #[test]
    fn result_is_always_k_anonymous() {
        // Mixed durations and phones.
        let records: Vec<Record> = (0..40)
            .map(|i| record(&format!("55512{:02}", i % 20), i64::from(i) * 3, "c1"))
            .collect();
        for k in [2usize, 5, 10] {
            let a = Anonymizer::new(qis(), k).with_suppression_limit(0.05);
            let result = a.anonymize(&records).unwrap();
            assert!(
                is_k_anonymous(&result.records, &[0, 1], k),
                "k={k} levels {:?}",
                result.levels
            );
            assert!(result.suppressed <= 2, "suppression within the 5% budget");
        }
    }

    #[test]
    fn minimality_prefers_less_generalization() {
        // Two groups of 3 identical phones; durations differ within group.
        let mut records = Vec::new();
        for i in 0..3 {
            records.push(record("1111111", 10 + i, "c1"));
            records.push(record("2222222", 50 + i, "c2"));
        }
        let a = Anonymizer::new(qis(), 3).with_suppression_limit(0.0);
        let result = a.anonymize(&records).unwrap();
        // Phones are already 3-anonymous; only duration needs widening.
        assert_eq!(result.levels[0], 0, "levels: {:?}", result.levels);
        assert!(result.levels[1] >= 1);
    }

    #[test]
    fn suppression_budget_absorbs_outliers() {
        // 20 records in one class + 1 outlier: with 5% suppression the
        // outlier is dropped instead of generalizing everyone.
        let mut records: Vec<Record> = (0..20).map(|_| record("9999999", 10, "c1")).collect();
        records.push(record("1234567", 999, "c9"));
        let a = Anonymizer::new(qis(), 5).with_suppression_limit(0.05);
        let result = a.anonymize(&records).unwrap();
        assert_eq!(result.levels, vec![0, 0]);
        assert_eq!(result.suppressed, 1);
        assert_eq!(result.records.len(), 20);
    }

    #[test]
    fn table_smaller_than_k_suppresses_to_top_or_fails() {
        let records = vec![record("1", 1, "c"), record("2", 2, "c")];
        let a = Anonymizer::new(qis(), 3).with_suppression_limit(0.0);
        // At the top, both rows become ("*", "*") — a class of 2 < 3, and
        // nothing may be suppressed, so anonymization must fail.
        assert!(a.anonymize(&records).is_none());
        // With full suppression allowed it trivially succeeds (empty output).
        let a = Anonymizer::new(qis(), 3).with_suppression_limit(1.0);
        let result = a.anonymize(&records).unwrap();
        assert!(result.records.is_empty());
    }

    #[test]
    fn empty_input_is_fine() {
        let a = Anonymizer::new(qis(), 5);
        let result = a.anonymize(&[]).unwrap();
        assert!(result.records.is_empty());
        assert_eq!(result.suppressed, 0);
    }

    #[test]
    fn is_k_anonymous_checker() {
        let records = vec![
            record("a", 1, "c"),
            record("a", 1, "c"),
            record("b", 2, "c"),
        ];
        assert!(is_k_anonymous(&records, &[0], 1));
        assert!(!is_k_anonymous(&records, &[0], 2));
        assert!(is_k_anonymous(&records, &[2], 3));
        assert!(is_k_anonymous(&[], &[0], 10));
    }

    #[test]
    fn enumerate_levels_visits_exact_sums() {
        let mut seen = Vec::new();
        enumerate_levels(&[2, 2], 2, &mut |l| seen.push(l.to_vec()));
        seen.sort();
        assert_eq!(seen, vec![vec![0, 2], vec![1, 1], vec![2, 0]]);

        let mut count = 0;
        enumerate_levels(&[1, 1, 1], 3, &mut |_| count += 1);
        assert_eq!(count, 1); // only [1,1,1]
    }
}
