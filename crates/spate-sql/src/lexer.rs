//! SQL tokenizer.

use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (case preserved; keyword matching is
    /// case-insensitive).
    Word(String),
    /// 'single-quoted' or "double-quoted" string literal.
    StringLit(String),
    Number(f64),
    Comma,
    Dot,
    Star,
    LParen,
    RParen,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
}

impl Token {
    /// Case-insensitive keyword check.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Word(w) => write!(f, "{w}"),
            Token::StringLit(s) => write!(f, "'{s}'"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
            Token::Semicolon => write!(f, ";"),
        }
    }
}

/// Tokenize a statement. Returns a message describing the first bad byte
/// on failure.
pub fn tokenize(input: &str) -> Result<Vec<Token>, String> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(format!("unexpected '!' at byte {i}"));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::LtEq);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::GtEq);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] as char != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(format!("unterminated string starting at byte {i}"));
                }
                out.push(Token::StringLit(input[start..j].to_string()));
                i = j + 1;
            }
            '0'..='9' | '-' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || bytes[i] == b'.' || bytes[i] == b'e')
                {
                    i += 1;
                }
                let text = &input[start..i];
                let n: f64 = text
                    .parse()
                    .map_err(|_| format!("bad number literal {text:?}"))?;
                out.push(Token::Number(n));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token::Word(input[start..i].to_string()));
            }
            _ => return Err(format!("unexpected character {c:?} at byte {i}")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_basic_select() {
        let toks = tokenize("SELECT upflux, downflux FROM CDR WHERE ts='201601221530';").unwrap();
        assert_eq!(toks[0], Token::Word("SELECT".into()));
        assert!(toks[0].is_kw("select"));
        assert_eq!(toks[2], Token::Comma);
        assert!(toks.contains(&Token::Eq));
        assert!(toks.contains(&Token::StringLit("201601221530".into())));
        assert_eq!(*toks.last().unwrap(), Token::Semicolon);
    }

    #[test]
    fn operators_and_numbers() {
        let toks = tokenize("x >= 10.5 AND y <= -3 OR z != 0 AND w <> 1").unwrap();
        assert!(toks.contains(&Token::GtEq));
        assert!(toks.contains(&Token::LtEq));
        assert_eq!(
            toks.iter().filter(|t| **t == Token::NotEq).count(),
            2,
            "both != and <> lex to NotEq"
        );
        assert!(toks.contains(&Token::Number(10.5)));
        assert!(toks.contains(&Token::Number(-3.0)));
    }

    #[test]
    fn qualified_names_and_star() {
        let toks = tokenize("SELECT a.caller_id, COUNT(*) FROM CDR a").unwrap();
        assert_eq!(toks[1], Token::Word("a".into()));
        assert_eq!(toks[2], Token::Dot);
        assert!(toks.contains(&Token::Star));
        assert!(toks.contains(&Token::LParen));
    }

    #[test]
    fn error_cases() {
        assert!(tokenize("SELECT 'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("price €5").is_err());
    }

    #[test]
    fn empty_input() {
        assert_eq!(tokenize("").unwrap(), vec![]);
        assert_eq!(tokenize("   \n\t ").unwrap(), vec![]);
    }
}
