//! SQL abstract syntax.

/// A (possibly qualified) column reference.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnRef {
    /// Table alias qualifier, e.g. `a` in `a.caller_id`.
    pub qualifier: Option<String>,
    pub name: String,
}

/// Scalar expressions usable in WHERE.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Column(ColumnRef),
    StringLit(String),
    Number(f64),
    /// Binary comparison.
    Compare {
        left: Box<Expr>,
        op: CompareOp,
        right: Box<Expr>,
    },
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    /// `expr IN (SELECT …)` (uncorrelated subquery) — `negated` for NOT IN.
    InSubquery {
        expr: Box<Expr>,
        subquery: Box<SelectStatement>,
        negated: bool,
    },
    /// `expr IN (v1, v2, …)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr BETWEEN low AND high` (inclusive).
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `expr LIKE 'pattern'` with `%` (any run) and `_` (one char).
    Like {
        expr: Box<Expr>,
        pattern: String,
        negated: bool,
    },
    /// Aggregate call usable in HAVING, e.g. `SUM(call_drops) > 5`.
    AggregateCall {
        func: AggFunc,
        column: Option<ColumnRef>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// Plain column, with optional alias.
    Column(ColumnRef, Option<String>),
    /// Aggregate over a column, or `COUNT(*)` when `column` is `None`.
    Aggregate {
        func: AggFunc,
        column: Option<ColumnRef>,
        alias: Option<String>,
    },
}

/// One FROM entry: table name plus optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table binds in the query's namespace.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// Sort key: 1-based output column position or named column.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderKey {
    Position(usize),
    Column(ColumnRef),
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderBy {
    pub key: OrderKey,
    pub descending: bool,
}

/// A top-level statement: a SELECT, optionally wrapped in
/// `EXPLAIN ANALYZE` (execute the query under per-query cost accounting
/// and return the resulting [`obs::CostProfile`] as rows instead of the
/// query's own result).
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    pub explain_analyze: bool,
    pub select: SelectStatement,
}

/// A full SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// `SELECT DISTINCT`: deduplicate output rows.
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub predicate: Option<Expr>,
    pub group_by: Vec<ColumnRef>,
    /// Post-aggregation filter (may reference aggregate calls).
    pub having: Option<Expr>,
    pub order_by: Vec<OrderBy>,
    pub limit: Option<usize>,
}

impl SelectStatement {
    /// Does the select list contain any aggregate?
    pub fn has_aggregates(&self) -> bool {
        self.items
            .iter()
            .any(|i| matches!(i, SelectItem::Aggregate { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_func_names_round_trip() {
        for f in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ] {
            assert_eq!(AggFunc::from_name(f.name()), Some(f));
            assert_eq!(AggFunc::from_name(&f.name().to_lowercase()), Some(f));
        }
        assert_eq!(AggFunc::from_name("MEDIAN"), None);
    }

    #[test]
    fn table_ref_binding_prefers_alias() {
        let t = TableRef {
            table: "CDR".into(),
            alias: Some("a".into()),
        };
        assert_eq!(t.binding(), "a");
        let t = TableRef {
            table: "NMS".into(),
            alias: None,
        };
        assert_eq!(t.binding(), "NMS");
    }
}
