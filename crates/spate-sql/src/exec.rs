//! SQL execution over an exploration framework.
//!
//! The pipeline is the textbook one: FROM (hash join where an equi-join
//! conjunct exists, nested-loop product otherwise) → WHERE → GROUP BY /
//! aggregate → ORDER BY → LIMIT → projection. Tables materialize from the
//! bound framework's storage: `CDR`/`NMS` from the context window's
//! snapshots, `CELL` from the static layout.

use crate::ast::*;
use spate_core::framework::ExplorationFramework;
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::fmt;
use telco_trace::record::Value;
use telco_trace::schema::{Schema, TableKind};
use telco_trace::time::EpochId;

/// Errors from parsing or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    Parse(String),
    UnknownTable(String),
    UnknownColumn(String),
    AmbiguousColumn(String),
    Unsupported(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            SqlError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            SqlError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            SqlError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// A query result: column names and rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Render as an aligned text table (the Hue-style console view).
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::as_text).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                out.push_str(c);
                out.extend(std::iter::repeat_n(' ', w - c.len()));
            }
            out.push('\n');
        };
        fmt_row(&self.columns.to_vec(), &widths, &mut out);
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 3 * (widths.len().max(1) - 1)));
        out.push('\n');
        for row in &rendered {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

/// Execution context: a framework plus the temporal window queries run
/// over (SPATE-SQL sessions are always scoped to an exploration window).
pub struct SqlContext<'a> {
    fw: &'a dyn ExplorationFramework,
    window: (EpochId, EpochId),
}

impl<'a> SqlContext<'a> {
    pub fn new(fw: &'a dyn ExplorationFramework, start: EpochId, end: EpochId) -> Self {
        assert!(start <= end);
        Self {
            fw,
            window: (start, end),
        }
    }

    /// Convenience: parse + execute.
    pub fn query(&self, sql: &str) -> Result<ResultSet, SqlError> {
        crate::query(self, sql)
    }

    fn table(&self, name: &str) -> Result<(Schema, Vec<Vec<Value>>), SqlError> {
        let kind =
            TableKind::from_name(name).ok_or_else(|| SqlError::UnknownTable(name.to_string()))?;
        let schema = Schema::for_kind(kind);
        let rows: Vec<Vec<Value>> = match kind {
            TableKind::Cdr => self
                .fw
                .scan(self.window.0, self.window.1)
                .into_iter()
                .flat_map(|s| s.cdr.into_iter().map(|r| r.values))
                .collect(),
            TableKind::Nms => self
                .fw
                .scan(self.window.0, self.window.1)
                .into_iter()
                .flat_map(|s| s.nms.into_iter().map(|r| r.values))
                .collect(),
            TableKind::Cell => self
                .fw
                .layout()
                .to_records()
                .into_iter()
                .map(|r| r.values)
                .collect(),
        };
        // Every materialized base-table row is a scanned row in the
        // active cost profile (no-op outside EXPLAIN ANALYZE / serve).
        obs::cost::add_rows(rows.len() as u64, 0);
        Ok((schema, rows))
    }
}

/// Render a [`obs::CostProfile`] as a two-column result set — the output
/// shape of `EXPLAIN ANALYZE`.
pub fn profile_result_set(profile: &obs::CostProfile) -> ResultSet {
    ResultSet {
        columns: vec!["metric".to_string(), "value".to_string()],
        rows: profile
            .rows()
            .into_iter()
            .map(|(metric, value)| vec![Value::Str(metric), Value::Str(value)])
            .collect(),
    }
}

/// One bound table in the FROM namespace.
struct Binding {
    name: String,
    schema: Schema,
    offset: usize,
}

struct Namespace {
    bindings: Vec<Binding>,
    width: usize,
}

impl Namespace {
    fn resolve(&self, col: &ColumnRef) -> Result<usize, SqlError> {
        let mut found = None;
        for b in &self.bindings {
            if let Some(q) = &col.qualifier {
                if !b.name.eq_ignore_ascii_case(q) {
                    continue;
                }
            }
            if let Some(i) = b.schema.column_index(&col.name) {
                if found.is_some() {
                    return Err(SqlError::AmbiguousColumn(col.name.clone()));
                }
                found = Some(b.offset + i);
            }
        }
        found.ok_or_else(|| {
            SqlError::UnknownColumn(match &col.qualifier {
                Some(q) => format!("{q}.{}", col.name),
                None => col.name.clone(),
            })
        })
    }

    /// All column names, qualified when more than one table is bound.
    fn all_columns(&self) -> Vec<String> {
        let qualify = self.bindings.len() > 1;
        let mut out = Vec::with_capacity(self.width);
        for b in &self.bindings {
            for c in &b.schema.columns {
                if qualify {
                    out.push(format!("{}.{}", b.name, c.name));
                } else {
                    out.push(c.name.clone());
                }
            }
        }
        out
    }
}

/// Execute a parsed statement.
pub fn execute(ctx: &SqlContext<'_>, stmt: &SelectStatement) -> Result<ResultSet, SqlError> {
    // Bind FROM tables.
    if stmt.from.is_empty() {
        return Err(SqlError::Unsupported("FROM is required".into()));
    }
    let mut bindings = Vec::new();
    let mut tables = Vec::new();
    let mut offset = 0;
    for t in &stmt.from {
        let (schema, rows) = ctx.table(&t.table)?;
        let width = schema.width();
        bindings.push(Binding {
            name: t.binding().to_string(),
            schema,
            offset,
        });
        offset += width;
        tables.push(rows);
    }
    let ns = Namespace {
        bindings,
        width: offset,
    };

    // Pre-evaluate uncorrelated subqueries into value sets.
    let mut sub_sets: Vec<HashSet<String>> = Vec::new();
    let predicate = match &stmt.predicate {
        Some(p) => Some(lower_subqueries(ctx, p, &mut sub_sets)?),
        None => None,
    };

    // Join the FROM tables left-to-right.
    let mut rows = join_tables(&ns, tables, predicate.as_ref())?;

    // WHERE.
    if let Some(pred) = &predicate {
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            if eval_bool(pred, &row, &ns, &sub_sets)? {
                kept.push(row);
            }
        }
        rows = kept;
    }

    // Projection / aggregation.
    let (columns, mut out_rows) = if stmt.has_aggregates() || !stmt.group_by.is_empty() {
        aggregate(stmt, &ns, &rows)?
    } else {
        project(stmt, &ns, rows)?
    };

    // DISTINCT: keep the first occurrence of each row (on text form, the
    // same equality SQL comparisons use).
    if stmt.distinct {
        let mut seen = HashSet::new();
        out_rows.retain(|row| {
            let key: Vec<String> = row.iter().map(Value::as_text).collect();
            seen.insert(key)
        });
    }

    // ORDER BY.
    for ob in stmt.order_by.iter().rev() {
        let idx = match &ob.key {
            OrderKey::Position(p) => {
                if *p == 0 || *p > columns.len() {
                    return Err(SqlError::Unsupported(format!("ORDER BY position {p}")));
                }
                p - 1
            }
            OrderKey::Column(c) => {
                let target = &c.name;
                columns
                    .iter()
                    .position(|name| name.eq_ignore_ascii_case(target))
                    .ok_or_else(|| SqlError::UnknownColumn(target.clone()))?
            }
        };
        out_rows.sort_by(|a, b| {
            let ord = compare_values(&a[idx], &b[idx]);
            if ob.descending {
                ord.reverse()
            } else {
                ord
            }
        });
    }

    if let Some(limit) = stmt.limit {
        out_rows.truncate(limit);
    }

    obs::cost::add_rows(0, out_rows.len() as u64);
    Ok(ResultSet {
        columns,
        rows: out_rows,
    })
}

/// Replace `InSubquery` nodes with `InList`-like references into
/// `sub_sets` (encoded as a sentinel `InList` whose list holds the set
/// index). Subqueries must be uncorrelated: they execute once, here.
fn lower_subqueries(
    ctx: &SqlContext<'_>,
    expr: &Expr,
    sub_sets: &mut Vec<HashSet<String>>,
) -> Result<Expr, SqlError> {
    Ok(match expr {
        Expr::InSubquery {
            expr: e,
            subquery,
            negated,
        } => {
            let result = execute(ctx, subquery)?;
            if result.columns.len() != 1 {
                return Err(SqlError::Unsupported(
                    "IN subquery must select exactly one column".into(),
                ));
            }
            let set: HashSet<String> = result.rows.iter().map(|r| r[0].as_text()).collect();
            sub_sets.push(set);
            // Sentinel shape recognized by `subquery_set_index`: a tag
            // string that no user literal can produce (embedded NUL), plus
            // the set index.
            Expr::InList {
                expr: e.clone(),
                list: vec![
                    Expr::StringLit("\u{0}subquery".into()),
                    Expr::Number(sub_sets.len() as f64 - 1.0),
                ],
                negated: *negated,
            }
        }
        Expr::And(l, r) => Expr::And(
            Box::new(lower_subqueries(ctx, l, sub_sets)?),
            Box::new(lower_subqueries(ctx, r, sub_sets)?),
        ),
        Expr::Or(l, r) => Expr::Or(
            Box::new(lower_subqueries(ctx, l, sub_sets)?),
            Box::new(lower_subqueries(ctx, r, sub_sets)?),
        ),
        Expr::Not(e) => Expr::Not(Box::new(lower_subqueries(ctx, e, sub_sets)?)),
        other => other.clone(),
    })
}

/// Is this `InList` a lowered subquery sentinel (see `lower_subqueries`)?
fn subquery_set_index(list: &[Expr]) -> Option<usize> {
    if list.len() == 2 {
        if let (Expr::StringLit(tag), Expr::Number(idx)) = (&list[0], &list[1]) {
            if tag == "\u{0}subquery" {
                return Some(*idx as usize);
            }
        }
    }
    None
}

fn join_tables(
    ns: &Namespace,
    tables: Vec<Vec<Vec<Value>>>,
    predicate: Option<&Expr>,
) -> Result<Vec<Vec<Value>>, SqlError> {
    let mut iter = tables.into_iter();
    let first = iter.next().expect("at least one table");
    let mut acc: Vec<Vec<Value>> = first;
    let mut bound_width = ns.bindings[0].schema.width();

    for (ti, next) in iter.enumerate() {
        let b = &ns.bindings[ti + 1];
        // Find an equi-join conjunct: bound_col = new_col.
        let join_key = predicate.and_then(|p| {
            find_equi_join(p, ns, bound_width, b.offset, b.offset + b.schema.width())
        });
        let next_width = b.schema.width();
        acc = match join_key {
            Some((left_idx, right_idx)) => {
                // Hash join: build on the new table.
                let mut built: HashMap<String, Vec<&Vec<Value>>> = HashMap::new();
                for row in &next {
                    built
                        .entry(row[right_idx - b.offset].as_text())
                        .or_default()
                        .push(row);
                }
                let mut out = Vec::new();
                for left in &acc {
                    if let Some(matches) = built.get(&left[left_idx].as_text()) {
                        for m in matches {
                            let mut combined = left.clone();
                            combined.extend((*m).iter().cloned());
                            out.push(combined);
                        }
                    }
                }
                out
            }
            None => {
                // Nested-loop product; WHERE filters afterwards.
                let mut out = Vec::with_capacity(acc.len() * next.len().max(1));
                for left in &acc {
                    for right in &next {
                        let mut combined = left.clone();
                        combined.extend(right.iter().cloned());
                        out.push(combined);
                    }
                }
                out
            }
        };
        bound_width += next_width;
    }
    Ok(acc)
}

/// Search the conjunctive top level of `pred` for `col_a = col_b` linking
/// the bound prefix (`< bound_width`) with the incoming table
/// (`new_start..new_end`). Returns (bound index, incoming index).
fn find_equi_join(
    pred: &Expr,
    ns: &Namespace,
    bound_width: usize,
    new_start: usize,
    new_end: usize,
) -> Option<(usize, usize)> {
    match pred {
        Expr::And(l, r) => find_equi_join(l, ns, bound_width, new_start, new_end)
            .or_else(|| find_equi_join(r, ns, bound_width, new_start, new_end)),
        Expr::Compare {
            left,
            op: CompareOp::Eq,
            right,
        } => {
            let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) else {
                return None;
            };
            let ia = ns.resolve(a).ok()?;
            let ib = ns.resolve(b).ok()?;
            if ia < bound_width && (new_start..new_end).contains(&ib) {
                Some((ia, ib))
            } else if ib < bound_width && (new_start..new_end).contains(&ia) {
                Some((ib, ia))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// SQL value comparison: numeric when both sides are numeric, else text.
pub fn compare_values(a: &Value, b: &Value) -> Ordering {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
        _ => a.as_text().cmp(&b.as_text()),
    }
}

fn eval_value(expr: &Expr, row: &[Value], ns: &Namespace) -> Result<Value, SqlError> {
    Ok(match expr {
        Expr::Column(c) => row[ns.resolve(c)?].clone(),
        Expr::StringLit(s) => Value::Str(s.clone()),
        Expr::Number(n) => Value::Float(*n),
        other => {
            return Err(SqlError::Unsupported(format!(
                "expression used as value: {other:?}"
            )))
        }
    })
}

fn eval_bool(
    expr: &Expr,
    row: &[Value],
    ns: &Namespace,
    sub_sets: &[HashSet<String>],
) -> Result<bool, SqlError> {
    Ok(match expr {
        Expr::And(l, r) => eval_bool(l, row, ns, sub_sets)? && eval_bool(r, row, ns, sub_sets)?,
        Expr::Or(l, r) => eval_bool(l, row, ns, sub_sets)? || eval_bool(r, row, ns, sub_sets)?,
        Expr::Not(e) => !eval_bool(e, row, ns, sub_sets)?,
        Expr::Compare { left, op, right } => {
            let a = eval_value(left, row, ns)?;
            let b = eval_value(right, row, ns)?;
            let ord = compare_values(&a, &b);
            match op {
                CompareOp::Eq => ord == Ordering::Equal,
                CompareOp::NotEq => ord != Ordering::Equal,
                CompareOp::Lt => ord == Ordering::Less,
                CompareOp::LtEq => ord != Ordering::Greater,
                CompareOp::Gt => ord == Ordering::Greater,
                CompareOp::GtEq => ord != Ordering::Less,
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_value(expr, row, ns)?;
            let contained = if let Some(set_idx) = subquery_set_index(list) {
                sub_sets[set_idx].contains(&v.as_text())
            } else {
                let mut hit = false;
                for item in list {
                    let w = eval_value(item, row, ns)?;
                    if compare_values(&v, &w) == Ordering::Equal {
                        hit = true;
                        break;
                    }
                }
                hit
            };
            contained != *negated
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_value(expr, row, ns)?;
            let lo = eval_value(low, row, ns)?;
            let hi = eval_value(high, row, ns)?;
            let inside = compare_values(&v, &lo) != Ordering::Less
                && compare_values(&v, &hi) != Ordering::Greater;
            inside != *negated
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_value(expr, row, ns)?;
            like_match(&v.as_text(), pattern) != *negated
        }
        Expr::AggregateCall { .. } => {
            return Err(SqlError::Unsupported(
                "aggregate call outside HAVING".into(),
            ))
        }
        Expr::InSubquery { .. } => {
            return Err(SqlError::Unsupported(
                "subquery not lowered before evaluation".into(),
            ))
        }
        Expr::Column(_) | Expr::StringLit(_) | Expr::Number(_) => {
            return Err(SqlError::Unsupported(
                "scalar used as boolean predicate".into(),
            ))
        }
    })
}

/// SQL LIKE: `%` matches any run (including empty), `_` one character.
/// Case-sensitive, iterative two-pointer matcher (no backtracking blowup).
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut ti, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_t) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star_p = pi;
            star_t = ti;
            pi += 1;
        } else if star_p != usize::MAX {
            // Backtrack: let the last % absorb one more character.
            pi = star_p + 1;
            star_t += 1;
            ti = star_t;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

fn project(
    stmt: &SelectStatement,
    ns: &Namespace,
    rows: Vec<Vec<Value>>,
) -> Result<(Vec<String>, Vec<Vec<Value>>), SqlError> {
    // Column selection plan: output name + source index.
    let mut names = Vec::new();
    let mut indices = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                names.extend(ns.all_columns());
                indices.extend(0..ns.width);
            }
            SelectItem::Column(c, alias) => {
                indices.push(ns.resolve(c)?);
                names.push(alias.clone().unwrap_or_else(|| c.name.clone()));
            }
            SelectItem::Aggregate { .. } => unreachable!("aggregate path handles these"),
        }
    }
    let out_rows = rows
        .into_iter()
        .map(|row| indices.iter().map(|&i| row[i].clone()).collect())
        .collect();
    Ok((names, out_rows))
}

/// GROUP BY + aggregate evaluation.
fn aggregate(
    stmt: &SelectStatement,
    ns: &Namespace,
    rows: &[Vec<Value>],
) -> Result<(Vec<String>, Vec<Vec<Value>>), SqlError> {
    let group_indices: Vec<usize> = stmt
        .group_by
        .iter()
        .map(|c| ns.resolve(c))
        .collect::<Result<_, _>>()?;

    // Validate select list: plain columns must appear in GROUP BY.
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                return Err(SqlError::Unsupported("SELECT * with aggregates".into()))
            }
            SelectItem::Column(c, _) => {
                let idx = ns.resolve(c)?;
                if !group_indices.contains(&idx) {
                    return Err(SqlError::Unsupported(format!(
                        "column {} must appear in GROUP BY",
                        c.name
                    )));
                }
            }
            SelectItem::Aggregate { .. } => {}
        }
    }

    // Group rows.
    let mut groups: HashMap<Vec<String>, Vec<&Vec<Value>>> = HashMap::new();
    for row in rows {
        let key: Vec<String> = group_indices.iter().map(|&i| row[i].as_text()).collect();
        groups.entry(key).or_default().push(row);
    }
    if groups.is_empty() && group_indices.is_empty() {
        // Aggregates over an empty set still yield one row.
        groups.insert(vec![], vec![]);
    }

    let mut names = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Column(c, alias) => {
                names.push(alias.clone().unwrap_or_else(|| c.name.clone()))
            }
            SelectItem::Aggregate {
                func,
                column,
                alias,
            } => names.push(alias.clone().unwrap_or_else(|| {
                format!(
                    "{}({})",
                    func.name(),
                    column.as_ref().map(|c| c.name.as_str()).unwrap_or("*")
                )
            })),
            SelectItem::Wildcard => unreachable!(),
        }
    }

    let mut out_rows = Vec::with_capacity(groups.len());
    // Deterministic output order before ORDER BY: sort group keys.
    let mut entries: Vec<_> = groups.into_iter().collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    for (_key, members) in entries {
        if let Some(having) = &stmt.having {
            if !eval_having(having, &members, ns)? {
                continue;
            }
        }
        let mut out = Vec::with_capacity(stmt.items.len());
        for item in &stmt.items {
            match item {
                SelectItem::Column(c, _) => {
                    let idx = ns.resolve(c)?;
                    out.push(
                        members
                            .first()
                            .map(|r| r[idx].clone())
                            .unwrap_or(Value::Null),
                    );
                }
                SelectItem::Aggregate { func, column, .. } => {
                    out.push(eval_aggregate(*func, column.as_ref(), &members, ns)?);
                }
                SelectItem::Wildcard => unreachable!(),
            }
        }
        out_rows.push(out);
    }
    Ok((names, out_rows))
}

/// Evaluate a HAVING predicate over one group. Aggregate calls evaluate
/// over the group's members; plain columns take the group's first row
/// (legal only for GROUP BY columns, which are constant per group).
fn eval_having(expr: &Expr, members: &[&Vec<Value>], ns: &Namespace) -> Result<bool, SqlError> {
    // Scalar view of a HAVING operand.
    fn value(expr: &Expr, members: &[&Vec<Value>], ns: &Namespace) -> Result<Value, SqlError> {
        match expr {
            Expr::AggregateCall { func, column } => {
                eval_aggregate(*func, column.as_ref(), members, ns)
            }
            Expr::Column(c) => {
                let idx = ns.resolve(c)?;
                Ok(members
                    .first()
                    .map(|r| r[idx].clone())
                    .unwrap_or(Value::Null))
            }
            Expr::StringLit(s) => Ok(Value::Str(s.clone())),
            Expr::Number(n) => Ok(Value::Float(*n)),
            other => Err(SqlError::Unsupported(format!(
                "expression in HAVING: {other:?}"
            ))),
        }
    }
    Ok(match expr {
        Expr::And(l, r) => eval_having(l, members, ns)? && eval_having(r, members, ns)?,
        Expr::Or(l, r) => eval_having(l, members, ns)? || eval_having(r, members, ns)?,
        Expr::Not(e) => !eval_having(e, members, ns)?,
        Expr::Compare { left, op, right } => {
            let a = value(left, members, ns)?;
            let b = value(right, members, ns)?;
            let ord = compare_values(&a, &b);
            match op {
                CompareOp::Eq => ord == Ordering::Equal,
                CompareOp::NotEq => ord != Ordering::Equal,
                CompareOp::Lt => ord == Ordering::Less,
                CompareOp::LtEq => ord != Ordering::Greater,
                CompareOp::Gt => ord == Ordering::Greater,
                CompareOp::GtEq => ord != Ordering::Less,
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = value(expr, members, ns)?;
            let lo = value(low, members, ns)?;
            let hi = value(high, members, ns)?;
            let inside = compare_values(&v, &lo) != Ordering::Less
                && compare_values(&v, &hi) != Ordering::Greater;
            inside != *negated
        }
        other => return Err(SqlError::Unsupported(format!("HAVING clause: {other:?}"))),
    })
}

fn eval_aggregate(
    func: AggFunc,
    column: Option<&ColumnRef>,
    members: &[&Vec<Value>],
    ns: &Namespace,
) -> Result<Value, SqlError> {
    if func == AggFunc::Count && column.is_none() {
        return Ok(Value::Int(members.len() as i64));
    }
    let idx = ns.resolve(column.expect("non-COUNT aggregates have a column"))?;
    let values: Vec<&Value> = members
        .iter()
        .map(|r| &r[idx])
        .filter(|v| !v.is_null())
        .collect();
    Ok(match func {
        AggFunc::Count => Value::Int(values.len() as i64),
        AggFunc::Sum => Value::Float(values.iter().filter_map(|v| v.as_f64()).sum()),
        AggFunc::Avg => {
            let nums: Vec<f64> = values.iter().filter_map(|v| v.as_f64()).collect();
            if nums.is_empty() {
                Value::Null
            } else {
                Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
        AggFunc::Min => values
            .iter()
            .min_by(|a, b| compare_values(a, b))
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null),
        AggFunc::Max => values
            .iter()
            .max_by(|a, b| compare_values(a, b))
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null),
    })
}
