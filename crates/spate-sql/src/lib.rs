//! SPATE-SQL: the declarative data exploration interface.
//!
//! "The SPATE-SQL interface allows expert users and data scientists to
//! explore the collected data through declarative SQL. The current
//! configuration currently allows all basic SELECT-FROM-WHERE block
//! queries, nested queries, joins, aggregates, etc. directly through the
//! compressed storage representation of the SPATE structure" (§VI-B).
//!
//! The dialect:
//!
//! ```sql
//! SELECT upflux, downflux FROM CDR WHERE ts_start = '201601221530';
//! SELECT cellid, SUM(call_drops) FROM NMS GROUP BY cellid
//!   HAVING SUM(call_drops) > 3 ORDER BY 2 DESC LIMIT 10;
//! SELECT a.caller_id FROM CDR a, CDR b
//!   WHERE a.caller_id = b.caller_id AND a.cell_id != b.cell_id;
//! SELECT cell_id FROM CELL WHERE cell_id IN (SELECT cell_id FROM NMS WHERE call_drops > 5);
//! SELECT DISTINCT call_type FROM CDR
//!   WHERE duration_s BETWEEN 60 AND 300 AND tech LIKE '_G';
//! ```
//!
//! Queries execute against an [`SqlContext`] bound to any
//! [`spate_core::framework::ExplorationFramework`], so the same statement
//! runs over RAW, SHAHED or SPATE storage — which is exactly how the
//! paper's task queries T1–T4 are phrased.

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use ast::{Expr, SelectItem, SelectStatement, Statement};
pub use exec::{ResultSet, SqlContext, SqlError};

/// Parse and execute one SQL statement in a context.
///
/// `EXPLAIN ANALYZE <select>` executes the SELECT under per-query cost
/// accounting and returns the collected [`obs::CostProfile`] as a
/// two-column `(metric, value)` result set instead of the query's rows.
pub fn query(ctx: &SqlContext<'_>, sql: &str) -> Result<ResultSet, SqlError> {
    let stmt = parser::parse_statement(sql).map_err(SqlError::Parse)?;
    if stmt.explain_analyze {
        return Ok(exec::profile_result_set(
            &query_profiled(ctx, &stmt.select)?.1,
        ));
    }
    exec::execute(ctx, &stmt.select)
}

/// Execute a parsed SELECT under cost accounting, returning both the
/// result and its [`obs::CostProfile`]. This is what `EXPLAIN ANALYZE`
/// uses; the serving tier calls it directly so it can return the rows to
/// the client *and* retain the profile for the Profile control frame.
pub fn query_profiled(
    ctx: &SqlContext<'_>,
    stmt: &SelectStatement,
) -> Result<(ResultSet, obs::CostProfile), SqlError> {
    let guard = obs::cost::begin(obs::trace::current().unwrap_or(0));
    let result = exec::execute(ctx, stmt);
    let profile = guard.finish();
    result.map(|rs| (rs, profile))
}

/// One-call entry point for embedders (the serving tier, notebooks):
/// bind a framework and a window, parse, execute. Equivalent to building
/// an [`SqlContext`] by hand, without the borrow gymnastics at call
/// sites that only run a single statement.
pub fn execute_over(
    fw: &dyn spate_core::framework::ExplorationFramework,
    start: telco_trace::time::EpochId,
    end: telco_trace::time::EpochId,
    sql: &str,
) -> Result<ResultSet, SqlError> {
    SqlContext::new(fw, start, end).query(sql)
}
