//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::lexer::{tokenize, Token};

/// Parse one SELECT statement (optionally `;`-terminated). Rejects
/// `EXPLAIN ANALYZE` — use [`parse_statement`] at entry points that
/// support it.
pub fn parse(sql: &str) -> Result<SelectStatement, String> {
    let stmt = parse_statement(sql)?;
    if stmt.explain_analyze {
        return Err("EXPLAIN ANALYZE is not valid here (nested statement)".into());
    }
    Ok(stmt.select)
}

/// Parse one top-level statement: `[EXPLAIN ANALYZE] SELECT …`.
pub fn parse_statement(sql: &str) -> Result<Statement, String> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let explain_analyze = if p.peek_kw("EXPLAIN") {
        p.pos += 1;
        p.expect_kw("ANALYZE")?;
        true
    } else {
        false
    };
    let select = p.select_statement()?;
    if p.peek().is_some_and(|t| *t == Token::Semicolon) {
        p.pos += 1;
    }
    if let Some(t) = p.peek() {
        return Err(format!("trailing input at token {t}"));
    }
    Ok(Statement {
        explain_analyze,
        select,
    })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), String> {
        match self.next() {
            Some(t) if t.is_kw(kw) => Ok(()),
            Some(t) => Err(format!("expected {kw}, found {t}")),
            None => Err(format!("expected {kw}, found end of input")),
        }
    }

    fn expect(&mut self, want: Token) -> Result<(), String> {
        match self.next() {
            Some(t) if t == want => Ok(()),
            Some(t) => Err(format!("expected {want}, found {t}")),
            None => Err(format!("expected {want}, found end of input")),
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn take_word(&mut self) -> Result<String, String> {
        match self.next() {
            Some(Token::Word(w)) => Ok(w),
            Some(t) => Err(format!("expected identifier, found {t}")),
            None => Err("expected identifier, found end of input".into()),
        }
    }

    fn select_statement(&mut self) -> Result<SelectStatement, String> {
        self.expect_kw("SELECT")?;
        let distinct = if self.peek_kw("DISTINCT") {
            self.pos += 1;
            true
        } else {
            false
        };
        let items = self.select_list()?;
        self.expect_kw("FROM")?;
        let from = self.table_list()?;
        let predicate = if self.peek_kw("WHERE") {
            self.pos += 1;
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.peek_kw("GROUP") {
            self.pos += 1;
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.column_ref()?);
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        let having = if self.peek_kw("HAVING") {
            self.pos += 1;
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.peek_kw("ORDER") {
            self.pos += 1;
            self.expect_kw("BY")?;
            loop {
                let key = match self.peek() {
                    Some(Token::Number(n)) => {
                        let n = *n;
                        self.pos += 1;
                        if n < 1.0 || n.fract() != 0.0 {
                            return Err(format!("bad ORDER BY position {n}"));
                        }
                        OrderKey::Position(n as usize)
                    }
                    _ => OrderKey::Column(self.column_ref()?),
                };
                let descending = if self.peek_kw("DESC") {
                    self.pos += 1;
                    true
                } else {
                    if self.peek_kw("ASC") {
                        self.pos += 1;
                    }
                    false
                };
                order_by.push(OrderBy { key, descending });
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        let limit = if self.peek_kw("LIMIT") {
            self.pos += 1;
            match self.next() {
                Some(Token::Number(n)) if n >= 0.0 && n.fract() == 0.0 => Some(n as usize),
                other => return Err(format!("bad LIMIT {other:?}")),
            }
        } else {
            None
        };
        Ok(SelectStatement {
            distinct,
            items,
            from,
            predicate,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>, String> {
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if self.peek() == Some(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(items)
    }

    fn alias_opt(&mut self) -> Result<Option<String>, String> {
        if self.peek_kw("AS") {
            self.pos += 1;
            return Ok(Some(self.take_word()?));
        }
        Ok(None)
    }

    fn select_item(&mut self) -> Result<SelectItem, String> {
        if self.peek() == Some(&Token::Star) {
            self.pos += 1;
            return Ok(SelectItem::Wildcard);
        }
        // Aggregate call?
        if let (Some(Token::Word(w)), Some(Token::LParen)) =
            (self.peek(), self.tokens.get(self.pos + 1))
        {
            if let Some(func) = AggFunc::from_name(w) {
                self.pos += 2;
                let column = if self.peek() == Some(&Token::Star) {
                    self.pos += 1;
                    None
                } else {
                    Some(self.column_ref()?)
                };
                self.expect(Token::RParen)?;
                if func != AggFunc::Count && column.is_none() {
                    return Err(format!("{}(*) is only valid for COUNT", func.name()));
                }
                let alias = self.alias_opt()?;
                return Ok(SelectItem::Aggregate {
                    func,
                    column,
                    alias,
                });
            }
        }
        let col = self.column_ref()?;
        let alias = self.alias_opt()?;
        Ok(SelectItem::Column(col, alias))
    }

    fn table_list(&mut self) -> Result<Vec<TableRef>, String> {
        let mut tables = Vec::new();
        loop {
            let table = self.take_word()?;
            // Optional alias: a bare word that is not a clause keyword.
            let alias = match self.peek() {
                Some(Token::Word(w))
                    if !["WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "AS"]
                        .iter()
                        .any(|k| w.eq_ignore_ascii_case(k)) =>
                {
                    let w = w.clone();
                    self.pos += 1;
                    Some(w)
                }
                Some(t) if t.is_kw("AS") => {
                    self.pos += 1;
                    Some(self.take_word()?)
                }
                _ => None,
            };
            tables.push(TableRef { table, alias });
            if self.peek() == Some(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(tables)
    }

    fn column_ref(&mut self) -> Result<ColumnRef, String> {
        let first = self.take_word()?;
        if self.peek() == Some(&Token::Dot) {
            self.pos += 1;
            let name = self.take_word()?;
            Ok(ColumnRef {
                qualifier: Some(first),
                name,
            })
        } else {
            Ok(ColumnRef {
                qualifier: None,
                name: first,
            })
        }
    }

    /// expr := and_expr (OR and_expr)*
    fn expr(&mut self) -> Result<Expr, String> {
        let mut left = self.and_expr()?;
        while self.peek_kw("OR") {
            self.pos += 1;
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    /// and_expr := unary_expr (AND unary_expr)*
    fn and_expr(&mut self) -> Result<Expr, String> {
        let mut left = self.unary_expr()?;
        while self.peek_kw("AND") {
            self.pos += 1;
            let right = self.unary_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, String> {
        if self.peek_kw("NOT") {
            self.pos += 1;
            return Ok(Expr::Not(Box::new(self.unary_expr()?)));
        }
        if self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            let inner = self.expr()?;
            self.expect(Token::RParen)?;
            return Ok(inner);
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, String> {
        let left = self.operand()?;
        // NOT BETWEEN / NOT LIKE / NOT IN
        if self.peek_kw("NOT") {
            let after = self.tokens.get(self.pos + 1);
            if after.is_some_and(|t| t.is_kw("BETWEEN")) {
                self.pos += 2;
                return self.between(left, true);
            }
            if after.is_some_and(|t| t.is_kw("LIKE")) {
                self.pos += 2;
                return self.like(left, true);
            }
        }
        if self.peek_kw("BETWEEN") {
            self.pos += 1;
            return self.between(left, false);
        }
        if self.peek_kw("LIKE") {
            self.pos += 1;
            return self.like(left, false);
        }
        // IN / NOT IN
        let negated = if self.peek_kw("NOT") {
            self.pos += 1;
            self.expect_kw("IN")?;
            true
        } else if self.peek_kw("IN") {
            self.pos += 1;
            false
        } else {
            let op = match self.next() {
                Some(Token::Eq) => CompareOp::Eq,
                Some(Token::NotEq) => CompareOp::NotEq,
                Some(Token::Lt) => CompareOp::Lt,
                Some(Token::LtEq) => CompareOp::LtEq,
                Some(Token::Gt) => CompareOp::Gt,
                Some(Token::GtEq) => CompareOp::GtEq,
                other => return Err(format!("expected comparison operator, found {other:?}")),
            };
            let right = self.operand()?;
            return Ok(Expr::Compare {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        };
        self.expect(Token::LParen)?;
        if self.peek_kw("SELECT") {
            let sub = self.select_statement()?;
            self.expect(Token::RParen)?;
            return Ok(Expr::InSubquery {
                expr: Box::new(left),
                subquery: Box::new(sub),
                negated,
            });
        }
        let mut list = Vec::new();
        loop {
            list.push(self.operand()?);
            if self.peek() == Some(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.expect(Token::RParen)?;
        Ok(Expr::InList {
            expr: Box::new(left),
            list,
            negated,
        })
    }

    fn between(&mut self, left: Expr, negated: bool) -> Result<Expr, String> {
        let low = self.operand()?;
        self.expect_kw("AND")?;
        let high = self.operand()?;
        Ok(Expr::Between {
            expr: Box::new(left),
            low: Box::new(low),
            high: Box::new(high),
            negated,
        })
    }

    fn like(&mut self, left: Expr, negated: bool) -> Result<Expr, String> {
        match self.next() {
            Some(Token::StringLit(pattern)) => Ok(Expr::Like {
                expr: Box::new(left),
                pattern,
                negated,
            }),
            other => Err(format!("LIKE expects a string pattern, found {other:?}")),
        }
    }

    fn operand(&mut self) -> Result<Expr, String> {
        // Aggregate call (legal in HAVING).
        if let (Some(Token::Word(w)), Some(Token::LParen)) =
            (self.peek(), self.tokens.get(self.pos + 1))
        {
            if let Some(func) = AggFunc::from_name(w) {
                self.pos += 2;
                let column = if self.peek() == Some(&Token::Star) {
                    self.pos += 1;
                    None
                } else {
                    Some(self.column_ref()?)
                };
                self.expect(Token::RParen)?;
                if func != AggFunc::Count && column.is_none() {
                    return Err(format!("{}(*) is only valid for COUNT", func.name()));
                }
                return Ok(Expr::AggregateCall { func, column });
            }
        }
        match self.peek().cloned() {
            Some(Token::StringLit(s)) => {
                self.pos += 1;
                Ok(Expr::StringLit(s))
            }
            Some(Token::Number(n)) => {
                self.pos += 1;
                Ok(Expr::Number(n))
            }
            Some(Token::Word(_)) => Ok(Expr::Column(self.column_ref()?)),
            other => Err(format!("expected operand, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_t1_equality() {
        let stmt =
            parse("SELECT upflux, downflux FROM CDR WHERE ts_start = '201601221530';").unwrap();
        assert_eq!(stmt.items.len(), 2);
        assert_eq!(stmt.from.len(), 1);
        assert_eq!(stmt.from[0].table, "CDR");
        assert!(matches!(
            stmt.predicate,
            Some(Expr::Compare {
                op: CompareOp::Eq,
                ..
            })
        ));
        assert!(!stmt.has_aggregates());
    }

    #[test]
    fn parses_t2_range() {
        let stmt = parse(
            "SELECT upflux, downflux FROM CDR WHERE ts_start >= '2015' AND ts_start <= '2016'",
        )
        .unwrap();
        assert!(matches!(stmt.predicate, Some(Expr::And(_, _))));
    }

    #[test]
    fn parses_t3_group_by_aggregate() {
        let stmt = parse(
            "SELECT cell_id, SUM(call_drops) AS drops FROM NMS GROUP BY cell_id ORDER BY 2 DESC LIMIT 5",
        )
        .unwrap();
        assert!(stmt.has_aggregates());
        assert_eq!(stmt.group_by.len(), 1);
        assert_eq!(stmt.order_by.len(), 1);
        assert!(stmt.order_by[0].descending);
        assert_eq!(stmt.order_by[0].key, OrderKey::Position(2));
        assert_eq!(stmt.limit, Some(5));
        match &stmt.items[1] {
            SelectItem::Aggregate { func, alias, .. } => {
                assert_eq!(*func, AggFunc::Sum);
                assert_eq!(alias.as_deref(), Some("drops"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_t4_self_join() {
        let stmt = parse(
            "SELECT a.caller_id FROM CDR a, CDR b \
             WHERE a.caller_id = b.caller_id AND a.cell_id != b.cell_id",
        )
        .unwrap();
        assert_eq!(stmt.from.len(), 2);
        assert_eq!(stmt.from[0].binding(), "a");
        assert_eq!(stmt.from[1].binding(), "b");
    }

    #[test]
    fn parses_nested_in_subquery() {
        let stmt = parse(
            "SELECT cell_id FROM CELL WHERE cell_id IN (SELECT cell_id FROM NMS WHERE call_drops > 3)",
        )
        .unwrap();
        assert!(matches!(
            stmt.predicate,
            Some(Expr::InSubquery { negated: false, .. })
        ));
        let stmt = parse("SELECT cell_id FROM CELL WHERE tech NOT IN ('2G', '3G')").unwrap();
        assert!(matches!(
            stmt.predicate,
            Some(Expr::InList { negated: true, .. })
        ));
    }

    #[test]
    fn parses_count_star_and_wildcard() {
        let stmt = parse("SELECT * FROM CELL").unwrap();
        assert_eq!(stmt.items, vec![SelectItem::Wildcard]);
        let stmt = parse("SELECT COUNT(*) FROM CDR").unwrap();
        assert!(matches!(
            stmt.items[0],
            SelectItem::Aggregate {
                func: AggFunc::Count,
                column: None,
                ..
            }
        ));
    }

    #[test]
    fn parentheses_and_not() {
        let stmt = parse("SELECT x FROM CDR WHERE NOT (a = 1 OR b = 2) AND c = 3").unwrap();
        match stmt.predicate.unwrap() {
            Expr::And(l, _) => assert!(matches!(*l, Expr::Not(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_statements() {
        assert!(parse("").is_err());
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT x FROM").is_err());
        assert!(parse("SELECT x FROM t WHERE").is_err());
        assert!(parse("SELECT x FROM t WHERE a = ").is_err());
        assert!(parse("SELECT SUM(*) FROM t").is_err());
        assert!(parse("SELECT x FROM t LIMIT -1").is_err());
        assert!(parse("SELECT x FROM t extra garbage !").is_err());
        assert!(parse("SELECT x FROM t ; leftovers").is_err());
    }

    #[test]
    fn case_insensitive_keywords() {
        let stmt = parse("select x from CDR where y > 5 order by x limit 3").unwrap();
        assert_eq!(stmt.limit, Some(3));
        assert_eq!(stmt.order_by.len(), 1);
    }
}
