//! End-to-end SQL tests over an ingested SPATE framework — including the
//! SQL phrasings of the paper's tasks T1–T4.

use spate_core::framework::{ExplorationFramework, SpateFramework};
use spate_sql::{query, SqlContext, SqlError};
use telco_trace::schema::{cdr, nms};
use telco_trace::time::EpochId;
use telco_trace::{Snapshot, TraceConfig, TraceGenerator};

fn setup(n_epochs: usize) -> (SpateFramework, Vec<Snapshot>) {
    let mut generator = TraceGenerator::new(TraceConfig::scaled(1.0 / 256.0));
    let layout = generator.layout().clone();
    let mut fw = SpateFramework::in_memory(layout);
    let snaps: Vec<Snapshot> = (&mut generator).take(n_epochs).collect();
    for s in &snaps {
        fw.ingest(s);
    }
    (fw, snaps)
}

#[test]
fn t1_equality_query() {
    let (fw, snaps) = setup(3);
    let ctx = SqlContext::new(&fw, EpochId(0), EpochId(2));
    let ts = EpochId(1).civil().compact();
    let rs = query(
        &ctx,
        &format!("SELECT upflux, downflux FROM CDR WHERE ts_start = '{ts}'"),
    )
    .unwrap();
    assert_eq!(rs.columns, vec!["upflux", "downflux"]);
    assert_eq!(rs.len(), snaps[1].cdr.len());
}

#[test]
fn t2_range_query() {
    let (fw, snaps) = setup(4);
    let ctx = SqlContext::new(&fw, EpochId(0), EpochId(3));
    let lo = EpochId(1).civil().compact();
    let hi = EpochId(2).civil().compact();
    let rs = query(
        &ctx,
        &format!(
            "SELECT upflux, downflux FROM CDR WHERE ts_start >= '{lo}' AND ts_start <= '{hi}'"
        ),
    )
    .unwrap();
    let expected: usize = snaps[1..=2].iter().map(|s| s.cdr.len()).sum();
    assert_eq!(rs.len(), expected);
}

#[test]
fn t3_group_by_aggregate() {
    let (fw, snaps) = setup(2);
    let ctx = SqlContext::new(&fw, EpochId(0), EpochId(1));
    let rs = query(
        &ctx,
        "SELECT cell_id, SUM(call_drops) AS drops FROM NMS GROUP BY cell_id",
    )
    .unwrap();
    assert_eq!(rs.columns, vec!["cell_id", "drops"]);
    // Total drops across groups equals a direct scan.
    let total: f64 = rs.rows.iter().filter_map(|r| r[1].as_f64()).sum();
    let direct: i64 = snaps
        .iter()
        .flat_map(|s| s.nms.iter())
        .filter_map(|r| r.get(nms::CALL_DROPS).as_i64())
        .sum();
    assert_eq!(total as i64, direct);
    // Distinct cells only.
    let mut cells: Vec<String> = rs.rows.iter().map(|r| r[0].as_text()).collect();
    cells.sort();
    cells.dedup();
    assert_eq!(cells.len(), rs.len());
}

#[test]
fn t4_self_join_detects_movers() {
    let (fw, _) = setup(16);
    let ctx = SqlContext::new(&fw, EpochId(10), EpochId(15));
    let rs = query(
        &ctx,
        "SELECT a.caller_id, a.cell_id, b.cell_id FROM CDR a, CDR b \
         WHERE a.caller_id = b.caller_id AND a.cell_id != b.cell_id",
    )
    .unwrap();
    for row in &rs.rows {
        assert_ne!(row[1].as_text(), row[2].as_text());
    }
    // Cross-check count against the task implementation (t4 counts ordered
    // epoch pairs; SQL's self-join counts ordered record pairs, so compare
    // only the "some movers exist" property plus symmetry).
    assert!(
        rs.len().is_multiple_of(2),
        "each mover pairs in both directions"
    );
}

#[test]
fn aggregates_without_group_by() {
    let (fw, snaps) = setup(2);
    let ctx = SqlContext::new(&fw, EpochId(0), EpochId(1));
    let rs = query(
        &ctx,
        "SELECT COUNT(*), MIN(duration_s), MAX(duration_s), AVG(duration_s) FROM CDR",
    )
    .unwrap();
    assert_eq!(rs.len(), 1);
    let total: usize = snaps.iter().map(|s| s.cdr.len()).sum();
    assert_eq!(rs.rows[0][0].as_i64(), Some(total as i64));
    let min = rs.rows[0][1].as_f64().unwrap();
    let max = rs.rows[0][2].as_f64().unwrap();
    let avg = rs.rows[0][3].as_f64().unwrap();
    assert!(min <= avg && avg <= max);
}

#[test]
fn order_by_and_limit() {
    let (fw, _) = setup(2);
    let ctx = SqlContext::new(&fw, EpochId(0), EpochId(1));
    let rs = query(
        &ctx,
        "SELECT record_id, duration_s FROM CDR ORDER BY duration_s DESC LIMIT 5",
    )
    .unwrap();
    assert!(rs.len() <= 5);
    let durations: Vec<f64> = rs.rows.iter().filter_map(|r| r[1].as_f64()).collect();
    assert!(durations.windows(2).all(|w| w[0] >= w[1]), "{durations:?}");
}

#[test]
fn wildcard_over_cell_inventory() {
    let (fw, _) = setup(1);
    let ctx = SqlContext::new(&fw, EpochId(0), EpochId(0));
    let rs = query(&ctx, "SELECT * FROM CELL").unwrap();
    assert_eq!(rs.columns.len(), 10);
    assert_eq!(rs.len(), fw.layout().len());
}

#[test]
fn in_subquery_nested_query() {
    let (fw, _) = setup(2);
    let ctx = SqlContext::new(&fw, EpochId(0), EpochId(1));
    // Cells that reported at least one dropped call.
    let dropped = query(
        &ctx,
        "SELECT cell_id FROM CELL WHERE cell_id IN (SELECT cell_id FROM NMS WHERE call_drops > 0)",
    )
    .unwrap();
    let direct = query(
        &ctx,
        "SELECT cell_id, SUM(call_drops) AS d FROM NMS GROUP BY cell_id",
    )
    .unwrap();
    let with_drops = direct
        .rows
        .iter()
        .filter(|r| r[1].as_f64().unwrap_or(0.0) > 0.0)
        .count();
    // Every cell with drops appears exactly once in the CELL scan.
    assert_eq!(dropped.len(), with_drops);
}

#[test]
fn in_list_and_not() {
    let (fw, _) = setup(1);
    let ctx = SqlContext::new(&fw, EpochId(0), EpochId(0));
    let lte = query(&ctx, "SELECT cell_id FROM CELL WHERE tech IN ('LTE')").unwrap();
    let rest = query(&ctx, "SELECT cell_id FROM CELL WHERE tech NOT IN ('LTE')").unwrap();
    assert_eq!(lte.len() + rest.len(), fw.layout().len());
    assert!(!lte.is_empty() && !rest.is_empty());
}

#[test]
fn error_paths() {
    let (fw, _) = setup(1);
    let ctx = SqlContext::new(&fw, EpochId(0), EpochId(0));
    assert!(matches!(
        query(&ctx, "SELECT x FROM NOPE"),
        Err(SqlError::UnknownTable(_))
    ));
    assert!(matches!(
        query(&ctx, "SELECT no_such_col FROM CDR"),
        Err(SqlError::UnknownColumn(_))
    ));
    assert!(matches!(
        query(&ctx, "SELECT upflux FROM"),
        Err(SqlError::Parse(_))
    ));
    // cell_id exists in both CDR and NMS: unqualified reference is ambiguous.
    assert!(matches!(
        query(
            &ctx,
            "SELECT cell_id FROM CDR a, NMS b WHERE a.cell_id = b.cell_id"
        ),
        Err(SqlError::AmbiguousColumn(_))
    ));
    // Plain column not in GROUP BY.
    assert!(matches!(
        query(&ctx, "SELECT caller_id, COUNT(*) FROM CDR GROUP BY cell_id"),
        Err(SqlError::Unsupported(_))
    ));
}

#[test]
fn result_set_text_rendering() {
    let (fw, _) = setup(1);
    let ctx = SqlContext::new(&fw, EpochId(0), EpochId(0));
    let rs = query(&ctx, "SELECT cell_id, tech FROM CELL LIMIT 3").unwrap();
    let text = rs.to_text();
    assert!(text.contains("cell_id"));
    assert!(text.contains("tech"));
    assert!(text.lines().count() >= 2 + rs.len());
}

#[test]
fn sql_matches_task_t1_results() {
    // The SQL path and the native task path must return identical data.
    let (fw, _) = setup(3);
    let epoch = EpochId(2);
    let (native, _) = spate_core::tasks::t1_equality(&fw, epoch);
    let ctx = SqlContext::new(&fw, EpochId(0), EpochId(2));
    let ts = epoch.civil().compact();
    let rs = query(
        &ctx,
        &format!("SELECT upflux, downflux FROM CDR WHERE ts_start = '{ts}'"),
    )
    .unwrap();
    let sql_rows: Vec<(i64, i64)> = rs
        .rows
        .iter()
        .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
        .collect();
    assert_eq!(sql_rows, native);
}

#[test]
fn join_between_nms_and_cell_inventory() {
    let (fw, _) = setup(1);
    let ctx = SqlContext::new(&fw, EpochId(0), EpochId(0));
    let rs = query(
        &ctx,
        "SELECT n.cell_id, c.tech, n.call_drops FROM NMS n, CELL c \
         WHERE n.cell_id = c.cell_id AND c.tech = 'LTE' LIMIT 10",
    )
    .unwrap();
    assert_eq!(rs.columns, vec!["cell_id", "tech", "call_drops"]);
    for row in &rs.rows {
        assert_eq!(row[1].as_text(), "LTE");
    }
}

#[test]
fn count_star_equals_scan_volume() {
    let (fw, snaps) = setup(2);
    let ctx = SqlContext::new(&fw, EpochId(0), EpochId(1));
    let rs = query(&ctx, "SELECT COUNT(*) FROM NMS").unwrap();
    let expected: usize = snaps.iter().map(|s| s.nms.len()).sum();
    assert_eq!(rs.rows[0][0].as_i64(), Some(expected as i64));
    let _ = cdr::UPFLUX; // silence unused-import lint paths in some configs
}

#[test]
fn between_and_like_predicates() {
    let (fw, _) = setup(2);
    let ctx = SqlContext::new(&fw, EpochId(0), EpochId(1));

    // BETWEEN on numeric durations.
    let mid = query(
        &ctx,
        "SELECT duration_s FROM CDR WHERE duration_s BETWEEN 100 AND 300",
    )
    .unwrap();
    for row in &mid.rows {
        let d = row[0].as_f64().unwrap();
        assert!((100.0..=300.0).contains(&d), "{d}");
    }
    let outside = query(
        &ctx,
        "SELECT duration_s FROM CDR WHERE duration_s NOT BETWEEN 100 AND 300",
    )
    .unwrap();
    let all = query(&ctx, "SELECT duration_s FROM CDR").unwrap();
    assert_eq!(mid.len() + outside.len(), all.len());

    // LIKE on nominal text.
    let voice = query(&ctx, "SELECT call_type FROM CDR WHERE call_type LIKE 'VO%'").unwrap();
    for row in &voice.rows {
        assert_eq!(row[0].as_text(), "VOICE");
    }
    let with_underscore = query(&ctx, "SELECT tech FROM CELL WHERE tech LIKE '_G'").unwrap();
    for row in &with_underscore.rows {
        let t = row[0].as_text();
        assert!(t == "2G" || t == "3G", "{t}");
    }
    let none = query(&ctx, "SELECT tech FROM CELL WHERE tech NOT LIKE '%'").unwrap();
    assert_eq!(none.len(), 0, "%% matches everything");
}

#[test]
fn having_filters_groups() {
    let (fw, _) = setup(4);
    let ctx = SqlContext::new(&fw, EpochId(0), EpochId(3));
    let all = query(
        &ctx,
        "SELECT cell_id, SUM(call_attempts) AS a FROM NMS GROUP BY cell_id",
    )
    .unwrap();
    let busy = query(
        &ctx,
        "SELECT cell_id, SUM(call_attempts) AS a FROM NMS GROUP BY cell_id \
         HAVING SUM(call_attempts) > 50",
    )
    .unwrap();
    assert!(busy.len() < all.len());
    for row in &busy.rows {
        assert!(row[1].as_f64().unwrap() > 50.0);
    }
    // HAVING with COUNT(*) and a conjunction.
    let multi = query(
        &ctx,
        "SELECT cell_id, COUNT(*) AS n FROM NMS GROUP BY cell_id \
         HAVING COUNT(*) >= 2 AND SUM(call_drops) >= 0",
    )
    .unwrap();
    for row in &multi.rows {
        assert!(row[1].as_i64().unwrap() >= 2);
    }
}

#[test]
fn like_matcher_edge_cases() {
    use spate_sql::exec::like_match;
    assert!(like_match("", ""));
    assert!(like_match("", "%"));
    assert!(!like_match("", "_"));
    assert!(like_match("abc", "abc"));
    assert!(like_match("abc", "a%"));
    assert!(like_match("abc", "%c"));
    assert!(like_match("abc", "%b%"));
    assert!(like_match("abc", "a_c"));
    assert!(!like_match("abc", "a_b"));
    assert!(like_match("aXbXc", "a%b%c"));
    assert!(!like_match("ab", "abc"));
    assert!(like_match("aaa", "%a"));
    assert!(like_match("mississippi", "m%iss%ppi"));
    assert!(!like_match("mississippi", "m%xss%ppi"));
}

#[test]
fn select_distinct_deduplicates() {
    let (fw, _) = setup(2);
    let ctx = SqlContext::new(&fw, EpochId(0), EpochId(1));
    let all = query(&ctx, "SELECT call_type FROM CDR").unwrap();
    let distinct = query(&ctx, "SELECT DISTINCT call_type FROM CDR").unwrap();
    assert!(distinct.len() <= 3, "VOICE/SMS/DATA only: {distinct:?}");
    assert!(distinct.len() < all.len());
    let mut values: Vec<String> = distinct.rows.iter().map(|r| r[0].as_text()).collect();
    values.sort();
    values.dedup();
    assert_eq!(values.len(), distinct.len(), "no duplicates survive");
    // DISTINCT over multiple columns.
    let pairs = query(&ctx, "SELECT DISTINCT call_type, tech FROM CDR").unwrap();
    let mut keys: Vec<String> = pairs
        .rows
        .iter()
        .map(|r| format!("{}|{}", r[0].as_text(), r[1].as_text()))
        .collect();
    keys.sort();
    let before = keys.len();
    keys.dedup();
    assert_eq!(keys.len(), before);
}

/// Helper: fetch a metric row out of an EXPLAIN ANALYZE result set.
fn metric(rs: &spate_sql::ResultSet, name: &str) -> String {
    rs.rows
        .iter()
        .find(|r| r[0].as_text() == name)
        .unwrap_or_else(|| panic!("missing metric {name}: {rs:?}"))[1]
        .as_text()
}

#[test]
fn explain_analyze_t1_reconciles_exactly() {
    let (fw, snaps) = setup(3);
    let ctx = SqlContext::new(&fw, EpochId(0), EpochId(2));
    let ts = EpochId(1).civil().compact();
    let rs = query(
        &ctx,
        &format!("EXPLAIN ANALYZE SELECT upflux, downflux FROM CDR WHERE ts_start = '{ts}'"),
    )
    .unwrap();
    assert_eq!(rs.columns, vec!["metric", "value"]);
    // The profiled query touched every epoch in the window and read real
    // bytes through the dfs + gzip codec.
    assert_eq!(metric(&rs, "epochs_touched"), "3");
    assert!(metric(&rs, "bytes_read.total").parse::<u64>().unwrap() > 0);
    assert_eq!(
        metric(&rs, "bytes_read.dfs"),
        metric(&rs, "bytes_read.total"),
        "single-source query: dfs explains every byte"
    );
    assert!(
        metric(&rs, "bytes_decompressed.gzip-lite")
            .parse::<u64>()
            .unwrap()
            > 0
    );
    // Zero-cost-leak invariant: breakdowns sum exactly to totals.
    assert_eq!(metric(&rs, "unattributed_bytes"), "0");
    // Rows: the whole window is scanned, one epoch's CDR rows survive.
    let scanned: u64 = metric(&rs, "rows_scanned").parse().unwrap();
    let returned: u64 = metric(&rs, "rows_returned").parse().unwrap();
    let total_window: u64 = snaps.iter().map(|s| s.cdr.len() as u64).sum();
    assert_eq!(scanned, total_window, "every CDR row in the window scanned");
    assert_eq!(returned, snaps[1].cdr.len() as u64);
    assert!(rs.rows.iter().any(|r| r[0].as_text() == "time.total_us"));
}

#[test]
fn explain_analyze_t4_self_join_reconciles() {
    let (fw, _) = setup(2);
    let ctx = SqlContext::new(&fw, EpochId(0), EpochId(1));
    let rs = query(
        &ctx,
        "EXPLAIN ANALYZE SELECT a.caller_id FROM CDR a, CDR b \
         WHERE a.caller_id = b.caller_id AND a.cell_id != b.cell_id",
    )
    .unwrap();
    assert_eq!(metric(&rs, "unattributed_bytes"), "0");
    assert_eq!(metric(&rs, "epochs_touched"), "2");
    // The self-join materializes CDR twice: scanned rows double-count by
    // design (each FROM binding is its own scan).
    let scanned: u64 = metric(&rs, "rows_scanned").parse().unwrap();
    assert!(scanned > 0 && scanned % 2 == 0, "{scanned}");
    // Cross-check against the plain query's output size.
    let plain = query(
        &ctx,
        "SELECT a.caller_id FROM CDR a, CDR b \
         WHERE a.caller_id = b.caller_id AND a.cell_id != b.cell_id",
    )
    .unwrap();
    assert_eq!(
        metric(&rs, "rows_returned").parse::<usize>().unwrap(),
        plain.len()
    );
}

#[test]
fn explain_analyze_requires_top_level() {
    let (fw, _) = setup(1);
    let ctx = SqlContext::new(&fw, EpochId(0), EpochId(0));
    // EXPLAIN without ANALYZE is a parse error.
    assert!(matches!(
        query(&ctx, "EXPLAIN SELECT upflux FROM CDR"),
        Err(SqlError::Parse(_))
    ));
    // A valid statement still parses after the EXPLAIN ANALYZE prefix.
    assert!(query(&ctx, "EXPLAIN ANALYZE SELECT upflux FROM CDR;").is_ok());
}
