//! Property tests for the SQL front end: the lexer/parser must never
//! panic, and well-formed generated statements must parse to the expected
//! shape.

use proptest::prelude::*;
use spate_sql::parser::parse;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics the front end.
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,200}") {
        let _ = parse(&input);
    }

    /// ASCII-ish soups of SQL-looking tokens never panic either.
    #[test]
    fn parser_never_panics_on_sqlish_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("GROUP"),
                Just("BY"), Just("ORDER"), Just("LIMIT"), Just("AND"),
                Just("OR"), Just("NOT"), Just("IN"), Just("COUNT"),
                Just("("), Just(")"), Just(","), Just("*"), Just("="),
                Just("!="), Just("<"), Just(">="), Just("x"), Just("CDR"),
                Just("'lit'"), Just("42"), Just("."), Just(";"),
            ],
            0..24,
        )
    ) {
        let stmt = words.join(" ");
        let _ = parse(&stmt);
    }

    /// Generated well-formed SELECTs parse, and their shape survives.
    #[test]
    fn well_formed_selects_parse(
        cols in proptest::collection::vec("[a-z][a-z0-9_]{0,8}", 1..4),
        table in "[A-Z]{2,5}",
        lit in "[0-9]{1,6}",
        limit in 0usize..1000,
        desc in any::<bool>(),
    ) {
        let stmt = format!(
            "SELECT {} FROM {} WHERE {} >= '{}' ORDER BY {} {} LIMIT {}",
            cols.join(", "),
            table,
            cols[0],
            lit,
            cols[0],
            if desc { "DESC" } else { "ASC" },
            limit,
        );
        let parsed = parse(&stmt).unwrap_or_else(|e| panic!("{stmt}: {e}"));
        prop_assert_eq!(parsed.items.len(), cols.len());
        prop_assert_eq!(parsed.from[0].table.as_str(), table.as_str());
        prop_assert_eq!(parsed.limit, Some(limit));
        prop_assert_eq!(parsed.order_by[0].descending, desc);
    }

    /// Aggregates with GROUP BY parse for every aggregate function.
    #[test]
    fn aggregate_selects_parse(
        func in prop_oneof![Just("COUNT"), Just("SUM"), Just("AVG"), Just("MIN"), Just("MAX")],
        col in "[a-z][a-z0-9_]{0,8}",
        key in "[a-z][a-z0-9_]{0,8}",
    ) {
        let stmt = format!("SELECT {key}, {func}({col}) FROM NMS GROUP BY {key}");
        let parsed = parse(&stmt).unwrap();
        prop_assert!(parsed.has_aggregates());
        prop_assert_eq!(parsed.group_by.len(), 1);
    }
}
