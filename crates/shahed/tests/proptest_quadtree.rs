//! Property tests: the aggregate quad-tree must agree with brute force for
//! every point set and query box.

use proptest::prelude::*;
use shahed::{AggStats, Point, QuadConfig, QuadTree};
use telco_trace::cells::BoundingBox;

const SIDE: f64 = 1000.0;

fn region() -> BoundingBox {
    BoundingBox::new(0.0, 0.0, SIDE, SIDE)
}

fn brute(points: &[Point], bbox: &BoundingBox) -> AggStats {
    let mut s = AggStats::empty();
    for p in points {
        if bbox.contains(p.x, p.y) {
            s.add(p.values[0]);
        }
    }
    s
}

prop_compose! {
    fn arb_point()(x in 0.0..SIDE, y in 0.0..SIDE, v in -100.0..100.0) -> Point {
        Point { x, y, values: vec![v] }
    }
}

prop_compose! {
    fn arb_bbox()(x0 in 0.0..SIDE, y0 in 0.0..SIDE, w in 0.0..SIDE, h in 0.0..SIDE) -> BoundingBox {
        BoundingBox::new(x0, y0, (x0 + w).min(SIDE), (y0 + h).min(SIDE))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn aggregates_match_brute_force(
        points in proptest::collection::vec(arb_point(), 0..300),
        bbox in arb_bbox(),
        leaf_capacity in 1usize..32,
    ) {
        let config = QuadConfig { leaf_capacity, max_depth: 10, retain_points: true };
        let tree = QuadTree::build(region(), 1, config, points.clone());
        let got = tree.query(&bbox)[0];
        let want = brute(&points, &bbox);
        prop_assert_eq!(got.count, want.count);
        prop_assert!((got.sum - want.sum).abs() < 1e-6);
        if want.count > 0 {
            prop_assert_eq!(got.min, want.min);
            prop_assert_eq!(got.max, want.max);
        }
    }

    #[test]
    fn point_queries_match_brute_force(
        points in proptest::collection::vec(arb_point(), 0..300),
        bbox in arb_bbox(),
    ) {
        let tree = QuadTree::build(region(), 1, QuadConfig::default(), points.clone());
        let got = tree.query_points(&bbox);
        let want = points.iter().filter(|p| bbox.contains(p.x, p.y)).count();
        prop_assert_eq!(got.len(), want);
    }

    #[test]
    fn root_totals_see_every_point(points in proptest::collection::vec(arb_point(), 0..200)) {
        let tree = QuadTree::build(region(), 1, QuadConfig::default(), points.clone());
        prop_assert_eq!(tree.totals()[0].count, points.len() as u64);
        prop_assert_eq!(tree.len(), points.len());
    }
}
