//! The temporal hierarchy over spatial quad-trees: per-epoch trees with
//! retained points, plus aggregate-only rollups per day, month and year.
//!
//! Range queries decompose the temporal window greedily into the coarsest
//! covering units (year > month > day > epoch), exactly how multi-level
//! aggregate indexes answer long-window queries in constant work per unit.

use crate::quadtree::{AggStats, Point, QuadConfig, QuadTree};
use std::collections::BTreeMap;
use telco_trace::cells::BoundingBox;
use telco_trace::time::{days_in_month, EpochId, EPOCHS_PER_DAY};

/// Key of a month node: `(year, month)`.
type MonthKey = (u32, u32);

/// The SHAHED-style index.
pub struct ShahedIndex {
    bounds: BoundingBox,
    n_measures: usize,
    epoch_config: QuadConfig,
    epochs: BTreeMap<u32, QuadTree>,
    days: BTreeMap<u32, QuadTree>,
    months: BTreeMap<MonthKey, QuadTree>,
    years: BTreeMap<u32, QuadTree>,
    /// Points of the day currently being filled (for the day rollup).
    day_buffer: Vec<Point>,
    current_day: Option<u32>,
    /// Month/year accumulation buffers (aggregate-only, so just points).
    month_buffer: Vec<Point>,
    current_month: Option<MonthKey>,
    year_buffer: Vec<Point>,
    current_year: Option<u32>,
}

impl ShahedIndex {
    pub fn new(bounds: BoundingBox, n_measures: usize) -> Self {
        Self {
            bounds,
            n_measures,
            epoch_config: QuadConfig::default(),
            epochs: BTreeMap::new(),
            days: BTreeMap::new(),
            months: BTreeMap::new(),
            years: BTreeMap::new(),
            day_buffer: Vec::new(),
            current_day: None,
            month_buffer: Vec::new(),
            current_month: None,
            year_buffer: Vec::new(),
            current_year: None,
        }
    }

    fn agg_config() -> QuadConfig {
        QuadConfig {
            retain_points: false,
            ..QuadConfig::default()
        }
    }

    fn flush_day(&mut self) {
        if let Some(day) = self.current_day.take() {
            let pts = std::mem::take(&mut self.day_buffer);
            let tree = QuadTree::build(self.bounds, self.n_measures, Self::agg_config(), pts);
            self.days.insert(day, tree);
        }
    }

    fn flush_month(&mut self) {
        if let Some(key) = self.current_month.take() {
            let pts = std::mem::take(&mut self.month_buffer);
            let tree = QuadTree::build(self.bounds, self.n_measures, Self::agg_config(), pts);
            self.months.insert(key, tree);
        }
    }

    fn flush_year(&mut self) {
        if let Some(year) = self.current_year.take() {
            let pts = std::mem::take(&mut self.year_buffer);
            let tree = QuadTree::build(self.bounds, self.n_measures, Self::agg_config(), pts);
            self.years.insert(year, tree);
        }
    }

    /// Ingest one epoch's points. Epochs must arrive in increasing order.
    pub fn insert_epoch(&mut self, epoch: EpochId, points: Vec<Point>) {
        let day = epoch.day_index();
        let civil = epoch.civil();
        let month_key = (civil.year, civil.month);

        if self.current_day != Some(day) {
            self.flush_day();
            self.current_day = Some(day);
        }
        if self.current_month != Some(month_key) {
            self.flush_month();
            self.current_month = Some(month_key);
        }
        if self.current_year != Some(civil.year) {
            self.flush_year();
            self.current_year = Some(civil.year);
        }

        self.day_buffer.extend(points.iter().cloned());
        self.month_buffer.extend(points.iter().cloned());
        self.year_buffer.extend(points.iter().cloned());

        let tree = QuadTree::build(self.bounds, self.n_measures, self.epoch_config, points);
        self.epochs.insert(epoch.0, tree);
    }

    /// Flush open day/month/year buffers (call after the last epoch).
    pub fn finalize(&mut self) {
        self.flush_day();
        self.flush_month();
        self.flush_year();
    }

    pub fn n_epochs(&self) -> usize {
        self.epochs.len()
    }

    pub fn n_measures(&self) -> usize {
        self.n_measures
    }

    /// Aggregate query over `bbox` for the inclusive epoch window.
    ///
    /// The window decomposes greedily into whole years, whole months, whole
    /// days, and residual epochs. Results are exact: rolled-up
    /// (aggregate-only) trees are consulted only when `bbox` covers the
    /// whole region — for spatially-partial queries the full-resolution
    /// epoch trees answer, since a pruned rollup node cannot split its
    /// aggregate across a partial overlap.
    pub fn query_agg(&self, bbox: &BoundingBox, start: EpochId, end: EpochId) -> Vec<AggStats> {
        let full_region = bbox.min_x <= self.bounds.min_x
            && bbox.min_y <= self.bounds.min_y
            && bbox.max_x >= self.bounds.max_x
            && bbox.max_y >= self.bounds.max_y;
        let mut out = vec![AggStats::empty(); self.n_measures];
        let mut e = start.0;
        while e <= end.0 {
            let id = EpochId(e);
            let civil = id.civil();
            // Whole-year shortcut.
            if full_region && civil.month == 1 && civil.day == 1 && id.epoch_in_day() == 0 {
                let year_epochs: u32 = (1..=12)
                    .map(|m| days_in_month(civil.year, m) * EPOCHS_PER_DAY)
                    .sum();
                if e + year_epochs - 1 <= end.0 {
                    if let Some(tree) = self.years.get(&civil.year) {
                        merge_into(&mut out, &tree.query(bbox));
                        e += year_epochs;
                        continue;
                    }
                }
            }
            // Whole-month shortcut.
            if full_region && civil.day == 1 && id.epoch_in_day() == 0 {
                let month_epochs = days_in_month(civil.year, civil.month) * EPOCHS_PER_DAY;
                if e + month_epochs - 1 <= end.0 {
                    if let Some(tree) = self.months.get(&(civil.year, civil.month)) {
                        merge_into(&mut out, &tree.query(bbox));
                        e += month_epochs;
                        continue;
                    }
                }
            }
            // Whole-day shortcut.
            if full_region && id.epoch_in_day() == 0 && e + EPOCHS_PER_DAY - 1 <= end.0 {
                if let Some(tree) = self.days.get(&id.day_index()) {
                    merge_into(&mut out, &tree.query(bbox));
                    e += EPOCHS_PER_DAY;
                    continue;
                }
            }
            if let Some(tree) = self.epochs.get(&e) {
                merge_into(&mut out, &tree.query(bbox));
            }
            e += 1;
        }
        out
    }

    /// Exact points over `bbox` for the window (epoch trees only).
    pub fn query_points(&self, bbox: &BoundingBox, start: EpochId, end: EpochId) -> Vec<&Point> {
        let mut out = Vec::new();
        for (_, tree) in self.epochs.range(start.0..=end.0) {
            out.extend(tree.query_points(bbox));
        }
        out
    }

    /// Approximate memory footprint of the whole hierarchy.
    pub fn memory_bytes(&self) -> usize {
        let trees = self
            .epochs
            .values()
            .chain(self.days.values())
            .chain(self.months.values())
            .chain(self.years.values());
        trees.map(QuadTree::memory_bytes).sum()
    }
}

fn merge_into(out: &mut [AggStats], add: &[AggStats]) {
    for (o, a) in out.iter_mut().zip(add) {
        o.merge(a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> BoundingBox {
        BoundingBox::new(0.0, 0.0, 100.0, 100.0)
    }

    /// One point per epoch at a grid position, value = epoch index.
    fn build_index(n_epochs: u32) -> ShahedIndex {
        let mut idx = ShahedIndex::new(bounds(), 1);
        for e in 0..n_epochs {
            let p = Point {
                x: f64::from(e % 10) * 10.0 + 1.0,
                y: f64::from((e / 10) % 10) * 10.0 + 1.0,
                values: vec![f64::from(e)],
            };
            idx.insert_epoch(EpochId(e), vec![p]);
        }
        idx.finalize();
        idx
    }

    #[test]
    fn aggregates_across_epochs() {
        let idx = build_index(10);
        let s = idx.query_agg(&bounds(), EpochId(0), EpochId(9));
        assert_eq!(s[0].count, 10);
        assert_eq!(s[0].sum, 45.0);
        // Partial window.
        let s = idx.query_agg(&bounds(), EpochId(3), EpochId(5));
        assert_eq!(s[0].count, 3);
        assert_eq!(s[0].sum, 12.0);
    }

    #[test]
    fn day_rollups_are_used_and_exact() {
        // Three whole days of data.
        let idx = build_index(3 * EPOCHS_PER_DAY);
        assert_eq!(idx.days.len(), 3);
        let s = idx.query_agg(&bounds(), EpochId(0), EpochId(3 * EPOCHS_PER_DAY - 1));
        assert_eq!(s[0].count, u64::from(3 * EPOCHS_PER_DAY));
        let expect_sum: f64 = (0..3 * EPOCHS_PER_DAY).map(f64::from).sum();
        assert!((s[0].sum - expect_sum).abs() < 1e-9);
        // Misaligned window must still be exact (mixes days and epochs).
        let s = idx.query_agg(&bounds(), EpochId(5), EpochId(2 * EPOCHS_PER_DAY + 7));
        let expect: f64 = (5..=2 * EPOCHS_PER_DAY + 7).map(f64::from).sum();
        assert!((s[0].sum - expect).abs() < 1e-9);
        assert_eq!(s[0].count, u64::from(2 * EPOCHS_PER_DAY + 3));
    }

    #[test]
    fn spatial_filter_applies() {
        let idx = build_index(100);
        // Only points with x in [0,20): grid columns 0 and 1 (e%10 ∈ {0,1}).
        let west = BoundingBox::new(0.0, 0.0, 20.0, 100.0);
        let s = idx.query_agg(&west, EpochId(0), EpochId(99));
        assert_eq!(s[0].count, 20);
        let pts = idx.query_points(&west, EpochId(0), EpochId(99));
        assert_eq!(pts.len(), 20);
        assert!(pts.iter().all(|p| p.x < 20.0));
    }

    #[test]
    fn point_queries_respect_window() {
        let idx = build_index(50);
        let pts = idx.query_points(&bounds(), EpochId(10), EpochId(19));
        assert_eq!(pts.len(), 10);
        let vals: Vec<f64> = pts.iter().map(|p| p.values[0]).collect();
        assert!(vals.iter().all(|&v| (10.0..20.0).contains(&v)));
    }

    #[test]
    fn empty_windows_and_missing_epochs() {
        let idx = build_index(5);
        let s = idx.query_agg(&bounds(), EpochId(100), EpochId(200));
        assert!(s[0].is_empty());
        assert!(idx
            .query_points(&bounds(), EpochId(100), EpochId(200))
            .is_empty());
    }

    #[test]
    fn month_rollup_exists_after_full_month() {
        // The trace starts Jan 18, 2016: a full January never happens, but
        // 14 days gets us into February, flushing the January partial.
        let idx = build_index(15 * EPOCHS_PER_DAY);
        assert!(idx.months.contains_key(&(2016, 1)));
        assert_eq!(idx.n_epochs(), (15 * EPOCHS_PER_DAY) as usize);
        // Queries across the boundary remain exact.
        let s = idx.query_agg(
            &bounds(),
            EpochId(13 * EPOCHS_PER_DAY),
            EpochId(15 * EPOCHS_PER_DAY - 1),
        );
        assert_eq!(s[0].count, u64::from(2 * EPOCHS_PER_DAY));
    }

    #[test]
    fn memory_accounting_grows_with_data() {
        let small = build_index(10);
        let large = build_index(200);
        assert!(large.memory_bytes() > small.memory_bytes());
    }
}
