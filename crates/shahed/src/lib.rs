//! SHAHED-class baseline: a multi-resolution spatio-temporal *aggregate*
//! index, isolated the way the SPATE paper isolated it.
//!
//! "SHAHED is a MapReduce-based system for querying and visualizing
//! spatio-temporal satellite data ... To allow fair comparison, we isolated
//! the spatio-temporal aggregate index of SHAHED" (§VII-A). The structure
//! is a temporal hierarchy (epoch → day → month → year); each temporal node
//! carries a spatial quad-tree whose nodes hold `count/sum/min/max`
//! aggregates per tracked measure. Epoch-level trees retain the raw points
//! so exact queries are possible; coarser levels keep aggregates only.
//!
//! No compression, no decay — exactly the baseline's trade-off: fast
//! aggregate queries at full storage cost.

pub mod quadtree;
pub mod temporal;

pub use quadtree::{AggStats, Point, QuadConfig, QuadTree};
pub use temporal::ShahedIndex;
