//! Spatial aggregate quad-tree.
//!
//! Each node covers a quadrant of its parent and stores per-measure
//! aggregates; leaves optionally retain their points. Range queries combine
//! whole-node aggregates for fully-covered nodes and filter points at
//! partially-covered leaves — the classic aggregate-index evaluation.

use telco_trace::cells::BoundingBox;

/// Distributive aggregates of one measure over a set of points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggStats {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl Default for AggStats {
    fn default() -> Self {
        Self::empty()
    }
}

impl AggStats {
    pub fn empty() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    #[inline]
    pub fn add(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    pub fn merge(&mut self, other: &AggStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// A point with its tracked measure values.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    pub x: f64,
    pub y: f64,
    /// One value per tracked measure (e.g. `[drops, attempts]`).
    pub values: Vec<f64>,
}

/// Quad-tree construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct QuadConfig {
    /// Max points per leaf before splitting.
    pub leaf_capacity: usize,
    /// Max tree depth (bounds degenerate splits on coincident points).
    pub max_depth: u32,
    /// Keep raw points in leaves (false for rolled-up aggregate-only trees).
    pub retain_points: bool,
}

impl Default for QuadConfig {
    fn default() -> Self {
        Self {
            leaf_capacity: 64,
            max_depth: 12,
            retain_points: true,
        }
    }
}

#[derive(Debug)]
enum NodeBody {
    Leaf(Vec<Point>),
    /// NW, NE, SW, SE
    Inner(Box<[QuadNode; 4]>),
    /// Aggregate-only node (points discarded).
    Pruned,
}

#[derive(Debug)]
struct QuadNode {
    bounds: BoundingBox,
    /// Aggregates per tracked measure over all points below this node.
    stats: Vec<AggStats>,
    body: NodeBody,
}

/// The spatial aggregate index over one temporal unit.
#[derive(Debug)]
pub struct QuadTree {
    root: QuadNode,
    n_measures: usize,
    config: QuadConfig,
    len: usize,
}

fn quadrants(b: &BoundingBox) -> [BoundingBox; 4] {
    let mx = (b.min_x + b.max_x) / 2.0;
    let my = (b.min_y + b.max_y) / 2.0;
    [
        BoundingBox::new(b.min_x, my, mx, b.max_y), // NW
        BoundingBox::new(mx, my, b.max_x, b.max_y), // NE
        BoundingBox::new(b.min_x, b.min_y, mx, my), // SW
        BoundingBox::new(mx, b.min_y, b.max_x, my), // SE
    ]
}

fn quadrant_of(b: &BoundingBox, x: f64, y: f64) -> usize {
    let mx = (b.min_x + b.max_x) / 2.0;
    let my = (b.min_y + b.max_y) / 2.0;
    match (x < mx, y < my) {
        (true, false) => 0,
        (false, false) => 1,
        (true, true) => 2,
        (false, true) => 3,
    }
}

/// True when `outer` fully covers `inner`.
fn covers(outer: &BoundingBox, inner: &BoundingBox) -> bool {
    outer.min_x <= inner.min_x
        && outer.min_y <= inner.min_y
        && outer.max_x >= inner.max_x
        && outer.max_y >= inner.max_y
}

impl QuadNode {
    fn new_leaf(bounds: BoundingBox, n_measures: usize) -> Self {
        Self {
            bounds,
            stats: vec![AggStats::empty(); n_measures],
            body: NodeBody::Leaf(Vec::new()),
        }
    }

    fn insert(&mut self, p: Point, depth: u32, config: &QuadConfig) {
        for (s, &v) in self.stats.iter_mut().zip(&p.values) {
            s.add(v);
        }
        match &mut self.body {
            NodeBody::Leaf(points) => {
                points.push(p);
                if points.len() > config.leaf_capacity && depth < config.max_depth {
                    // Split: redistribute into quadrants.
                    let moved = std::mem::take(points);
                    let n_measures = self.stats.len();
                    let mut children: Box<[QuadNode; 4]> = Box::new(
                        quadrants(&self.bounds).map(|b| QuadNode::new_leaf(b, n_measures)),
                    );
                    for q in moved {
                        let c = quadrant_of(&self.bounds, q.x, q.y);
                        children[c].insert(q, depth + 1, config);
                    }
                    self.body = NodeBody::Inner(children);
                }
            }
            NodeBody::Inner(children) => {
                let c = quadrant_of(&self.bounds, p.x, p.y);
                children[c].insert(p, depth + 1, config);
            }
            NodeBody::Pruned => {}
        }
    }

    fn query(&self, bbox: &BoundingBox, out: &mut [AggStats]) {
        if !bbox.intersects(&self.bounds) {
            return;
        }
        if covers(bbox, &self.bounds) {
            for (o, s) in out.iter_mut().zip(&self.stats) {
                o.merge(s);
            }
            return;
        }
        match &self.body {
            NodeBody::Leaf(points) => {
                for p in points {
                    if bbox.contains(p.x, p.y) {
                        for (o, &v) in out.iter_mut().zip(&p.values) {
                            o.add(v);
                        }
                    }
                }
            }
            NodeBody::Inner(children) => {
                for c in children.iter() {
                    c.query(bbox, out);
                }
            }
            NodeBody::Pruned => {
                // Aggregate-only subtree partially overlapped: the caller
                // accepted approximate answers at this resolution; attribute
                // the whole node (SHAHED's coarse-granule behaviour).
                for (o, s) in out.iter_mut().zip(&self.stats) {
                    o.merge(s);
                }
            }
        }
    }

    fn query_points<'a>(&'a self, bbox: &BoundingBox, out: &mut Vec<&'a Point>) {
        if !bbox.intersects(&self.bounds) {
            return;
        }
        match &self.body {
            NodeBody::Leaf(points) => {
                for p in points {
                    if bbox.contains(p.x, p.y) {
                        out.push(p);
                    }
                }
            }
            NodeBody::Inner(children) => {
                for c in children.iter() {
                    c.query_points(bbox, out);
                }
            }
            NodeBody::Pruned => {}
        }
    }

    fn drop_points(&mut self) {
        match &mut self.body {
            NodeBody::Leaf(_) => self.body = NodeBody::Pruned,
            NodeBody::Inner(children) => {
                for c in children.iter_mut() {
                    c.drop_points();
                }
            }
            NodeBody::Pruned => {}
        }
    }

    fn memory_bytes(&self) -> usize {
        let own = std::mem::size_of::<QuadNode>()
            + self.stats.capacity() * std::mem::size_of::<AggStats>();
        own + match &self.body {
            NodeBody::Leaf(points) => {
                points.capacity() * std::mem::size_of::<Point>()
                    + points
                        .iter()
                        .map(|p| p.values.capacity() * std::mem::size_of::<f64>())
                        .sum::<usize>()
            }
            NodeBody::Inner(children) => children.iter().map(QuadNode::memory_bytes).sum(),
            NodeBody::Pruned => 0,
        }
    }
}

impl QuadTree {
    /// Create an empty tree over `bounds` tracking `n_measures` measures.
    pub fn new(bounds: BoundingBox, n_measures: usize, config: QuadConfig) -> Self {
        Self {
            root: QuadNode::new_leaf(bounds, n_measures),
            n_measures,
            config,
            len: 0,
        }
    }

    /// Build a tree from points.
    pub fn build(
        bounds: BoundingBox,
        n_measures: usize,
        config: QuadConfig,
        points: impl IntoIterator<Item = Point>,
    ) -> Self {
        let mut t = Self::new(bounds, n_measures, config);
        for p in points {
            t.insert(p);
        }
        if !config.retain_points {
            t.root.drop_points();
        }
        t
    }

    pub fn insert(&mut self, p: Point) {
        debug_assert_eq!(p.values.len(), self.n_measures);
        debug_assert!(self.root.bounds.contains(p.x, p.y), "point outside bounds");
        self.root.insert(p, 0, &self.config);
        self.len += 1;
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn n_measures(&self) -> usize {
        self.n_measures
    }

    /// Aggregate all measures over `bbox`.
    pub fn query(&self, bbox: &BoundingBox) -> Vec<AggStats> {
        let mut out = vec![AggStats::empty(); self.n_measures];
        self.root.query(bbox, &mut out);
        out
    }

    /// All points inside `bbox` (empty for aggregate-only trees).
    pub fn query_points(&self, bbox: &BoundingBox) -> Vec<&Point> {
        let mut out = Vec::new();
        self.root.query_points(bbox, &mut out);
        out
    }

    /// Discard retained points, keeping aggregates (day/month/year rollups).
    pub fn drop_points(&mut self) {
        self.root.drop_points();
    }

    /// Rough in-memory footprint, for the space experiments.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<QuadTree>() + self.root.memory_bytes()
    }

    /// Whole-tree aggregates (the root's stats).
    pub fn totals(&self) -> &[AggStats] {
        &self.root.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> BoundingBox {
        BoundingBox::new(0.0, 0.0, 1000.0, 1000.0)
    }

    fn grid_points(n_side: u32) -> Vec<Point> {
        let mut pts = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                let x = f64::from(i) * 1000.0 / f64::from(n_side) + 0.5;
                let y = f64::from(j) * 1000.0 / f64::from(n_side) + 0.5;
                pts.push(Point {
                    x,
                    y,
                    values: vec![1.0, f64::from(i + j)],
                });
            }
        }
        pts
    }

    fn brute_force(points: &[Point], bbox: &BoundingBox, measure: usize) -> AggStats {
        let mut s = AggStats::empty();
        for p in points {
            if bbox.contains(p.x, p.y) {
                s.add(p.values[measure]);
            }
        }
        s
    }

    #[test]
    fn aggregates_match_brute_force() {
        let points = grid_points(40);
        let tree = QuadTree::build(region(), 2, QuadConfig::default(), points.clone());
        assert_eq!(tree.len(), 1600);

        for bbox in [
            region(),
            BoundingBox::new(0.0, 0.0, 500.0, 500.0),
            BoundingBox::new(250.0, 250.0, 300.0, 900.0),
            BoundingBox::new(999.0, 999.0, 1000.0, 1000.0),
            BoundingBox::new(10.0, 10.0, 10.1, 10.1),
        ] {
            let got = tree.query(&bbox);
            for (m, g) in got.iter().enumerate() {
                let want = brute_force(&points, &bbox, m);
                assert_eq!(g.count, want.count, "{bbox:?} measure {m}");
                assert!((g.sum - want.sum).abs() < 1e-9);
                if want.count > 0 {
                    assert_eq!(g.min, want.min);
                    assert_eq!(g.max, want.max);
                }
            }
        }
    }

    #[test]
    fn point_queries_match_brute_force() {
        let points = grid_points(25);
        let tree = QuadTree::build(region(), 2, QuadConfig::default(), points.clone());
        let bbox = BoundingBox::new(100.0, 200.0, 400.0, 650.0);
        let got = tree.query_points(&bbox);
        let want = points.iter().filter(|p| bbox.contains(p.x, p.y)).count();
        assert_eq!(got.len(), want);
        assert!(got.iter().all(|p| bbox.contains(p.x, p.y)));
    }

    #[test]
    fn empty_tree_queries() {
        let tree = QuadTree::new(region(), 1, QuadConfig::default());
        assert!(tree.is_empty());
        let s = tree.query(&region());
        assert!(s[0].is_empty());
        assert_eq!(s[0].mean(), 0.0);
        assert!(tree.query_points(&region()).is_empty());
    }

    #[test]
    fn coincident_points_respect_max_depth() {
        let config = QuadConfig {
            leaf_capacity: 2,
            max_depth: 5,
            retain_points: true,
        };
        // 100 identical points would split forever without the depth bound.
        let points = (0..100).map(|i| Point {
            x: 123.0,
            y: 456.0,
            values: vec![f64::from(i)],
        });
        let tree = QuadTree::build(region(), 1, config, points);
        assert_eq!(tree.len(), 100);
        let s = tree.query(&region());
        assert_eq!(s[0].count, 100);
        assert_eq!(s[0].min, 0.0);
        assert_eq!(s[0].max, 99.0);
    }

    #[test]
    fn aggregate_only_trees_drop_points_but_keep_stats() {
        let points = grid_points(20);
        let config = QuadConfig {
            retain_points: false,
            ..QuadConfig::default()
        };
        let mut tree = QuadTree::build(region(), 2, config, points.clone());
        assert!(tree.query_points(&region()).is_empty());
        // Full-region aggregates are exact.
        let got = tree.query(&region());
        let want = brute_force(&points, &region(), 0);
        assert_eq!(got[0].count, want.count);
        // Memory shrinks vs a retained tree.
        let retained = QuadTree::build(region(), 2, QuadConfig::default(), points);
        assert!(tree.memory_bytes() < retained.memory_bytes());
        tree.drop_points(); // idempotent
    }

    #[test]
    fn totals_are_root_aggregates() {
        let points = grid_points(10);
        let tree = QuadTree::build(region(), 2, QuadConfig::default(), points);
        assert_eq!(tree.totals()[0].count, 100);
        assert_eq!(tree.totals()[0].sum, 100.0);
    }

    #[test]
    fn agg_stats_merge() {
        let mut a = AggStats::empty();
        a.add(5.0);
        a.add(1.0);
        let mut b = AggStats::empty();
        b.add(10.0);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 16.0);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 10.0);
        assert!((a.mean() - 16.0 / 3.0).abs() < 1e-12);
    }
}
