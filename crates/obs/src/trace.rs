//! Per-request trace propagation.
//!
//! A **trace context** is a trace id plus a per-trace span-id allocator,
//! installed on the current thread for the duration of one request by
//! [`begin`]. While a context is active, every [`crate::span`] opened on
//! the thread additionally records a [`crate::flight::SpanEvent`] into the
//! global flight recorder when it closes — parented under the enclosing
//! span — and [`event`] drops instant annotations into the same trace.
//! With no context installed all of this is a no-op, so library code in
//! `core`/`dfs` stays unconditionally instrumented while non-request work
//! (ingest, benchmarks) pays nothing.
//!
//! Span ids are allocated sequentially per trace starting at 1. Request
//! execution is single-threaded (one worker drives one request), so
//! allocation order equals start order and the reconstructed tree shape
//! is deterministic for a deterministic workload.

use crate::flight::{EventKind, SpanEvent};
use std::cell::Cell;

#[derive(Clone, Copy)]
struct ActiveTrace {
    trace_id: u64,
    next_span_id: u64,
}

thread_local! {
    static ACTIVE: Cell<Option<ActiveTrace>> = const { Cell::new(None) };
}

/// Install `trace_id` as this thread's active trace context. The returned
/// guard restores the previous context (usually none) when dropped; spans
/// and [`event`]s in between are recorded into the flight recorder.
pub fn begin(trace_id: u64) -> TraceGuard {
    let prev = ACTIVE.replace(Some(ActiveTrace {
        trace_id,
        next_span_id: 1,
    }));
    TraceGuard { prev }
}

/// The active trace id on this thread, if any.
pub fn current() -> Option<u64> {
    ACTIVE.get().map(|a| a.trace_id)
}

/// Allocate the next span id of the active trace; `None` without one.
pub(crate) fn alloc_span_id() -> Option<(u64, u64)> {
    let mut active = ACTIVE.get()?;
    let id = active.next_span_id;
    active.next_span_id += 1;
    ACTIVE.set(Some(active));
    Some((active.trace_id, id))
}

fn owned_args(args: &[(&str, &str)]) -> Vec<(String, String)> {
    args.iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Record an instant annotation into the active trace, parented under the
/// innermost open span. No-op without an active context.
pub fn event(name: &str, args: &[(&str, &str)]) {
    let Some((trace_id, span_id)) = alloc_span_id() else {
        return;
    };
    let parent_id = crate::span::current_trace_span().map_or(0, |(_, id)| id);
    crate::flight().record(SpanEvent {
        trace_id,
        span_id,
        parent_id,
        name: name.to_string(),
        start_ns: crate::flight::now_ns(),
        dur_ns: 0,
        kind: EventKind::Instant,
        args: owned_args(args),
    });
}

/// Record an already-measured timed region (e.g. queue wait measured by
/// timestamps, not a guard) into the active trace as a root-level span.
pub fn span_event(name: &str, start_ns: u64, dur_ns: u64, args: &[(&str, &str)]) {
    let Some((trace_id, span_id)) = alloc_span_id() else {
        return;
    };
    crate::flight().record(SpanEvent {
        trace_id,
        span_id,
        parent_id: 0,
        name: name.to_string(),
        start_ns,
        dur_ns,
        kind: EventKind::Span,
        args: owned_args(args),
    });
}

/// Record an instant for an explicit trace id, from any thread, without
/// installing a context — used where the request is *known* but not yet
/// (or no longer) running, e.g. at admission on the reader thread. The
/// event carries span id 0 (not part of the per-trace allocation).
pub fn instant_for(trace_id: u64, name: &str, args: &[(&str, &str)]) {
    crate::flight().record(SpanEvent {
        trace_id,
        span_id: 0,
        parent_id: 0,
        name: name.to_string(),
        start_ns: crate::flight::now_ns(),
        dur_ns: 0,
        kind: EventKind::Instant,
        args: owned_args(args),
    });
}

/// Guard restoring the previous trace context; see [`begin`].
pub struct TraceGuard {
    prev: Option<ActiveTrace>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        ACTIVE.set(self.prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::EventKind;

    #[test]
    fn spans_and_events_record_into_the_active_trace() {
        let trace_id = 0xF00D_0001;
        {
            let _t = begin(trace_id);
            assert_eq!(current(), Some(trace_id));
            let _outer = crate::span("test.trace.outer");
            event("test.trace.mark", &[("k", "v")]);
            {
                let _inner = crate::span("test.trace.inner");
            }
        }
        assert_eq!(current(), None);
        let events = crate::flight().trace(trace_id);
        assert_eq!(events.len(), 3, "{events:?}");
        // Allocation order: outer=1, mark=2, inner=3; closes record later
        // but span ids order the tree.
        assert_eq!(events[0].name, "test.trace.outer");
        assert_eq!(events[0].parent_id, 0);
        assert_eq!(events[1].name, "test.trace.mark");
        assert_eq!(events[1].kind, EventKind::Instant);
        assert_eq!(events[1].parent_id, events[0].span_id);
        assert_eq!(events[1].args, vec![("k".to_string(), "v".to_string())]);
        assert_eq!(events[2].name, "test.trace.inner");
        assert_eq!(events[2].parent_id, events[0].span_id);
    }

    #[test]
    fn no_context_means_no_flight_events() {
        // Other tests share the global recorder, so assert by name, not
        // by count.
        {
            let _s = crate::span("test.trace.untraced");
            event("test.trace.ignored", &[]);
        }
        assert!(crate::flight()
            .dump()
            .iter()
            .all(|e| e.name != "test.trace.untraced" && e.name != "test.trace.ignored"));
    }

    #[test]
    fn nested_begin_restores_the_outer_context() {
        let _a = begin(1);
        {
            let _b = begin(2);
            assert_eq!(current(), Some(2));
        }
        assert_eq!(current(), Some(1));
    }
}
