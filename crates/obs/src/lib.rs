//! `obs` — workspace-wide observability for the SPATE reproduction.
//!
//! Every reported number of the paper (Table I codec timings, Fig. 7/9
//! ingestion, Fig. 11/12 task response times) flows through hot paths
//! spread over seven crates. This crate is the shared substrate that
//! answers "where did the time go": a global, thread-safe **metric
//! registry** (named counters, gauges and log-bucketed histograms), a
//! lightweight **span API** (RAII guards forming a parent/child tree per
//! thread, separating self-time from child time), and **exporters** (a
//! Prometheus-style text dump, a sorted flame table, and JSON).
//!
//! Metric names follow the `crate.component.event` convention, e.g.
//! `dfs.read.bytes` or `codecs.gzip-lite.compress.bytes_in`. Span *names*
//! are stage labels (`"compress"`, `"dfs.write"`); span *paths* are the
//! `;`-joined nesting chain (`"spate.ingest;compress"`).
//!
//! # Example
//!
//! ```
//! {
//!     let _ingest = obs::span("spate.ingest");
//!     {
//!         let _c = obs::span("compress");
//!         obs::add("codecs.gzip-lite.compress.bytes_in", 1024);
//!     } // compress closes: its time is the child time of spate.ingest
//! }
//! let table = obs::export::flame_table(obs::global());
//! assert!(table.contains("spate.ingest"));
//! ```

pub mod export;
pub mod metrics;
pub mod registry;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::Registry;
pub use span::{span, SpanGuard, SpanStats};

use std::sync::{Arc, OnceLock};

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry every instrumented crate records into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Get-or-create a named counter in the global registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Add `delta` to the named global counter.
pub fn add(name: &str, delta: u64) {
    global().counter(name).add(delta);
}

/// Increment the named global counter by one.
pub fn inc(name: &str) {
    add(name, 1);
}

/// Get-or-create a named gauge in the global registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Set the named global gauge.
pub fn gauge_set(name: &str, value: i64) {
    global().gauge(name).set(value);
}

/// Get-or-create a named histogram in the global registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Record one observation into the named global histogram.
pub fn observe(name: &str, value: u64) {
    global().histogram(name).record(value);
}

/// Clear the global registry (measurement boundary between experiments).
pub fn reset() {
    global().reset();
}

#[cfg(test)]
mod tests {
    #[test]
    fn module_level_helpers_hit_the_global_registry() {
        super::add("test.lib.counter", 7);
        super::inc("test.lib.counter");
        assert_eq!(super::counter("test.lib.counter").get(), 8);
        super::gauge_set("test.lib.gauge", -4);
        assert_eq!(super::gauge("test.lib.gauge").get(), -4);
        super::observe("test.lib.hist", 123);
        assert_eq!(super::histogram("test.lib.hist").count(), 1);
    }
}
