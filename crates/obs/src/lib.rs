//! `obs` — workspace-wide observability for the SPATE reproduction.
//!
//! Every reported number of the paper (Table I codec timings, Fig. 7/9
//! ingestion, Fig. 11/12 task response times) flows through hot paths
//! spread over seven crates. This crate is the shared substrate that
//! answers "where did the time go": a global, thread-safe **metric
//! registry** (named counters, gauges and log-bucketed histograms), a
//! lightweight **span API** (RAII guards forming a parent/child tree per
//! thread, separating self-time from child time), and **exporters** (a
//! Prometheus-style text dump, a sorted flame table, and JSON).
//!
//! Metric names follow the `crate.component.event` convention, e.g.
//! `dfs.read.bytes` or `codecs.gzip-lite.compress.bytes_in`. Span *names*
//! are stage labels (`"compress"`, `"dfs.write"`); span *paths* are the
//! `;`-joined nesting chain (`"spate.ingest;compress"`).
//!
//! # Example
//!
//! ```
//! {
//!     let _ingest = obs::span("spate.ingest");
//!     {
//!         let _c = obs::span("compress");
//!         obs::add("codecs.gzip-lite.compress.bytes_in", 1024);
//!     } // compress closes: its time is the child time of spate.ingest
//! }
//! let table = obs::export::flame_table(obs::global());
//! assert!(table.contains("spate.ingest"));
//! ```

pub mod budget;
pub mod cost;
pub mod export;
pub mod flight;
pub mod metrics;
pub mod registry;
pub mod span;
pub mod trace;

pub use budget::{CancelFlag, Interrupt};
pub use cost::CostProfile;
pub use flight::{EventKind, FlightRecorder, SpanEvent};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{MetricId, Registry};
pub use span::{span, SpanGuard, SpanStats};

use std::sync::{Arc, OnceLock};

static GLOBAL: OnceLock<Registry> = OnceLock::new();
static FLIGHT: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-global registry every instrumented crate records into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// The process-global flight recorder; spans and events recorded under an
/// active [`trace`] context land here.
pub fn flight() -> &'static FlightRecorder {
    FLIGHT.get_or_init(|| FlightRecorder::new(flight::DEFAULT_CAPACITY))
}

/// Get-or-create a named counter in the global registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Add `delta` to the named global counter.
pub fn add(name: &str, delta: u64) {
    global().counter(name).add(delta);
}

/// Increment the named global counter by one.
pub fn inc(name: &str) {
    add(name, 1);
}

/// Get-or-create a named gauge in the global registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Set the named global gauge.
pub fn gauge_set(name: &str, value: i64) {
    global().gauge(name).set(value);
}

/// Get-or-create a named histogram in the global registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Record one observation into the named global histogram.
pub fn observe(name: &str, value: u64) {
    global().histogram(name).record(value);
}

/// Get-or-create a labeled histogram series in the global registry. Hot
/// paths should resolve the `Arc` once and reuse it.
pub fn histogram_labeled(name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
    global().histogram_labeled(name, labels)
}

/// Record one observation into the named labeled global histogram.
pub fn observe_labeled(name: &str, labels: &[(&str, &str)], value: u64) {
    global().histogram_labeled(name, labels).record(value);
}

/// Clear the global registry and the flight recorder (measurement
/// boundary between experiments).
///
/// # Concurrency semantics
///
/// `reset` is safe to call while other threads record: it only swaps the
/// registry's maps empty under their write locks, never blocking on or
/// touching the metric atomics themselves. Racing recorders fall into
/// exactly one of two outcomes, both benign:
///
/// * a recorder that already resolved its `Arc` keeps incrementing the
///   now-detached metric — the update is lost from future exports but
///   never panics, deadlocks or corrupts;
/// * a recorder that resolves *after* the clear re-interns a fresh metric
///   that starts from zero.
///
/// Open spans behave the same way: a span closing after a reset re-interns
/// its path and records into the fresh `SpanStats`. The boundary is
/// therefore *eventually clean* rather than instantaneous — callers that
/// need an exact cut (benchmark harnesses) should quiesce workers first,
/// which is what `repro` does between experiments.
pub fn reset() {
    global().reset();
    flight().clear();
}

#[cfg(test)]
mod tests {
    /// Satellite of the documented [`crate::reset`] contract: reset racing
    /// with recorders (counter `inc`, histogram `observe`, labeled
    /// observes, spans opening/closing) must never panic or deadlock, and
    /// the registry must stay usable afterwards. Run on an independent
    /// [`crate::Registry`] where possible plus the global helpers, since
    /// the global registry is what serve workers actually share.
    #[test]
    fn reset_racing_with_recorders_is_safe() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let stop = AtomicBool::new(false);
        let local = crate::Registry::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let local = &local;
                let stop = &stop;
                s.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        super::inc("test.reset.race.counter");
                        super::observe("test.reset.race.hist", i);
                        super::observe_labeled(
                            "test.reset.race.lat",
                            &[("class", if t % 2 == 0 { "a" } else { "b" })],
                            i,
                        );
                        local.counter("c").inc();
                        local.histogram_labeled("h", &[("t", "x")]).record(i);
                        {
                            let _outer = super::span("test.reset.race.outer");
                            let _inner = super::span("inner");
                        }
                        i += 1;
                    }
                });
            }
            s.spawn(|| {
                for _ in 0..200 {
                    super::reset();
                    local.reset();
                    std::thread::yield_now();
                }
                stop.store(true, Ordering::Relaxed);
            });
        });
        // Still usable: fresh metrics start clean and record.
        local.reset();
        local.counter("after").add(3);
        assert_eq!(local.counter("after").get(), 3);
        super::inc("test.reset.race.after");
        assert!(super::counter("test.reset.race.after").get() >= 1);
    }

    #[test]
    fn module_level_helpers_hit_the_global_registry() {
        super::add("test.lib.counter", 7);
        super::inc("test.lib.counter");
        assert_eq!(super::counter("test.lib.counter").get(), 8);
        super::gauge_set("test.lib.gauge", -4);
        assert_eq!(super::gauge("test.lib.gauge").get(), -4);
        super::observe("test.lib.hist", 123);
        assert_eq!(super::histogram("test.lib.hist").count(), 1);
    }
}
