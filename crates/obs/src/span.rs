//! RAII tracing spans with thread-local parent/child nesting.
//!
//! [`span`] opens a timed region; dropping the returned guard (or calling
//! [`SpanGuard::finish_secs`]) closes it and records the elapsed time into
//! the global registry under the span's *path* — the `;`-joined chain of
//! enclosing span names on this thread, flamegraph folded-stack style. A
//! child's elapsed time is subtracted from the parent's *self* time, so
//! the flame table can separate "time spent here" from "time spent in
//! callees".
//!
//! Guards must close in LIFO order on their thread (the natural order of
//! nested scopes); interleaved lifetimes would swap attribution.

use crate::metrics::Histogram;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Aggregated statistics of one span path.
#[derive(Debug, Default)]
pub struct SpanStats {
    pub calls: AtomicU64,
    /// Total wall time inside the span, nanoseconds.
    pub total_ns: AtomicU64,
    /// Total minus time attributed to child spans, nanoseconds.
    pub self_ns: AtomicU64,
    /// Per-call duration distribution, nanoseconds.
    pub durations: Histogram,
}

struct Frame {
    path: String,
    child_ns: u64,
    /// Flight-recorder identity, present while a trace context is active
    /// (see [`crate::trace`]); closing the span then also records a
    /// [`crate::flight::SpanEvent`].
    trace: Option<TraceSpan>,
}

#[derive(Clone, Copy)]
struct TraceSpan {
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    start_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// The innermost open span that belongs to a trace, as
/// `(trace_id, span_id)` — the parent for instant events.
pub(crate) fn current_trace_span() -> Option<(u64, u64)> {
    STACK.with(|stack| {
        stack
            .borrow()
            .iter()
            .rev()
            .find_map(|f| f.trace.map(|t| (t.trace_id, t.span_id)))
    })
}

/// Open a span named `name` nested under this thread's innermost open
/// span. Closes (and records) when the guard drops.
pub fn span(name: &str) -> SpanGuard {
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{};{}", parent.path, name),
            None => name.to_string(),
        };
        // Under an active trace context the span also gets a flight
        // recorder identity, parented under the innermost traced frame
        // (frames opened before the context began stay outside the trace).
        let trace = crate::trace::alloc_span_id().map(|(trace_id, span_id)| TraceSpan {
            trace_id,
            span_id,
            parent_id: stack
                .iter()
                .rev()
                .find_map(|f| f.trace.map(|t| t.span_id))
                .unwrap_or(0),
            start_ns: crate::flight::now_ns(),
        });
        stack.push(Frame {
            path,
            child_ns: 0,
            trace,
        });
    });
    SpanGuard {
        // Started after the bookkeeping so path construction is not billed
        // to the measured region.
        start: Instant::now(),
        open: true,
    }
}

/// Guard of an open span; see [`span`].
#[must_use = "dropping the guard immediately records a ~0ns span"]
pub struct SpanGuard {
    start: Instant,
    open: bool,
}

impl SpanGuard {
    fn close(&mut self) -> f64 {
        // Clock read first: registry bookkeeping below is not measured.
        let elapsed = self.start.elapsed();
        self.open = false;
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let frame = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let frame = stack.pop().expect("span stack underflow");
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += ns;
            }
            frame
        });
        let stats = crate::global().span_stats(&frame.path);
        stats.calls.fetch_add(1, Ordering::Relaxed);
        stats.total_ns.fetch_add(ns, Ordering::Relaxed);
        stats
            .self_ns
            .fetch_add(ns.saturating_sub(frame.child_ns), Ordering::Relaxed);
        stats.durations.record(ns);
        if let Some(t) = frame.trace {
            let name = frame.path.rsplit(';').next().unwrap_or(&frame.path);
            crate::flight().record(crate::flight::SpanEvent {
                trace_id: t.trace_id,
                span_id: t.span_id,
                parent_id: t.parent_id,
                name: name.to_string(),
                start_ns: t.start_ns,
                dur_ns: ns,
                kind: crate::flight::EventKind::Span,
                args: Vec::new(),
            });
        }
        elapsed.as_secs_f64()
    }

    /// Close the span now and return its elapsed seconds, measured by the
    /// same `Instant` the span opened with — a drop-in replacement for the
    /// `let t0 = Instant::now(); ... t0.elapsed().as_secs_f64()` pattern.
    pub fn finish_secs(mut self) -> f64 {
        self.close()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.open {
            self.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn paths_nest_and_self_time_excludes_children() {
        {
            let _outer = span("test.span.outer");
            std::thread::sleep(Duration::from_millis(10));
            {
                let _inner = span("child");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        let outer = crate::global().span_stats("test.span.outer");
        let inner = crate::global().span_stats("test.span.outer;child");
        assert_eq!(outer.calls.load(Ordering::Relaxed), 1);
        assert_eq!(inner.calls.load(Ordering::Relaxed), 1);
        let outer_total = outer.total_ns.load(Ordering::Relaxed);
        let outer_self = outer.self_ns.load(Ordering::Relaxed);
        let inner_total = inner.total_ns.load(Ordering::Relaxed);
        assert!(outer_total >= outer_self + inner_total - 1_000);
        assert!(outer_self < outer_total);
        assert!(inner_total >= 19_000_000, "{inner_total}");
    }

    #[test]
    fn finish_secs_matches_the_recorded_total() {
        let g = span("test.span.finish");
        std::thread::sleep(Duration::from_millis(5));
        let secs = g.finish_secs();
        assert!(secs >= 0.004, "{secs}");
        let stats = crate::global().span_stats("test.span.finish");
        let total = stats.total_ns.load(Ordering::Relaxed) as f64 / 1e9;
        assert!((total - secs).abs() < 1e-6);
    }
}
