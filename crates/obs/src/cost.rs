//! Per-query resource accounting: the [`CostProfile`].
//!
//! Spans and the flight recorder answer *"where did the time go"*; the
//! cost profile answers *"what did this query cost"* — epochs touched,
//! bytes read from each storage source, bytes decompressed per codec,
//! rows scanned vs rows returned, cache hits/misses, and time split by
//! stage. It is the data layer the cost-based planner and the
//! heat-adaptive decay policy read from (ROADMAP items 3 and 4).
//!
//! The collection mechanism mirrors [`crate::trace`]: a thread-local
//! slot holding the active profile, installed by [`begin`] and restored
//! by the returned [`CostGuard`]. Library crates (codecs, dfs, cas, core
//! storage) call the free mutator functions unconditionally; when no
//! profile is active they are no-ops, so instrumentation never needs to
//! be threaded through call signatures.
//!
//! # Reconciliation
//!
//! Every byte mutator updates both a per-key breakdown *and* an
//! independent running total. [`CostProfile::unattributed_bytes`] is the
//! difference between the two — it must be zero on every profile (the
//! "zero cost leak" invariant gated in CI). Keeping the total as its own
//! accumulator rather than deriving it from the map means a future
//! instrumentation bug (a call site that bumps one but not the other)
//! is *detectable* instead of silently self-consistent.

use crate::flight::now_ns;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

/// Resource accounting for one query, assembled while a [`CostGuard`] is
/// installed on the executing thread.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostProfile {
    /// The request-scoped trace this profile belongs to (0 outside serve).
    pub trace_id: u64,
    /// Distinct epoch ids whose data the query touched (loaded, probed or
    /// served from cache).
    pub epochs_touched: BTreeSet<u64>,
    /// Bytes read, by storage source (`"dfs"`, `"cas"`).
    pub bytes_read: BTreeMap<String, u64>,
    /// Total bytes read — maintained independently of the breakdown.
    pub bytes_read_total: u64,
    /// Bytes produced by decompression, by codec name.
    pub bytes_decompressed: BTreeMap<String, u64>,
    /// Total decompressed bytes — maintained independently.
    pub bytes_decompressed_total: u64,
    /// Rows iterated while evaluating predicates/projections.
    pub rows_scanned: u64,
    /// Rows actually produced to the caller.
    pub rows_returned: u64,
    /// Epoch-cache hits observed while serving this query.
    pub cache_hits: u64,
    /// Epoch-cache misses observed while serving this query.
    pub cache_misses: u64,
    /// Wall time per pipeline stage (`"read"`, `"decompress"`,
    /// `"parse"`, `"index_probe"`, ...), nanoseconds.
    pub stage_ns: BTreeMap<String, u64>,
    /// Wall time from [`begin`] to [`CostGuard::finish`], nanoseconds.
    pub total_ns: u64,
}

impl CostProfile {
    pub fn new(trace_id: u64) -> Self {
        Self {
            trace_id,
            ..Self::default()
        }
    }

    /// Bytes in the total accumulator not explained by the per-source
    /// breakdown (and likewise for decompression). Zero on a healthy
    /// profile; non-zero means an instrumentation leak.
    pub fn unattributed_bytes(&self) -> u64 {
        let read: u64 = self.bytes_read.values().sum();
        let dec: u64 = self.bytes_decompressed.values().sum();
        self.bytes_read_total.abs_diff(read) + self.bytes_decompressed_total.abs_diff(dec)
    }

    /// Does every per-key byte breakdown sum exactly to its total?
    pub fn reconciles(&self) -> bool {
        self.unattributed_bytes() == 0
    }

    /// The profile as ordered `(metric, value)` rows — the body of an
    /// `EXPLAIN ANALYZE` result and of the Profile wire frame. Byte and
    /// row metrics are deterministic for a seeded run; the trailing
    /// `time.*` rows are wall-clock and must never be diffed.
    pub fn rows(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        out.push((
            "epochs_touched".into(),
            self.epochs_touched.len().to_string(),
        ));
        for (source, n) in &self.bytes_read {
            out.push((format!("bytes_read.{source}"), n.to_string()));
        }
        out.push(("bytes_read.total".into(), self.bytes_read_total.to_string()));
        for (codec, n) in &self.bytes_decompressed {
            out.push((format!("bytes_decompressed.{codec}"), n.to_string()));
        }
        out.push((
            "bytes_decompressed.total".into(),
            self.bytes_decompressed_total.to_string(),
        ));
        out.push(("rows_scanned".into(), self.rows_scanned.to_string()));
        out.push(("rows_returned".into(), self.rows_returned.to_string()));
        out.push(("cache_hits".into(), self.cache_hits.to_string()));
        out.push(("cache_misses".into(), self.cache_misses.to_string()));
        out.push((
            "unattributed_bytes".into(),
            self.unattributed_bytes().to_string(),
        ));
        for (stage, ns) in &self.stage_ns {
            out.push((format!("time.{stage}_us"), (ns / 1_000).to_string()));
        }
        out.push(("time.total_us".into(), (self.total_ns / 1_000).to_string()));
        out
    }
}

struct Active {
    profile: CostProfile,
    start_ns: u64,
}

thread_local! {
    static ACTIVE: RefCell<Option<Active>> = const { RefCell::new(None) };
    static SOURCE_OVERRIDE: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// RAII guard for an installed cost profile. Dropping it without
/// [`CostGuard::finish`] discards the profile; either way the previously
/// installed profile (if any) is restored, so profiled sections nest.
pub struct CostGuard {
    prev: Option<Active>,
    done: bool,
}

impl CostGuard {
    /// Detach the collected profile, stamping `total_ns`, and restore the
    /// previous context.
    pub fn finish(mut self) -> CostProfile {
        self.done = true;
        let active = ACTIVE.replace(self.prev.take());
        match active {
            Some(a) => {
                let mut p = a.profile;
                p.total_ns = now_ns().saturating_sub(a.start_ns);
                p
            }
            // Unreachable in practice: only `finish`/`drop` remove it.
            None => CostProfile::default(),
        }
    }
}

impl Drop for CostGuard {
    fn drop(&mut self) {
        if !self.done {
            ACTIVE.set(self.prev.take());
        }
    }
}

/// Install a fresh profile for `trace_id` on this thread. The profile
/// collects until the guard is finished or dropped.
pub fn begin(trace_id: u64) -> CostGuard {
    let prev = ACTIVE.replace(Some(Active {
        profile: CostProfile::new(trace_id),
        start_ns: now_ns(),
    }));
    CostGuard { prev, done: false }
}

/// Is a profile currently collecting on this thread? Lets hot paths skip
/// work (clock reads, formatting) when nobody is accounting.
pub fn is_active() -> bool {
    ACTIVE.with_borrow(|a| a.is_some())
}

fn with_active(f: impl FnOnce(&mut CostProfile)) {
    ACTIVE.with_borrow_mut(|a| {
        if let Some(active) = a.as_mut() {
            f(&mut active.profile);
        }
    });
}

/// Attribute `n` bytes read from `source` (`"dfs"`, `"cas"`). When a
/// [`SourceGuard`] is installed, its source wins: a store built *on top*
/// of dfs (the CAS) claims the physical reads it initiates, so every
/// byte is attributed exactly once, to the store that asked for it.
pub fn add_bytes_read(source: &str, n: u64) {
    with_active(|p| {
        let key = SOURCE_OVERRIDE
            .with_borrow(|o| o.clone())
            .unwrap_or_else(|| source.to_string());
        *p.bytes_read.entry(key).or_insert(0) += n;
        p.bytes_read_total += n;
    });
}

/// RAII guard re-attributing nested [`add_bytes_read`] calls; see
/// [`attribute_reads_to`].
pub struct SourceGuard {
    prev: Option<String>,
}

impl Drop for SourceGuard {
    fn drop(&mut self) {
        SOURCE_OVERRIDE.set(self.prev.take());
    }
}

/// Attribute all [`add_bytes_read`] calls on this thread to `source`
/// until the returned guard drops. Used by layered stores (CAS over dfs)
/// so the underlying reads count toward the initiating store instead of
/// being double-attributed.
pub fn attribute_reads_to(source: &str) -> SourceGuard {
    let prev = SOURCE_OVERRIDE.replace(Some(source.to_string()));
    SourceGuard { prev }
}

/// Attribute `n` decompressed output bytes to `codec`.
pub fn add_decompressed(codec: &str, n: u64) {
    with_active(|p| {
        *p.bytes_decompressed.entry(codec.to_string()).or_insert(0) += n;
        p.bytes_decompressed_total += n;
    });
}

/// Record rows iterated and rows produced.
pub fn add_rows(scanned: u64, returned: u64) {
    with_active(|p| {
        p.rows_scanned += scanned;
        p.rows_returned += returned;
    });
}

/// Record that the query touched `epoch`'s data.
pub fn touch_epoch(epoch: u64) {
    with_active(|p| {
        p.epochs_touched.insert(epoch);
    });
}

/// Record an epoch-cache hit.
pub fn cache_hit() {
    with_active(|p| p.cache_hits += 1);
}

/// Record an epoch-cache miss.
pub fn cache_miss() {
    with_active(|p| p.cache_misses += 1);
}

/// Attribute `ns` nanoseconds of wall time to `stage`.
pub fn add_stage_ns(stage: &str, ns: u64) {
    with_active(|p| {
        *p.stage_ns.entry(stage.to_string()).or_insert(0) += ns;
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutators_are_noops_without_an_active_profile() {
        assert!(!is_active());
        add_bytes_read("dfs", 100);
        add_rows(5, 1);
        touch_epoch(7);
        // Nothing panics, nothing sticks: a fresh profile starts empty.
        let g = begin(1);
        let p = g.finish();
        assert_eq!(p.bytes_read_total, 0);
        assert_eq!(p.rows_scanned, 0);
        assert!(p.epochs_touched.is_empty());
    }

    #[test]
    fn profile_collects_and_reconciles() {
        let g = begin(42);
        assert!(is_active());
        add_bytes_read("dfs", 100);
        add_bytes_read("dfs", 50);
        add_bytes_read("cas", 30);
        add_decompressed("gzip-lite", 400);
        add_rows(1000, 10);
        touch_epoch(3);
        touch_epoch(3);
        touch_epoch(5);
        cache_hit();
        cache_miss();
        add_stage_ns("read", 1_000);
        add_stage_ns("read", 500);
        let p = g.finish();
        assert!(!is_active());
        assert_eq!(p.trace_id, 42);
        assert_eq!(p.bytes_read_total, 180);
        assert_eq!(p.bytes_read["dfs"], 150);
        assert_eq!(p.bytes_read["cas"], 30);
        assert_eq!(p.bytes_decompressed_total, 400);
        assert_eq!(p.rows_scanned, 1000);
        assert_eq!(p.rows_returned, 10);
        assert_eq!(
            p.epochs_touched.iter().copied().collect::<Vec<_>>(),
            vec![3, 5]
        );
        assert_eq!(p.cache_hits, 1);
        assert_eq!(p.cache_misses, 1);
        assert_eq!(p.stage_ns["read"], 1_500);
        assert!(p.reconciles());
        assert_eq!(p.unattributed_bytes(), 0);
    }

    #[test]
    fn source_override_reattributes_nested_reads() {
        let g = begin(3);
        add_bytes_read("dfs", 10);
        {
            let _cas = attribute_reads_to("cas");
            // A layered store's internal dfs reads count as "cas".
            add_bytes_read("dfs", 90);
        }
        add_bytes_read("dfs", 5);
        let p = g.finish();
        assert_eq!(p.bytes_read["dfs"], 15);
        assert_eq!(p.bytes_read["cas"], 90);
        assert_eq!(p.bytes_read_total, 105);
        assert!(p.reconciles());
    }

    #[test]
    fn unattributed_bytes_detects_a_leak() {
        let mut p = CostProfile::new(1);
        p.bytes_read.insert("dfs".into(), 100);
        p.bytes_read_total = 120; // 20 bytes nobody attributed
        assert!(!p.reconciles());
        assert_eq!(p.unattributed_bytes(), 20);
    }

    #[test]
    fn guards_nest_and_restore_the_outer_profile() {
        let outer = begin(1);
        add_bytes_read("dfs", 10);
        {
            let inner = begin(2);
            add_bytes_read("dfs", 999);
            let p = inner.finish();
            assert_eq!(p.trace_id, 2);
            assert_eq!(p.bytes_read_total, 999);
        }
        // Back on the outer profile.
        add_bytes_read("dfs", 5);
        let p = outer.finish();
        assert_eq!(p.trace_id, 1);
        assert_eq!(p.bytes_read_total, 15);
    }

    #[test]
    fn dropping_a_guard_discards_and_restores() {
        let outer = begin(1);
        {
            let _inner = begin(2);
            add_rows(100, 100);
            // dropped unfinished: profile 2 is discarded
        }
        add_rows(1, 1);
        let p = outer.finish();
        assert_eq!(p.rows_scanned, 1);
    }

    #[test]
    fn rows_render_breakdowns_and_totals() {
        let g = begin(9);
        add_bytes_read("dfs", 64);
        add_decompressed("zstd-lite", 256);
        add_rows(8, 2);
        let p = g.finish();
        let rows = p.rows();
        let get = |k: &str| {
            rows.iter()
                .find(|(m, _)| m == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing row {k}"))
        };
        assert_eq!(get("bytes_read.dfs"), "64");
        assert_eq!(get("bytes_read.total"), "64");
        assert_eq!(get("bytes_decompressed.zstd-lite"), "256");
        assert_eq!(get("rows_scanned"), "8");
        assert_eq!(get("rows_returned"), "2");
        assert_eq!(get("unattributed_bytes"), "0");
        assert!(rows.iter().any(|(m, _)| m == "time.total_us"));
    }
}
