//! Metric primitives: counters, gauges and log-bucketed histograms.
//!
//! All three are lock-free on the record path (plain atomics) so that a
//! single metric value can be hammered from every worker thread of the
//! engine without serializing them. Histograms use HDR-style buckets:
//! power-of-two ranges refined by [`SUB`] linear sub-buckets, which bounds
//! the relative quantile error to `1 / SUB` while keeping the whole
//! structure a fixed-size array of atomics.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event/byte counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed value (queue depths, cache occupancy, ...).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Linear sub-buckets per power-of-two range (log2).
const SUB_BITS: u32 = 5;
/// Linear sub-buckets per power-of-two range.
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count: one group of `SUB` exact buckets for values
/// `0..SUB`, then one group of `SUB` sub-buckets per exponent
/// `SUB_BITS..=63` — `(1 + 64 - SUB_BITS) * SUB` in all.
const N_BUCKETS: usize = (1 + 64 - SUB_BITS as usize) * SUB;

/// Map a value to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) as usize) & (SUB - 1);
    ((msb - SUB_BITS) as usize + 1) * SUB + sub
}

/// Inclusive lower bound of a bucket. Computed in `u128` because the
/// bound one past the final bucket is `2^64`, then saturated: callers
/// only use it for widths and monotonicity checks.
fn bucket_low(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let msb = (i / SUB - 1) as u32 + SUB_BITS;
    let sub = (i % SUB) as u128;
    let low = ((1u128 << SUB_BITS) | sub) << (msb - SUB_BITS);
    u64::try_from(low).unwrap_or(u64::MAX)
}

/// Representative (midpoint) value of a bucket, used for quantiles.
fn bucket_mid(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let low = bucket_low(i);
    let width = bucket_low(i + 1).saturating_sub(low);
    low + width / 2
}

/// A fixed-size log-bucketed histogram of `u64` observations
/// (nanoseconds, bytes, row counts...).
///
/// Power-of-two buckets with [`SUB`] linear sub-buckets each bound the
/// relative error of any reported quantile to `1/SUB` (~3%); `count`,
/// `sum`, `min` and `max` are exact.
pub struct Histogram {
    buckets: Box<[AtomicU64; N_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(f, "Histogram({s:?})")
    }
}

impl Histogram {
    pub fn new() -> Self {
        // Box the bucket array directly; a Vec round-trip would allocate
        // the same storage but without the fixed-size type.
        let buckets: Box<[AtomicU64; N_BUCKETS]> = (0..N_BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice()
            .try_into()
            .expect("bucket count is fixed");
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`); 0 on an empty histogram.
    /// The estimate is the recording bucket's midpoint, clamped to the
    /// exact observed min/max.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                let min = self.min.load(Ordering::Relaxed);
                let max = self.max.load(Ordering::Relaxed);
                return bucket_mid(i).clamp(min, max);
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Raw bucket occupancy counts. Two snapshots taken over time give a
    /// *windowed* view: subtract element-wise and feed the deltas to
    /// [`Histogram::quantile_of_counts`] for the quantile of just that
    /// window — how the meta-highlights monitor watches p99 drift without
    /// resetting the histogram.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimate the `q`-quantile of an explicit bucket-count vector (as
    /// produced by [`Histogram::bucket_counts`], or a delta of two such
    /// vectors); 0 when empty.
    pub fn quantile_of_counts(counts: &[u64], q: f64) -> u64 {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_mid(i);
            }
        }
        0
    }

    /// A consistent-enough point-in-time view (each field individually
    /// exact; fields may straddle concurrent records).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let c = Counter::default();
        c.add(5);
        c.inc();
        assert_eq!(c.get(), 6);
        let g = Gauge::default();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_mapping_is_monotone_and_consistent() {
        let mut last = 0usize;
        for v in (0u64..100_000).step_by(7) {
            let i = bucket_index(v);
            assert!(i >= last || bucket_low(i) == bucket_low(last));
            assert!(bucket_low(i) <= v, "low {} > v {}", bucket_low(i), v);
            assert!(
                v < bucket_low(i + 1),
                "v {} >= next {}",
                v,
                bucket_low(i + 1)
            );
            last = i;
        }
        // Extremes stay in range.
        assert!(bucket_index(u64::MAX) < N_BUCKETS);
        assert_eq!(bucket_index(0), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUB as u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), SUB as u64 - 1);
        assert_eq!(h.count(), SUB as u64);
        assert_eq!(h.sum(), (SUB as u64 * (SUB as u64 - 1)) / 2);
    }

    #[test]
    fn windowed_quantiles_from_bucket_deltas() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(100);
        }
        let before = h.bucket_counts();
        for _ in 0..100 {
            h.record(100_000);
        }
        let after = h.bucket_counts();
        let delta: Vec<u64> = after.iter().zip(&before).map(|(a, b)| a - b).collect();
        // The whole histogram's p50 straddles both bursts, but the
        // window saw only the slow one.
        let p50 = Histogram::quantile_of_counts(&delta, 0.50);
        assert!(p50 > 90_000, "{p50}");
        // Unclamped bucket midpoint: within 1/SUB relative error of 100.
        let p100 = Histogram::quantile_of_counts(&before, 1.0);
        assert!((97..=104).contains(&p100), "{p100}");
        assert_eq!(Histogram::quantile_of_counts(&[], 0.5), 0);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(
            s,
            HistogramSnapshot {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                p50: 0,
                p90: 0,
                p99: 0
            }
        );
        assert_eq!(s.mean(), 0.0);
    }
}
