//! Exporters: Prometheus-style text dump, sorted flame table, and JSON.

use crate::registry::Registry;
use crate::span::SpanStats;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Sanitize a metric name for the Prometheus exposition format.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Prometheus-style text exposition of every counter, gauge, histogram
/// and span in the registry.
pub fn prometheus_text(registry: &Registry) -> String {
    let mut out = String::new();
    for (name, c) in registry.counters_snapshot() {
        let n = prom_name(&name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {}", c.get());
    }
    for (name, g) in registry.gauges_snapshot() {
        let n = prom_name(&name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", g.get());
    }
    for (name, h) in registry.histograms_snapshot() {
        let n = prom_name(&name);
        let s = h.snapshot();
        let _ = writeln!(out, "# TYPE {n} summary");
        for (q, v) in [(0.5, s.p50), (0.9, s.p90), (0.99, s.p99)] {
            let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {v}");
        }
        let _ = writeln!(out, "{n}_sum {}", s.sum);
        let _ = writeln!(out, "{n}_count {}", s.count);
    }
    for (path, st) in registry.spans_snapshot() {
        let d = st.durations.snapshot();
        let _ = writeln!(out, "# TYPE span_seconds summary");
        for (q, v) in [(0.5, d.p50), (0.9, d.p90), (0.99, d.p99)] {
            let _ = writeln!(
                out,
                "span_seconds{{path=\"{path}\",quantile=\"{q}\"}} {:.9}",
                v as f64 / 1e9
            );
        }
        let _ = writeln!(
            out,
            "span_seconds_sum{{path=\"{path}\"}} {:.9}",
            st.total_ns.load(Ordering::Relaxed) as f64 / 1e9
        );
        let _ = writeln!(
            out,
            "span_seconds_count{{path=\"{path}\"}} {}",
            st.calls.load(Ordering::Relaxed)
        );
    }
    out
}

/// One resolved row of the flame table.
struct SpanRow {
    path: String,
    calls: u64,
    total_ns: u64,
    self_ns: u64,
    p99_ns: u64,
}

fn span_rows(registry: &Registry) -> Vec<SpanRow> {
    registry
        .spans_snapshot()
        .into_iter()
        .map(|(path, st): (String, Arc<SpanStats>)| SpanRow {
            path,
            calls: st.calls.load(Ordering::Relaxed),
            total_ns: st.total_ns.load(Ordering::Relaxed),
            self_ns: st.self_ns.load(Ordering::Relaxed),
            p99_ns: st.durations.quantile(0.99),
        })
        .collect()
}

/// The flame table: every span path as an indented tree, siblings sorted
/// by total time (descending), with calls / total / self / p99 columns.
pub fn flame_table(registry: &Registry) -> String {
    let rows = span_rows(registry);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<44} {:>9} {:>11} {:>11} {:>10}",
        "span", "calls", "total(s)", "self(s)", "p99(ms)"
    );
    let _ = writeln!(out, "{}", "-".repeat(89));
    // Tree order: recurse from the roots, children sorted by total desc.
    fn emit(out: &mut String, rows: &[SpanRow], parent: Option<&str>, depth: usize) {
        let mut children: Vec<&SpanRow> = rows
            .iter()
            .filter(|r| match parent {
                None => !r.path.contains(';'),
                Some(p) => r
                    .path
                    .strip_prefix(p)
                    .is_some_and(|rest| rest.starts_with(';') && !rest[1..].contains(';')),
            })
            .collect();
        children.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
        for row in children {
            let name = row.path.rsplit(';').next().unwrap_or(&row.path);
            let _ = writeln!(
                out,
                "{:<44} {:>9} {:>11.4} {:>11.4} {:>10.3}",
                format!("{}{}", "  ".repeat(depth), name),
                row.calls,
                row.total_ns as f64 / 1e9,
                row.self_ns as f64 / 1e9,
                row.p99_ns as f64 / 1e6
            );
            emit(out, rows, Some(&row.path), depth + 1);
        }
    }
    emit(&mut out, &rows, None, 0);
    out
}

/// Escape a string for a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The whole registry as a JSON document (machine consumption: BENCH_*
/// trajectories, dashboards). Self-contained — no serde.
pub fn json(registry: &Registry) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    let counters = registry.counters_snapshot();
    for (i, (name, c)) in counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {}", json_escape(name), c.get());
    }
    out.push_str("\n  },\n  \"gauges\": {");
    let gauges = registry.gauges_snapshot();
    for (i, (name, g)) in gauges.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {}", json_escape(name), g.get());
    }
    out.push_str("\n  },\n  \"histograms\": {");
    let hists = registry.histograms_snapshot();
    for (i, (name, h)) in hists.iter().enumerate() {
        let s = h.snapshot();
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
            json_escape(name),
            s.count,
            s.sum,
            s.min,
            s.max,
            s.p50,
            s.p90,
            s.p99
        );
    }
    out.push_str("\n  },\n  \"spans\": {");
    let spans = span_rows(registry);
    for (i, r) in spans.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    \"{}\": {{\"calls\": {}, \"total_ns\": {}, \"self_ns\": {}, \"p99_ns\": {}}}",
            json_escape(&r.path),
            r.calls,
            r.total_ns,
            r.self_ns,
            r.p99_ns
        );
    }
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("dfs.read.ops").add(3);
        r.counter("codecs.gzip-lite.compress.bytes_in").add(1000);
        r.gauge("cache.bytes").set(42);
        let h = r.histogram("dfs.write.pipeline_ns");
        for v in [100, 200, 300] {
            h.record(v);
        }
        let s = r.span_stats("spate.ingest");
        s.calls.fetch_add(2, Ordering::Relaxed);
        s.total_ns.fetch_add(2_000_000, Ordering::Relaxed);
        s.self_ns.fetch_add(500_000, Ordering::Relaxed);
        s.durations.record(1_000_000);
        let c = r.span_stats("spate.ingest;compress");
        c.calls.fetch_add(2, Ordering::Relaxed);
        c.total_ns.fetch_add(1_500_000, Ordering::Relaxed);
        c.self_ns.fetch_add(1_500_000, Ordering::Relaxed);
        c.durations.record(750_000);
        r
    }

    #[test]
    fn prometheus_text_sanitizes_names() {
        let text = prometheus_text(&sample_registry());
        assert!(text.contains("dfs_read_ops 3"));
        assert!(text.contains("codecs_gzip_lite_compress_bytes_in 1000"));
        assert!(text.contains("# TYPE cache_bytes gauge"));
        assert!(text.contains("dfs_write_pipeline_ns_count 3"));
        assert!(text.contains("span_seconds_count{path=\"spate.ingest\"} 2"));
    }

    #[test]
    fn flame_table_nests_children_under_parents() {
        let table = flame_table(&sample_registry());
        let parent_line = table.lines().position(|l| l.starts_with("spate.ingest"));
        let child_line = table.lines().position(|l| l.starts_with("  compress"));
        assert!(parent_line.is_some() && child_line.is_some(), "{table}");
        assert!(child_line > parent_line);
    }

    #[test]
    fn json_is_well_formed() {
        let doc = json(&sample_registry());
        // Structural sanity without a JSON parser: balanced braces, the
        // four sections, and no trailing commas before closers.
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        for section in ["\"counters\"", "\"gauges\"", "\"histograms\"", "\"spans\""] {
            assert!(doc.contains(section), "{doc}");
        }
        assert!(!doc.contains(",\n  }"));
        assert!(doc.contains("\"spate.ingest;compress\""));
    }
}
