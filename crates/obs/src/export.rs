//! Exporters: Prometheus-style text dump, sorted flame table, JSON, and
//! flight-recorder views (Chrome `trace_event` JSON, per-trace tree).

use crate::flight::{EventKind, SpanEvent};
use crate::registry::Registry;
use crate::span::SpanStats;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Sanitize a metric name for the Prometheus exposition format.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escape a label *value* per the exposition format: backslash, double
/// quote and line feed. (Label names are sanitized like metric names.)
fn prom_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a label set (plus an optional extra label) as `{k="v",...}`,
/// or the empty string when there is nothing to render.
fn prom_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut items: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", prom_name(k), prom_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        items.push(format!("{k}=\"{}\"", prom_label_value(v)));
    }
    if items.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", items.join(","))
    }
}

/// Prometheus-style text exposition of every counter, gauge, histogram
/// and span in the registry: `# HELP` / `# TYPE` once per family, label
/// values escaped, so real scrapers parse it.
pub fn prometheus_text(registry: &Registry) -> String {
    let mut out = String::new();
    for (name, c) in registry.counters_snapshot() {
        let n = prom_name(&name);
        let _ = writeln!(out, "# HELP {n} Workspace counter `{name}`.");
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {}", c.get());
    }
    for (name, g) in registry.gauges_snapshot() {
        let n = prom_name(&name);
        let _ = writeln!(out, "# HELP {n} Workspace gauge `{name}`.");
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", g.get());
    }
    // Histogram series arrive sorted by (name, labels); emit the family
    // header exactly once, when the name changes.
    let mut family: Option<String> = None;
    for (id, h) in registry.histograms_snapshot() {
        let n = prom_name(id.name());
        if family.as_deref() != Some(id.name()) {
            let _ = writeln!(out, "# HELP {n} Workspace histogram `{}`.", id.name());
            let _ = writeln!(out, "# TYPE {n} summary");
            family = Some(id.name().to_string());
        }
        let s = h.snapshot();
        for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
            let labels = prom_labels(id.labels(), Some(("quantile", q)));
            let _ = writeln!(out, "{n}{labels} {v}");
        }
        let bare = prom_labels(id.labels(), None);
        let _ = writeln!(out, "{n}_sum{bare} {}", s.sum);
        let _ = writeln!(out, "{n}_count{bare} {}", s.count);
    }
    let spans = registry.spans_snapshot();
    if !spans.is_empty() {
        let _ = writeln!(
            out,
            "# HELP span_seconds Tracing span durations by `;`-joined path."
        );
        let _ = writeln!(out, "# TYPE span_seconds summary");
    }
    for (path, st) in spans {
        let d = st.durations.snapshot();
        let path = prom_label_value(&path);
        for (q, v) in [(0.5, d.p50), (0.9, d.p90), (0.99, d.p99)] {
            let _ = writeln!(
                out,
                "span_seconds{{path=\"{path}\",quantile=\"{q}\"}} {:.9}",
                v as f64 / 1e9
            );
        }
        let _ = writeln!(
            out,
            "span_seconds_sum{{path=\"{path}\"}} {:.9}",
            st.total_ns.load(Ordering::Relaxed) as f64 / 1e9
        );
        let _ = writeln!(
            out,
            "span_seconds_count{{path=\"{path}\"}} {}",
            st.calls.load(Ordering::Relaxed)
        );
    }
    out
}

/// One resolved row of the flame table.
struct SpanRow {
    path: String,
    calls: u64,
    total_ns: u64,
    self_ns: u64,
    p99_ns: u64,
}

fn span_rows(registry: &Registry) -> Vec<SpanRow> {
    registry
        .spans_snapshot()
        .into_iter()
        .map(|(path, st): (String, Arc<SpanStats>)| SpanRow {
            path,
            calls: st.calls.load(Ordering::Relaxed),
            total_ns: st.total_ns.load(Ordering::Relaxed),
            self_ns: st.self_ns.load(Ordering::Relaxed),
            p99_ns: st.durations.quantile(0.99),
        })
        .collect()
}

/// The flame table: every span path as an indented tree, siblings sorted
/// by total time (descending), with calls / total / self / p99 columns.
pub fn flame_table(registry: &Registry) -> String {
    let rows = span_rows(registry);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<44} {:>9} {:>11} {:>11} {:>10}",
        "span", "calls", "total(s)", "self(s)", "p99(ms)"
    );
    let _ = writeln!(out, "{}", "-".repeat(89));
    // Tree order: recurse from the roots, children sorted by total desc.
    fn emit(out: &mut String, rows: &[SpanRow], parent: Option<&str>, depth: usize) {
        let mut children: Vec<&SpanRow> = rows
            .iter()
            .filter(|r| match parent {
                None => !r.path.contains(';'),
                Some(p) => r
                    .path
                    .strip_prefix(p)
                    .is_some_and(|rest| rest.starts_with(';') && !rest[1..].contains(';')),
            })
            .collect();
        children.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
        for row in children {
            let name = row.path.rsplit(';').next().unwrap_or(&row.path);
            let _ = writeln!(
                out,
                "{:<44} {:>9} {:>11.4} {:>11.4} {:>10.3}",
                format!("{}{}", "  ".repeat(depth), name),
                row.calls,
                row.total_ns as f64 / 1e9,
                row.self_ns as f64 / 1e9,
                row.p99_ns as f64 / 1e6
            );
            emit(out, rows, Some(&row.path), depth + 1);
        }
    }
    emit(&mut out, &rows, None, 0);
    out
}

/// Escape a string for a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The whole registry as a JSON document (machine consumption: BENCH_*
/// trajectories, dashboards). Self-contained — no serde.
pub fn json(registry: &Registry) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    let counters = registry.counters_snapshot();
    for (i, (name, c)) in counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {}", json_escape(name), c.get());
    }
    out.push_str("\n  },\n  \"gauges\": {");
    let gauges = registry.gauges_snapshot();
    for (i, (name, g)) in gauges.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {}", json_escape(name), g.get());
    }
    out.push_str("\n  },\n  \"histograms\": {");
    let hists = registry.histograms_snapshot();
    for (i, (id, h)) in hists.iter().enumerate() {
        let s = h.snapshot();
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
            json_escape(&id.to_string()),
            s.count,
            s.sum,
            s.min,
            s.max,
            s.p50,
            s.p90,
            s.p99
        );
    }
    out.push_str("\n  },\n  \"spans\": {");
    let spans = span_rows(registry);
    for (i, r) in spans.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    \"{}\": {{\"calls\": {}, \"total_ns\": {}, \"self_ns\": {}, \"p99_ns\": {}}}",
            json_escape(&r.path),
            r.calls,
            r.total_ns,
            r.self_ns,
            r.p99_ns
        );
    }
    out.push_str("\n  }\n}\n");
    out
}

fn json_args(ev: &SpanEvent) -> String {
    let mut out = format!(
        "{{\"span_id\": {}, \"parent_id\": {}",
        ev.span_id, ev.parent_id
    );
    for (k, v) in &ev.args {
        let _ = write!(out, ", \"{}\": \"{}\"", json_escape(k), json_escape(v));
    }
    out.push('}');
    out
}

/// Flight-recorder events as Chrome `trace_event` JSON (the object form:
/// `{"traceEvents": [...]}`), loadable in `chrome://tracing` / Perfetto.
/// Spans become complete (`"ph": "X"`) events, instants become
/// thread-scoped instant (`"ph": "i"`) events; the trace id is mapped to
/// the `tid` so each request renders as its own track.
pub fn chrome_trace(events: &[SpanEvent]) -> String {
    let mut out = String::from("{\"traceEvents\": [");
    for (i, ev) in events.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let ts = ev.start_ns as f64 / 1e3;
        let common = format!(
            "\"name\": \"{}\", \"cat\": \"spate\", \"ts\": {ts:.3}, \"pid\": 1, \"tid\": {}, \"args\": {}",
            json_escape(&ev.name),
            ev.trace_id,
            json_args(ev)
        );
        match ev.kind {
            EventKind::Span => {
                let dur = ev.dur_ns as f64 / 1e3;
                let _ = write!(
                    out,
                    "{sep}\n  {{\"ph\": \"X\", \"dur\": {dur:.3}, {common}}}"
                );
            }
            EventKind::Instant => {
                let _ = write!(out, "{sep}\n  {{\"ph\": \"i\", \"s\": \"t\", {common}}}");
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// One trace's events as an indented tree, children ordered by span id
/// (start order). Events whose parent was already overwritten in the
/// ring render as roots; instants render with an `@` marker.
pub fn trace_tree(events: &[SpanEvent]) -> String {
    let mut events: Vec<&SpanEvent> = events.iter().collect();
    events.sort_by_key(|e| e.span_id);
    let known: std::collections::BTreeSet<u64> = events
        .iter()
        .filter(|e| e.span_id != 0)
        .map(|e| e.span_id)
        .collect();
    let mut out = String::new();
    fn emit(
        out: &mut String,
        events: &[&SpanEvent],
        known: &std::collections::BTreeSet<u64>,
        parent: u64,
        depth: usize,
    ) {
        for ev in events.iter().filter(|e| {
            if parent == 0 {
                e.parent_id == 0 || !known.contains(&e.parent_id)
            } else {
                e.parent_id == parent
            }
        }) {
            let indent = "  ".repeat(depth);
            let args: String = ev.args.iter().map(|(k, v)| format!("  {k}={v}")).collect();
            match ev.kind {
                EventKind::Span => {
                    let _ = writeln!(
                        out,
                        "{indent}{}  {:.3}ms{args}",
                        ev.name,
                        ev.dur_ns as f64 / 1e6
                    );
                }
                EventKind::Instant => {
                    let _ = writeln!(out, "{indent}@ {}{args}", ev.name);
                }
            }
            if ev.span_id != 0 {
                emit(out, events, known, ev.span_id, depth + 1);
            }
        }
    }
    emit(&mut out, &events, &known, 0, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("dfs.read.ops").add(3);
        r.counter("codecs.gzip-lite.compress.bytes_in").add(1000);
        r.gauge("cache.bytes").set(42);
        let h = r.histogram("dfs.write.pipeline_ns");
        for v in [100, 200, 300] {
            h.record(v);
        }
        let s = r.span_stats("spate.ingest");
        s.calls.fetch_add(2, Ordering::Relaxed);
        s.total_ns.fetch_add(2_000_000, Ordering::Relaxed);
        s.self_ns.fetch_add(500_000, Ordering::Relaxed);
        s.durations.record(1_000_000);
        let c = r.span_stats("spate.ingest;compress");
        c.calls.fetch_add(2, Ordering::Relaxed);
        c.total_ns.fetch_add(1_500_000, Ordering::Relaxed);
        c.self_ns.fetch_add(1_500_000, Ordering::Relaxed);
        c.durations.record(750_000);
        r
    }

    #[test]
    fn prometheus_text_sanitizes_names() {
        let text = prometheus_text(&sample_registry());
        assert!(text.contains("dfs_read_ops 3"));
        assert!(text.contains("codecs_gzip_lite_compress_bytes_in 1000"));
        assert!(text.contains("# TYPE cache_bytes gauge"));
        assert!(text.contains("dfs_write_pipeline_ns_count 3"));
        assert!(text.contains("span_seconds_count{path=\"spate.ingest\"} 2"));
    }

    #[test]
    fn prometheus_emits_help_and_one_type_line_per_family() {
        let r = sample_registry();
        r.histogram_labeled("serve.latency_us", &[("class", "interactive")])
            .record(100);
        r.histogram_labeled("serve.latency_us", &[("class", "scan")])
            .record(9000);
        let text = prometheus_text(&r);
        assert_eq!(
            text.matches("# TYPE serve_latency_us summary").count(),
            1,
            "{text}"
        );
        assert_eq!(text.matches("# HELP serve_latency_us ").count(), 1);
        // Two span paths, still one family header.
        assert_eq!(text.matches("# TYPE span_seconds summary").count(), 1);
        assert!(text.contains("serve_latency_us{class=\"interactive\",quantile=\"0.5\"}"));
        assert!(text.contains("serve_latency_us_count{class=\"scan\"} 1"));
        // Every HELP is immediately followed by its TYPE.
        let lines: Vec<&str> = text.lines().collect();
        for (i, l) in lines.iter().enumerate() {
            if let Some(rest) = l.strip_prefix("# HELP ") {
                let fam = rest.split_whitespace().next().unwrap();
                assert!(
                    lines[i + 1].starts_with(&format!("# TYPE {fam} ")),
                    "{l} not followed by TYPE"
                );
            }
        }
    }

    #[test]
    fn prometheus_escapes_label_values() {
        let r = Registry::new();
        r.histogram_labeled("h", &[("q", "a\"b\\c\nd")]).record(1);
        let text = prometheus_text(&r);
        assert!(text.contains("q=\"a\\\"b\\\\c\\nd\""), "{text}");
        // The raw newline must not survive into the line.
        assert!(!text.lines().any(|l| l == "d\""), "{text}");
    }

    #[test]
    fn prometheus_escaping_survives_adversarial_label_values() {
        // Adjacent escape-relevant characters: a raw `\"` sequence must
        // become `\\\"` (escaped backslash, then escaped quote), and a
        // trailing backslash must not swallow the closing quote.
        let r = Registry::new();
        r.histogram_labeled("lat", &[("path", "a\\\"b")]).record(1);
        r.histogram_labeled("lat", &[("path", "trailing\\")])
            .record(2);
        r.histogram_labeled("lat", &[("path", "\"quoted\"")])
            .record(3);
        let text = prometheus_text(&r);
        assert!(text.contains("path=\"a\\\\\\\"b\""), "{text}");
        assert!(text.contains("path=\"trailing\\\\\""), "{text}");
        assert!(text.contains("path=\"\\\"quoted\\\"\""), "{text}");
        // All three are series of one family: exactly one TYPE header,
        // and each series keeps its own _count line.
        assert_eq!(text.matches("# TYPE lat summary").count(), 1);
        assert!(text.contains("lat_count{path=\"a\\\\\\\"b\"} 1"));
        assert!(text.contains("lat_sum{path=\"trailing\\\\\"} 2"));
        assert!(text.contains("lat_count{path=\"trailing\\\\\"} 1"));
        // Every emitted line has balanced (even) unescaped quotes, i.e.
        // a scraper tokenizing on unescaped `"` never runs off the line.
        for line in text.lines() {
            let mut quotes = 0;
            let mut escaped = false;
            for c in line.chars() {
                match c {
                    '\\' if !escaped => escaped = true,
                    '"' if !escaped => quotes += 1,
                    _ => escaped = false,
                }
            }
            assert_eq!(quotes % 2, 0, "unbalanced quotes in {line:?}");
        }
    }

    #[test]
    fn json_export_escapes_labeled_series_keys() {
        // The JSON exporter keys histograms by the MetricId display form,
        // which embeds quotes around label values — those must be escaped
        // into valid JSON, including backslashes in the value itself.
        let r = Registry::new();
        r.histogram_labeled("h", &[("q", "a\"b\\c")]).record(5);
        let doc = json(&r);
        assert!(doc.contains("\"h{q=\\\"a\\\"b\\\\c\\\"}\""), "{doc}");
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn flame_table_nests_children_under_parents() {
        let table = flame_table(&sample_registry());
        let parent_line = table.lines().position(|l| l.starts_with("spate.ingest"));
        let child_line = table.lines().position(|l| l.starts_with("  compress"));
        assert!(parent_line.is_some() && child_line.is_some(), "{table}");
        assert!(child_line > parent_line);
    }

    #[test]
    fn json_is_well_formed() {
        let doc = json(&sample_registry());
        // Structural sanity without a JSON parser: balanced braces, the
        // four sections, and no trailing commas before closers.
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        for section in ["\"counters\"", "\"gauges\"", "\"histograms\"", "\"spans\""] {
            assert!(doc.contains(section), "{doc}");
        }
        assert!(!doc.contains(",\n  }"));
        assert!(doc.contains("\"spate.ingest;compress\""));
    }

    fn sample_events() -> Vec<SpanEvent> {
        let span = |span_id, parent_id, name: &str, start_ns, dur_ns| SpanEvent {
            trace_id: 7,
            span_id,
            parent_id,
            name: name.to_string(),
            start_ns,
            dur_ns,
            kind: EventKind::Span,
            args: Vec::new(),
        };
        vec![
            span(1, 0, "serve.request", 1_000, 9_000_000),
            span(2, 1, "serve.evaluate", 2_000, 8_000_000),
            span(3, 2, "dfs.read", 3_000, 4_000_000),
            SpanEvent {
                trace_id: 7,
                span_id: 4,
                parent_id: 2,
                name: "cache".to_string(),
                start_ns: 8_000_000,
                dur_ns: 0,
                kind: EventKind::Instant,
                args: vec![("hits".to_string(), "2".to_string())],
            },
        ]
    }

    #[test]
    fn chrome_trace_is_structurally_valid() {
        let doc = chrome_trace(&sample_events());
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        assert!(doc.starts_with("{\"traceEvents\": ["));
        assert_eq!(doc.matches("\"ph\": \"X\"").count(), 3);
        assert_eq!(doc.matches("\"ph\": \"i\"").count(), 1);
        assert!(doc.contains("\"name\": \"dfs.read\""));
        assert!(doc.contains("\"dur\": 4000.000"));
        assert!(doc.contains("\"tid\": 7"));
        assert!(doc.contains("\"hits\": \"2\""));
        assert!(!doc.contains(",]") && !doc.contains(",}"));
    }

    #[test]
    fn trace_tree_indents_children_and_marks_instants() {
        let tree = trace_tree(&sample_events());
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[0].starts_with("serve.request"), "{tree}");
        assert!(lines[1].starts_with("  serve.evaluate"), "{tree}");
        assert!(lines[2].starts_with("    dfs.read"), "{tree}");
        assert!(lines[3].starts_with("    @ cache  hits=2"), "{tree}");
    }

    #[test]
    fn trace_tree_orphans_render_as_roots() {
        // Parent span 1 was overwritten in the ring; its child must still
        // appear instead of silently vanishing.
        let mut events = sample_events();
        events.remove(0);
        let tree = trace_tree(&events);
        assert!(tree.lines().next().unwrap().starts_with("serve.evaluate"));
        assert_eq!(tree.lines().count(), 3);
    }
}
