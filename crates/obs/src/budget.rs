//! Cooperative cancellation and per-request deadline budgets.
//!
//! A request admitted by the serve tier may carry a wall-clock deadline
//! and may be cancelled by the client mid-flight (the `Cancel` control
//! frame). Neither concern belongs in library call signatures: the dfs
//! retry loop and the per-epoch scan boundary in the core query loop
//! should be able to ask *"should I keep going?"* without every caller
//! threading a token through.
//!
//! The mechanism mirrors [`crate::cost`]: a thread-local slot holding
//! the active budget, installed by [`begin`] on the worker thread that
//! evaluates the request and restored by the returned [`BudgetGuard`].
//! Library crates call [`interrupted`] at natural checkpoint boundaries
//! (between epochs, before a retry sleep); when no budget is installed
//! the check is `None` — a no-op — so batch pipelines, ingest and tests
//! pay nothing.
//!
//! Interruption is **cooperative and monotonic**: once a budget reports
//! [`Interrupt::Cancelled`] or [`Interrupt::DeadlineExceeded`] it will
//! keep reporting it, so callers may act on the first observation
//! (stop scanning, mark remaining epochs unavailable, return
//! `Partial`) without re-checking semantics.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a checkpoint decided to stop. Ordered by precedence: an explicit
/// client cancel is reported even if the deadline has also passed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// The client sent a `Cancel` frame (or the server is shutting down).
    Cancelled,
    /// The request's wall-clock deadline has passed.
    DeadlineExceeded,
}

/// Shared cancel flag: the reader thread flips it, the worker observes
/// it at the next checkpoint. Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; visible at the next checkpoint.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

struct ActiveBudget {
    deadline: Option<Instant>,
    cancel: CancelFlag,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveBudget>> = const { RefCell::new(None) };
}

/// RAII guard for an installed budget; restores the previously active
/// budget (usually none) when dropped, panic or not.
pub struct BudgetGuard {
    prev: Option<ActiveBudget>,
}

/// Install a request budget on this thread. `deadline` is the absolute
/// instant the request expires (`None` = no time budget); `cancel` is
/// the shared flag a reader thread flips on a client `Cancel`.
#[must_use = "dropping the guard immediately uninstalls the budget"]
pub fn begin(deadline: Option<Instant>, cancel: CancelFlag) -> BudgetGuard {
    let prev = ACTIVE.replace(Some(ActiveBudget { deadline, cancel }));
    BudgetGuard { prev }
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        ACTIVE.set(self.prev.take());
    }
}

/// Is a budget installed on this thread?
pub fn is_active() -> bool {
    ACTIVE.with_borrow(|a| a.is_some())
}

/// Checkpoint: should the work in progress stop? `None` means carry on
/// (including when no budget is installed at all — library code calls
/// this unconditionally). Cancellation takes precedence over deadline
/// expiry so a cancelled request is reported as cancelled even when
/// its deadline has also passed.
pub fn interrupted() -> Option<Interrupt> {
    ACTIVE.with_borrow(|a| {
        let b = a.as_ref()?;
        if b.cancel.is_cancelled() {
            return Some(Interrupt::Cancelled);
        }
        match b.deadline {
            Some(d) if Instant::now() >= d => Some(Interrupt::DeadlineExceeded),
            _ => None,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn no_budget_means_no_interrupt() {
        assert!(!is_active());
        assert_eq!(interrupted(), None);
    }

    #[test]
    fn guard_installs_and_restores() {
        assert!(!is_active());
        {
            let _g = begin(None, CancelFlag::new());
            assert!(is_active());
            assert_eq!(interrupted(), None);
        }
        assert!(!is_active());
    }

    #[test]
    fn cancel_flag_trips_checkpoints() {
        let flag = CancelFlag::new();
        let _g = begin(None, flag.clone());
        assert_eq!(interrupted(), None);
        flag.cancel();
        assert_eq!(interrupted(), Some(Interrupt::Cancelled));
        // Monotonic: still interrupted on re-check.
        assert_eq!(interrupted(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn expired_deadline_trips_checkpoints() {
        let past = Instant::now() - Duration::from_millis(1);
        let _g = begin(Some(past), CancelFlag::new());
        assert_eq!(interrupted(), Some(Interrupt::DeadlineExceeded));
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let far = Instant::now() + Duration::from_secs(3600);
        let _g = begin(Some(far), CancelFlag::new());
        assert_eq!(interrupted(), None);
    }

    #[test]
    fn cancel_takes_precedence_over_deadline() {
        let flag = CancelFlag::new();
        flag.cancel();
        let past = Instant::now() - Duration::from_millis(1);
        let _g = begin(Some(past), flag);
        assert_eq!(interrupted(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn nested_budgets_restore_the_outer_one() {
        let outer = CancelFlag::new();
        let _g1 = begin(None, outer.clone());
        {
            let inner = CancelFlag::new();
            let _g2 = begin(None, inner);
            outer.cancel();
            // Inner budget is the active one; outer's flag is invisible.
            assert_eq!(interrupted(), None);
        }
        assert_eq!(interrupted(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn guard_restores_on_panic() {
        let res = std::panic::catch_unwind(|| {
            let _g = begin(None, CancelFlag::new());
            panic!("boom");
        });
        assert!(res.is_err());
        assert!(!is_active());
    }
}
