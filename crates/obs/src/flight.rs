//! The flight recorder: a bounded, lock-light ring buffer of span events.
//!
//! Spans and instant events recorded while a trace context is active (see
//! [`crate::trace`]) land here, not in the aggregated registry: the
//! registry answers "where does time go on average", the flight recorder
//! answers "what did *this* request do". It is sized for the recent past —
//! a fixed number of slots overwritten in arrival order — so memory stays
//! bounded no matter how long the server runs, and a dump after an
//! incident still holds the last few thousand events.
//!
//! Concurrency design: writers claim a slot with one `fetch_add` on the
//! global head, then fill it under that slot's own mutex. There is no
//! recorder-wide lock, so two workers recording events contend only when
//! they hash to the same slot mid-overwrite (capacity apart in sequence
//! numbers). [`FlightRecorder::dump`] locks slots one at a time and sorts
//! by sequence number, so it is safe to call at any moment — including
//! from a panic hook or signal-style "dump everything" path — without
//! stopping writers.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Default slot count of the global recorder; enough for several hundred
/// requests at ~10 events each.
pub const DEFAULT_CAPACITY: usize = 16_384;

/// What a recorded event represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A timed region (has a meaningful `dur_ns`).
    Span,
    /// A point-in-time annotation (`dur_ns == 0`).
    Instant,
}

/// One recorded span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// The request-scoped trace this event belongs to.
    pub trace_id: u64,
    /// Id unique within the trace; 0 for instants recorded outside any
    /// span allocation (e.g. from a thread without the trace installed).
    pub span_id: u64,
    /// Enclosing span's id, or 0 for roots.
    pub parent_id: u64,
    /// Stage label (`"serve.request"`, `"dfs.read"`, ...).
    pub name: String,
    /// Start, nanoseconds since the process trace epoch ([`now_ns`]).
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    pub kind: EventKind,
    /// Structured annotations (`("class", "interactive")`, ...).
    pub args: Vec<(String, String)>,
}

/// One ring slot: sequence number (0 = never written, else 1-based write
/// index) and payload, updated together under the slot's mutex.
struct Slot(Mutex<(u64, Option<SpanEvent>)>);

/// Bounded ring buffer of [`SpanEvent`]s. See the module docs for the
/// locking design.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: (0..capacity.max(1))
                .map(|_| Slot(Mutex::new((0, None))))
                .collect(),
            head: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events written over the recorder's lifetime (≥ retained count).
    pub fn total_recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        (self.total_recorded() as usize).min(self.capacity())
    }

    pub fn is_empty(&self) -> bool {
        self.total_recorded() == 0
    }

    /// Record one event, overwriting the oldest retained event once the
    /// ring is full.
    pub fn record(&self, event: SpanEvent) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[seq as usize % self.slots.len()];
        *slot.0.lock() = (seq + 1, Some(event));
    }

    /// All retained events in arrival order. Concurrent writers may land
    /// events while the dump walks the ring; each slot is still read
    /// atomically, so every returned event is intact.
    pub fn dump(&self) -> Vec<SpanEvent> {
        let mut pairs: Vec<(u64, SpanEvent)> = Vec::with_capacity(self.len());
        for slot in self.slots.iter() {
            let guard = slot.0.lock();
            if let (seq, Some(ev)) = &*guard {
                pairs.push((*seq, ev.clone()));
            }
        }
        pairs.sort_by_key(|(seq, _)| *seq);
        pairs.into_iter().map(|(_, ev)| ev).collect()
    }

    /// The retained events of one trace, ordered by span id (allocation
    /// order, which for single-threaded request execution is also start
    /// order).
    pub fn trace(&self, trace_id: u64) -> Vec<SpanEvent> {
        let mut events: Vec<SpanEvent> = self
            .dump()
            .into_iter()
            .filter(|e| e.trace_id == trace_id)
            .collect();
        events.sort_by_key(|e| e.span_id);
        events
    }

    /// Distinct trace ids among retained events, oldest first.
    pub fn trace_ids(&self) -> Vec<u64> {
        let mut ids = Vec::new();
        for ev in self.dump() {
            if !ids.contains(&ev.trace_id) {
                ids.push(ev.trace_id);
            }
        }
        ids
    }

    /// The most recently started trace, if any.
    pub fn latest_trace_id(&self) -> Option<u64> {
        self.trace_ids().pop()
    }

    /// Drop every retained event (measurement boundary).
    pub fn clear(&self) {
        for slot in self.slots.iter() {
            *slot.0.lock() = (0, None);
        }
        self.head.store(0, Ordering::Relaxed);
    }
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process trace epoch (first call wins). All
/// flight-recorder timestamps share this origin so events from different
/// threads order correctly on one timeline.
pub fn now_ns() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace_id: u64, span_id: u64, name: &str) -> SpanEvent {
        SpanEvent {
            trace_id,
            span_id,
            parent_id: 0,
            name: name.to_string(),
            start_ns: span_id * 10,
            dur_ns: 5,
            kind: EventKind::Span,
            args: Vec::new(),
        }
    }

    #[test]
    fn dump_preserves_arrival_order() {
        let r = FlightRecorder::new(8);
        for i in 0..5 {
            r.record(ev(1, i, "a"));
        }
        let got = r.dump();
        assert_eq!(got.len(), 5);
        assert_eq!(
            got.iter().map(|e| e.span_id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn wraparound_keeps_the_newest_events() {
        let r = FlightRecorder::new(4);
        for i in 0..10 {
            r.record(ev(1, i, "a"));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total_recorded(), 10);
        let got: Vec<u64> = r.dump().iter().map(|e| e.span_id).collect();
        assert_eq!(got, vec![6, 7, 8, 9]);
    }

    #[test]
    fn trace_filters_and_orders_by_span_id() {
        let r = FlightRecorder::new(16);
        r.record(ev(2, 2, "b"));
        r.record(ev(1, 1, "a"));
        r.record(ev(2, 1, "b0"));
        let t = r.trace(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].span_id, 1);
        assert_eq!(t[1].span_id, 2);
        assert_eq!(r.trace_ids(), vec![2, 1]);
    }

    #[test]
    fn wraparound_mid_trace_keeps_the_tail_of_the_trace() {
        // One trace larger than the whole ring: the oldest events of the
        // *same* trace are overwritten while it is still being recorded.
        let r = FlightRecorder::new(4);
        for i in 0..11 {
            r.record(ev(7, i, "stage"));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total_recorded(), 11);
        // trace() must return only the surviving tail, still ordered,
        // with no phantom or torn events from the overwritten prefix.
        let t = r.trace(7);
        assert_eq!(
            t.iter().map(|e| e.span_id).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
        // The trace is still discoverable as the latest one.
        assert_eq!(r.latest_trace_id(), Some(7));
        // Orphaned children are tolerated: an event whose parent was
        // overwritten still comes back intact, parent_id untouched.
        let orphan = SpanEvent {
            parent_id: 2, // span 2 was overwritten long ago
            ..ev(7, 11, "orphan")
        };
        r.record(orphan.clone());
        let t = r.trace(7);
        assert_eq!(t.last(), Some(&orphan));
        assert!(t.iter().all(|e| e.trace_id == 7));
    }

    #[test]
    fn wraparound_interleaved_traces_drop_oldest_first() {
        // Two traces interleaved through a wrapping ring: filtering one
        // trace must not resurrect or miscount the other's slots.
        let r = FlightRecorder::new(6);
        for i in 0..9 {
            r.record(ev(1, i, "a"));
            r.record(ev(2, i, "b"));
        }
        // 18 events through 6 slots: only the newest 6 remain (3 each).
        assert_eq!(r.len(), 6);
        let t1: Vec<u64> = r.trace(1).iter().map(|e| e.span_id).collect();
        let t2: Vec<u64> = r.trace(2).iter().map(|e| e.span_id).collect();
        assert_eq!(t1, vec![6, 7, 8]);
        assert_eq!(t2, vec![6, 7, 8]);
        assert_eq!(r.trace(3), Vec::new());
    }

    #[test]
    fn clear_empties_the_ring() {
        let r = FlightRecorder::new(4);
        r.record(ev(1, 1, "a"));
        r.clear();
        assert!(r.is_empty());
        assert!(r.dump().is_empty());
        assert_eq!(r.latest_trace_id(), None);
    }

    #[test]
    fn concurrent_writers_never_tear_events() {
        let r = std::sync::Arc::new(FlightRecorder::new(64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let r = r.clone();
                s.spawn(move || {
                    for i in 0..500 {
                        r.record(ev(t, i, "w"));
                    }
                });
            }
            // Concurrent dumps must always see whole events.
            let r2 = r.clone();
            s.spawn(move || {
                for _ in 0..50 {
                    for e in r2.dump() {
                        assert_eq!(e.name, "w");
                        assert_eq!(e.start_ns, e.span_id * 10);
                    }
                }
            });
        });
        assert_eq!(r.total_recorded(), 2000);
        assert_eq!(r.len(), 64);
    }
}
