//! The global metric registry: named counters, gauges, histograms and
//! span statistics, created on first use.
//!
//! Histograms are keyed by [`MetricId`] — a name plus an ordered label
//! set — so one logical metric (`serve.latency_us`) can carry per-class
//! series (`class="interactive"` / `class="scan"`) without mangling the
//! label into the name. Counters, gauges and spans remain name-keyed.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::span::SpanStats;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Identity of one metric series: a name plus sorted `(key, value)`
/// labels. `MetricId`s order by name first, so a sorted snapshot groups
/// all series of one family together — what the exporters rely on to
/// emit `# TYPE` once per family.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricId {
    /// An unlabeled series.
    pub fn plain(name: &str) -> Self {
        Self {
            name: name.to_string(),
            labels: Vec::new(),
        }
    }

    /// A labeled series; labels are sorted by key so equal label sets
    /// compare equal regardless of call-site order.
    pub fn labeled(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }
}

impl fmt::Display for MetricId {
    /// `name` or `name{k="v",...}` — the JSON exporter's key form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.labels.is_empty() {
            write!(f, "{{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                write!(f, "{sep}{k}=\"{v}\"")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// A thread-safe registry of named metrics. One process-global instance
/// lives behind [`crate::global`]; independent registries can be created
/// for tests.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<MetricId, Arc<Histogram>>>,
    spans: RwLock<BTreeMap<String, Arc<SpanStats>>>,
}

/// Get-or-create under a read-mostly lock: the fast path is a read lock
/// and an `Arc` clone; only the first use of a name takes the write lock.
fn intern<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(v) = map.read().get(name) {
        return Arc::clone(v);
    }
    Arc::clone(
        map.write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(T::default())),
    )
}

fn intern_id<T: Default>(map: &RwLock<BTreeMap<MetricId, Arc<T>>>, id: &MetricId) -> Arc<T> {
    if let Some(v) = map.read().get(id) {
        return Arc::clone(v);
    }
    Arc::clone(
        map.write()
            .entry(id.clone())
            .or_insert_with(|| Arc::new(T::default())),
    )
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name)
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name)
    }

    /// The unlabeled histogram series `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern_id(&self.histograms, &MetricId::plain(name))
    }

    /// The labeled histogram series `name{labels}`. Hot paths should
    /// resolve the `Arc` once and reuse it rather than re-looking-up per
    /// observation.
    pub fn histogram_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        intern_id(&self.histograms, &MetricId::labeled(name, labels))
    }

    pub fn span_stats(&self, path: &str) -> Arc<SpanStats> {
        intern(&self.spans, path)
    }

    /// Sorted point-in-time views, for the exporters.
    pub fn counters_snapshot(&self) -> Vec<(String, Arc<Counter>)> {
        self.counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    pub fn gauges_snapshot(&self) -> Vec<(String, Arc<Gauge>)> {
        self.gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// All histogram series, sorted by name then labels (family-grouped).
    pub fn histograms_snapshot(&self) -> Vec<(MetricId, Arc<Histogram>)> {
        self.histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    pub fn spans_snapshot(&self) -> Vec<(String, Arc<SpanStats>)> {
        self.spans
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Drop every registered metric and span. Existing `Arc` handles keep
    /// working but are no longer reachable from the registry; spans still
    /// open re-intern their path when they close. See [`crate::reset`]
    /// for the concurrency contract.
    pub fn reset(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
        self.histograms.write().clear();
        self.spans.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_the_same_metric() {
        let r = Registry::new();
        r.counter("a.b.c").add(2);
        r.counter("a.b.c").add(3);
        assert_eq!(r.counter("a.b.c").get(), 5);
        assert_eq!(r.counters_snapshot().len(), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let r = Registry::new();
        r.counter("x").inc();
        r.gauge("y").set(1);
        r.histogram("z").record(1);
        r.span_stats("s");
        r.reset();
        assert!(r.counters_snapshot().is_empty());
        assert!(r.gauges_snapshot().is_empty());
        assert!(r.histograms_snapshot().is_empty());
        assert!(r.spans_snapshot().is_empty());
        assert_eq!(r.counter("x").get(), 0);
    }

    #[test]
    fn snapshots_are_sorted_by_name() {
        let r = Registry::new();
        for n in ["b", "a", "c"] {
            r.counter(n);
        }
        let names: Vec<String> = r.counters_snapshot().into_iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn labeled_series_are_distinct_but_label_order_is_not() {
        let r = Registry::new();
        r.histogram_labeled("lat", &[("class", "interactive")])
            .record(10);
        r.histogram_labeled("lat", &[("class", "scan")]).record(20);
        // Same series regardless of label order at the call site.
        r.histogram_labeled("lat", &[("b", "2"), ("a", "1")])
            .record(1);
        r.histogram_labeled("lat", &[("a", "1"), ("b", "2")])
            .record(2);
        assert_eq!(
            r.histogram_labeled("lat", &[("class", "interactive")])
                .count(),
            1
        );
        assert_eq!(
            r.histogram_labeled("lat", &[("b", "2"), ("a", "1")])
                .count(),
            2
        );
        assert_eq!(r.histograms_snapshot().len(), 3);
        // Unlabeled and labeled series with the same name coexist.
        r.histogram("lat").record(5);
        assert_eq!(r.histograms_snapshot().len(), 4);
    }

    #[test]
    fn metric_id_groups_families_and_displays_labels() {
        let a = MetricId::plain("serve.latency_us");
        let b = MetricId::labeled("serve.latency_us", &[("class", "scan")]);
        let c = MetricId::plain("spate.query");
        assert!(a < b && b < c, "family grouping order");
        assert_eq!(a.to_string(), "serve.latency_us");
        assert_eq!(b.to_string(), "serve.latency_us{class=\"scan\"}");
    }
}
