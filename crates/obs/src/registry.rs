//! The global metric registry: named counters, gauges, histograms and
//! span statistics, created on first use.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::span::SpanStats;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A thread-safe registry of named metrics. One process-global instance
/// lives behind [`crate::global`]; independent registries can be created
/// for tests.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    spans: RwLock<BTreeMap<String, Arc<SpanStats>>>,
}

/// Get-or-create under a read-mostly lock: the fast path is a read lock
/// and an `Arc` clone; only the first use of a name takes the write lock.
fn intern<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(v) = map.read().get(name) {
        return Arc::clone(v);
    }
    Arc::clone(
        map.write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(T::default())),
    )
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name)
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name)
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name)
    }

    pub fn span_stats(&self, path: &str) -> Arc<SpanStats> {
        intern(&self.spans, path)
    }

    /// Sorted point-in-time views, for the exporters.
    pub fn counters_snapshot(&self) -> Vec<(String, Arc<Counter>)> {
        self.counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    pub fn gauges_snapshot(&self) -> Vec<(String, Arc<Gauge>)> {
        self.gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    pub fn histograms_snapshot(&self) -> Vec<(String, Arc<Histogram>)> {
        self.histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    pub fn spans_snapshot(&self) -> Vec<(String, Arc<SpanStats>)> {
        self.spans
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Drop every registered metric and span. Existing `Arc` handles keep
    /// working but are no longer reachable from the registry; spans still
    /// open re-intern their path when they close.
    pub fn reset(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
        self.histograms.write().clear();
        self.spans.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_the_same_metric() {
        let r = Registry::new();
        r.counter("a.b.c").add(2);
        r.counter("a.b.c").add(3);
        assert_eq!(r.counter("a.b.c").get(), 5);
        assert_eq!(r.counters_snapshot().len(), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let r = Registry::new();
        r.counter("x").inc();
        r.gauge("y").set(1);
        r.histogram("z").record(1);
        r.span_stats("s");
        r.reset();
        assert!(r.counters_snapshot().is_empty());
        assert!(r.gauges_snapshot().is_empty());
        assert!(r.histograms_snapshot().is_empty());
        assert!(r.spans_snapshot().is_empty());
        assert_eq!(r.counter("x").get(), 0);
    }

    #[test]
    fn snapshots_are_sorted_by_name() {
        let r = Registry::new();
        for n in ["b", "a", "c"] {
            r.counter(n);
        }
        let names: Vec<String> = r.counters_snapshot().into_iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
