//! Integration tests for the observability substrate: concurrent exactness
//! of the registry, histogram quantile accuracy against a sorted
//! reference, and span-nesting self-time separation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::Ordering;
use std::time::Duration;

/// N threads hammering the same counter and histogram: totals stay exact
/// (the record path is atomic, nothing is sampled or dropped).
#[test]
fn concurrent_registry_is_exact() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 50_000;
    let registry = obs::Registry::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                let counter = registry.counter("stress.counter");
                let hist = registry.histogram("stress.hist");
                for i in 0..PER_THREAD {
                    counter.add(1);
                    hist.record(t * PER_THREAD + i);
                }
            });
        }
    });
    assert_eq!(
        registry.counter("stress.counter").get(),
        THREADS * PER_THREAD
    );
    let hist = registry.histogram("stress.hist");
    assert_eq!(hist.count(), THREADS * PER_THREAD);
    // Sum of 0..N-1 over all recorded values, exactly.
    let n = THREADS * PER_THREAD;
    assert_eq!(hist.sum(), n * (n - 1) / 2);
    let snap = hist.snapshot();
    assert_eq!(snap.min, 0);
    assert_eq!(snap.max, n - 1);
}

/// Log-bucketed quantiles stay within the structural error bound (1/32
/// sub-bucket refinement → ~3.1%, asserted at 5%) of a sorted reference
/// on uniform, exponential-ish and constant distributions.
#[test]
fn histogram_quantiles_track_a_sorted_reference() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let distributions: Vec<(&str, Vec<u64>)> = vec![
        (
            "uniform",
            (0..100_000).map(|_| rng.gen_range(1..1_000_000)).collect(),
        ),
        (
            "exponential",
            (0..100_000)
                .map(|_| {
                    let u: f64 = rng.gen_range(1e-9..1.0);
                    (-u.ln() * 50_000.0) as u64 + 1
                })
                .collect(),
        ),
        ("constant", vec![777; 10_000]),
        ("small", (0..31).collect()),
    ];
    for (name, mut values) in distributions {
        let hist = obs::Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        values.sort_unstable();
        for q in [0.50, 0.90, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let reference = values[rank - 1] as f64;
            let estimate = hist.quantile(q) as f64;
            let err = (estimate - reference).abs() / reference.max(1.0);
            assert!(
                err < 0.05,
                "{name} p{q}: estimate {estimate} vs reference {reference} (err {err:.4})"
            );
        }
        assert_eq!(hist.quantile(1.0), *values.last().unwrap());
    }
}

/// Parent self-time excludes child time: a parent that sleeps 10ms itself
/// and hosts a 30ms child reports ~10ms self, ~40ms total.
#[test]
fn span_nesting_separates_self_from_child_time() {
    {
        let _parent = obs::span("nesting.parent");
        std::thread::sleep(Duration::from_millis(10));
        {
            let _child = obs::span("work");
            std::thread::sleep(Duration::from_millis(30));
        }
    }
    let parent = obs::global().span_stats("nesting.parent");
    let child = obs::global().span_stats("nesting.parent;work");
    assert_eq!(parent.calls.load(Ordering::Relaxed), 1);
    assert_eq!(child.calls.load(Ordering::Relaxed), 1);

    let parent_total = parent.total_ns.load(Ordering::Relaxed);
    let parent_self = parent.self_ns.load(Ordering::Relaxed);
    let child_total = child.total_ns.load(Ordering::Relaxed);
    // Child fully attributed: self + child == total (exact by construction).
    assert_eq!(parent_self + child_total, parent_total);
    // Self covers the parent's own sleep but not the child's (sleeps can
    // overshoot, so only the lower bounds are tight).
    assert!(parent_self >= 9_000_000, "self {parent_self}ns");
    assert!(child_total >= 29_000_000, "child {child_total}ns");
    assert!(
        parent_self < child_total,
        "10ms of self work must not absorb the 30ms child"
    );
    // The child's standalone stats carry its own distribution.
    assert_eq!(child.self_ns.load(Ordering::Relaxed), child_total);
    assert!(child.durations.quantile(0.99) >= 29_000_000);
}

/// Sibling spans on different threads nest under their own thread's
/// parents — stacks are thread-local, not global.
#[test]
fn span_stacks_are_thread_local() {
    std::thread::scope(|scope| {
        for t in 0..4 {
            scope.spawn(move || {
                let _parent = obs::span(if t % 2 == 0 { "tl.even" } else { "tl.odd" });
                let _child = obs::span("leaf");
            });
        }
    });
    let even = obs::global().span_stats("tl.even;leaf");
    let odd = obs::global().span_stats("tl.odd;leaf");
    assert_eq!(even.calls.load(Ordering::Relaxed), 2);
    assert_eq!(odd.calls.load(Ordering::Relaxed), 2);
}
