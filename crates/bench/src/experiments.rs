//! The experiment drivers, one per paper artifact.

use crate::setup::{build_frameworks, ingest_all, BenchConfig, Frameworks};
use codecs::table1_codecs as codec_list;
use codecs::GzipLite;
use dfs::{Dfs, DfsConfig, FaultConfig, FaultStatsSnapshot, IoModel, RepairReport};
use spate_core::framework::{ExplorationFramework, SpateFramework};
use spate_core::index::decay::DecayPolicy;
use spate_core::query::{Coverage, Query, QueryResult};
use spate_core::tasks;
use spate_core::DeltaSnapshotStore;
use std::sync::Arc;
use std::time::Instant;
use telco_trace::cells::BoundingBox;
use telco_trace::entropy::EntropyProfile;
use telco_trace::schema::{cdr, cell, nms};
use telco_trace::time::{DayPeriod, EpochId, Weekday, EPOCHS_PER_DAY};
use telco_trace::TraceGenerator;

/// Names of the compared frameworks, in paper order.
pub const FRAMEWORK_NAMES: [&str; 3] = ["RAW", "SHAHED", "SPATE"];

// ---------------------------------------------------------------- Fig. 4

/// Per-attribute entropy of the three file types.
#[derive(Debug)]
pub struct EntropyReport {
    pub cdr: EntropyProfile,
    pub nms: EntropyProfile,
    pub cell: EntropyProfile,
}

/// Fig. 4: "the entropy of each attribute in CDR data, NMS data, and CELL
/// data". Analyzes one generated day.
pub fn fig4_entropy(config: &BenchConfig) -> EntropyReport {
    let mut generator = config.generator();
    let layout = generator.layout().clone();
    let mut cdr_rows = Vec::new();
    let mut nms_rows = Vec::new();
    for _ in 0..EPOCHS_PER_DAY {
        let Some(snap) = generator.next_snapshot() else {
            break;
        };
        cdr_rows.extend(snap.cdr);
        nms_rows.extend(snap.nms);
    }
    EntropyReport {
        cdr: EntropyProfile::of(&cdr_rows, cdr::WIDTH),
        nms: EntropyProfile::of(&nms_rows, nms::WIDTH),
        cell: EntropyProfile::of(&layout.to_records(), cell::WIDTH),
    }
}

// --------------------------------------------------------------- Table I

/// One codec's measured row of Table I.
#[derive(Debug, Clone)]
pub struct CodecRow {
    pub name: &'static str,
    /// Compression ratio `r_c = S / S_c`.
    pub ratio: f64,
    /// Mean compression time per snapshot, seconds. As in the paper, this
    /// includes the CPU-bound serialization performed in each compression
    /// round ("such as parsing").
    pub tc1_s: f64,
    /// Mean decompression time per snapshot, seconds.
    pub tc2_s: f64,
}

/// Table I: lossless compression libraries over `n_snapshots` mid-trace
/// snapshots (the paper used 200 snapshots of its real trace).
pub fn table1_codecs(config: &BenchConfig, n_snapshots: usize) -> Vec<CodecRow> {
    let mut generator = config.generator();
    // Skip the first quiet night so snapshots carry daytime volume.
    for _ in 0..16 {
        generator.next_snapshot();
    }
    let snaps: Vec<Vec<u8>> = (&mut generator)
        .take(n_snapshots)
        .map(|s| s.to_bytes())
        .collect();

    codec_list()
        .into_iter()
        .map(|codec| {
            let mut raw_total = 0usize;
            let mut packed_total = 0usize;
            let mut tc1 = 0.0;
            let mut tc2 = 0.0;
            for raw in &snaps {
                let t0 = Instant::now();
                // The per-round CPU work: re-serialize (parse-equivalent) +
                // compress, matching the paper's measured pipeline.
                let packed = codec.compress(raw);
                tc1 += t0.elapsed().as_secs_f64();
                let t0 = Instant::now();
                let unpacked = codec.decompress(&packed).expect("round trip");
                tc2 += t0.elapsed().as_secs_f64();
                assert_eq!(unpacked.len(), raw.len());
                raw_total += raw.len();
                packed_total += packed.len();
            }
            let n = snaps.len() as f64;
            CodecRow {
                name: codec.name(),
                ratio: raw_total as f64 / packed_total as f64,
                tc1_s: tc1 / n,
                tc2_s: tc2 / n,
            }
        })
        .collect()
}

// ------------------------------------------------------------ Figs. 7-10

/// Ingestion time and disk space, partitioned by day period and weekday.
#[derive(Debug)]
pub struct IngestReport {
    /// Mean ingestion seconds per snapshot, `[RAW, SHAHED, SPATE]`.
    pub time_per_period: Vec<(DayPeriod, [f64; 3])>,
    pub time_per_weekday: Vec<(Weekday, [f64; 3])>,
    /// Stored bytes attributed to each partition (data + proportional
    /// index share).
    pub space_per_period: Vec<(DayPeriod, [u64; 3])>,
    pub space_per_weekday: Vec<(Weekday, [u64; 3])>,
    /// Whole-dataset totals (§VIII: 0.49 GB vs 5.37 GB vs 5.32 GB).
    pub total_space: [u64; 3],
    pub total_raw_bytes: u64,
}

/// Figs. 7–10: ingest the whole configured trace into all three
/// frameworks, recording per-snapshot cost and final space.
pub fn ingest_experiment(config: &BenchConfig) -> IngestReport {
    let (mut fws, mut generator) = build_frameworks(config);

    struct Acc {
        secs: [f64; 3],
        stored: [u64; 3],
        raw: u64,
        n: u64,
    }
    impl Acc {
        fn new() -> Self {
            Acc {
                secs: [0.0; 3],
                stored: [0; 3],
                raw: 0,
                n: 0,
            }
        }
    }
    let mut by_period: Vec<(DayPeriod, Acc)> =
        DayPeriod::ALL.iter().map(|&p| (p, Acc::new())).collect();
    let mut by_weekday: Vec<(Weekday, Acc)> =
        Weekday::ALL.iter().map(|&w| (w, Acc::new())).collect();
    let mut total_raw = 0u64;

    while let Some(snapshot) = generator.next_snapshot() {
        let stats = [
            fws.raw.ingest(&snapshot),
            fws.shahed.ingest(&snapshot),
            fws.spate.ingest(&snapshot),
        ];
        total_raw += stats[0].raw_bytes;
        let period = snapshot.epoch.day_period();
        let weekday = snapshot.epoch.weekday();
        for acc in [
            &mut by_period.iter_mut().find(|(p, _)| *p == period).unwrap().1,
            &mut by_weekday
                .iter_mut()
                .find(|(w, _)| *w == weekday)
                .unwrap()
                .1,
        ] {
            for (i, st) in stats.iter().enumerate() {
                acc.secs[i] += st.seconds;
                acc.stored[i] += st.stored_bytes;
            }
            acc.raw += stats[0].raw_bytes;
            acc.n += 1;
        }
    }
    fws.shahed.finalize();

    // Index bytes attributed proportionally to a partition's raw share.
    let spaces: Vec<_> = fws.iter().iter().map(|f| f.space()).collect();
    let index_bytes: [u64; 3] = [
        spaces[0].index_bytes,
        spaces[1].index_bytes,
        spaces[2].index_bytes,
    ];
    let attribute = |acc: &Acc| -> [u64; 3] {
        let share = if total_raw == 0 {
            0.0
        } else {
            acc.raw as f64 / total_raw as f64
        };
        [
            acc.stored[0] + (index_bytes[0] as f64 * share) as u64,
            acc.stored[1] + (index_bytes[1] as f64 * share) as u64,
            acc.stored[2] + (index_bytes[2] as f64 * share) as u64,
        ]
    };
    let mean = |acc: &Acc| -> [f64; 3] {
        let n = acc.n.max(1) as f64;
        [acc.secs[0] / n, acc.secs[1] / n, acc.secs[2] / n]
    };

    IngestReport {
        time_per_period: by_period.iter().map(|(p, a)| (*p, mean(a))).collect(),
        time_per_weekday: by_weekday.iter().map(|(w, a)| (*w, mean(a))).collect(),
        space_per_period: by_period.iter().map(|(p, a)| (*p, attribute(a))).collect(),
        space_per_weekday: by_weekday.iter().map(|(w, a)| (*w, attribute(a))).collect(),
        total_space: [spaces[0].total(), spaces[1].total(), spaces[2].total()],
        total_raw_bytes: total_raw,
    }
}

// ------------------------------------------------------------- Decay run

/// Outcome of the continuous-decay experiment: a SPATE instance ingesting
/// the whole trace under an aggressive sliding-window policy, so every
/// eviction path (leaf files, day and month highlights) actually fires.
#[derive(Debug)]
pub struct DecayRunReport {
    pub epochs_ingested: usize,
    pub leaves_evicted: usize,
    /// Logical compressed bytes purged from the filesystem.
    pub bytes_freed: u64,
    pub day_highlights_dropped: usize,
    pub month_highlights_dropped: usize,
    /// Delete operations observed by the DFS metrics (one per evicted
    /// leaf file).
    pub dfs_deletes: u64,
    pub dfs_bytes_deleted: u64,
    pub present_leaves: usize,
    pub stored_bytes: u64,
}

/// Continuous decay: retain one day at full resolution, two days of day
/// highlights, four days of month highlights. With the default 7-day
/// trace this guarantees leaf evictions *and* highlight drops.
pub fn decay_experiment(config: &BenchConfig) -> DecayRunReport {
    let mut generator = config.generator();
    let layout = generator.layout().clone();
    let policy = DecayPolicy {
        full_resolution_days: 1,
        day_highlight_days: 2,
        month_highlight_days: 4,
        year_highlight_days: 1000,
    };
    let mut spate = SpateFramework::new(config.dfs(), layout).with_decay(policy);
    let mut epochs = 0usize;
    while let Some(snapshot) = generator.next_snapshot() {
        spate.ingest(&snapshot);
        epochs += 1;
    }
    let log = spate.decay_log();
    let m = spate.store().dfs().metrics();
    DecayRunReport {
        epochs_ingested: epochs,
        leaves_evicted: log.leaves_evicted,
        bytes_freed: log.bytes_freed,
        day_highlights_dropped: log.day_highlights_dropped,
        month_highlights_dropped: log.month_highlights_dropped,
        dfs_deletes: m.deletes,
        dfs_bytes_deleted: m.bytes_deleted,
        present_leaves: spate.index().present_leaves(),
        stored_bytes: spate.store().stored_bytes(),
    }
}

// ------------------------------------------------------------- Chaos run

/// Outcome of the seeded chaos experiment. Every field is a pure function
/// of the seed and the [`BenchConfig`] — two runs with the same inputs
/// must produce equal reports (the determinism acceptance gate), so
/// nothing time-derived lives here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosReport {
    pub seed: u64,
    /// True when the run exercised the content-addressed (CAS) storage
    /// backend instead of the per-epoch path backend.
    pub cas: bool,
    pub epochs_ingested: usize,
    /// Application-level ingest re-submissions after a storage error
    /// (write retries exhausted inside the DFS, a crashed datanode, …).
    /// Crash-consistent ingest guarantees a failed attempt leaves nothing
    /// behind, so re-submitting is always safe.
    pub ingest_retries: u64,
    /// Epochs that never ingested even after re-submission — must be 0.
    pub ingest_failures: u64,
    /// Exploration queries issued while faults were active.
    pub queries_run: usize,
    pub exact_results: usize,
    pub partial_results: usize,
    pub unavailable_results: usize,
    /// Partial results whose coverage report did not add up (served +
    /// decayed + unavailable ≠ requested, or served ≠ epochs actually
    /// read) — must be 0.
    pub inconsistent_coverage: usize,
    /// Epochs unreadable while two of four datanodes were down.
    pub blackout_unavailable: u32,
    /// The blackout query degraded to a partial (or unavailable) result
    /// whose coverage was arithmetically consistent.
    pub blackout_degraded_cleanly: bool,
    /// All repair passes merged (one per simulated day + final).
    pub repair: RepairReport,
    pub faults: FaultStatsSnapshot,
    /// Whole-trace coverage after the blackout ends and repair completes.
    pub final_coverage: Coverage,
    /// `final_coverage.unavailable` — the zero-data-loss gate.
    pub data_loss_epochs: u32,
    pub present_leaves: usize,
}

/// Check a query result's coverage arithmetic against the leaf count of
/// its window. Returns false only for genuinely inconsistent reports.
fn coverage_is_consistent(result: &QueryResult, requested: u32) -> bool {
    match result.coverage() {
        Some(c) => c.requested == requested && c.served + c.decayed + c.unavailable == c.requested,
        // Summary / Unavailable results carry no epoch coverage.
        None => true,
    }
}

/// The `repro chaos` experiment: ingest a scaled week through a DFS with a
/// seeded [`FaultConfig::chaos`] plan — transient read/write faults,
/// silent replica corruption, stragglers and a rolling datanode
/// crash/restart cycle — while running T1–T4 and a data-exploration query
/// every simulated day, repairing daily, then staging a two-node blackout
/// drill and verifying zero data loss once the cluster heals.
pub fn chaos_experiment(config: &BenchConfig, seed: u64) -> ChaosReport {
    chaos_experiment_with(config, seed, false)
}

/// [`chaos_experiment`] with a switchable storage backend: `cas = true`
/// runs the identical fault schedule over the content-addressed store, so
/// CI can hold dedup'd storage to the same zero-data-loss bar as the
/// per-epoch path layout.
pub fn chaos_experiment_with(config: &BenchConfig, seed: u64, cas: bool) -> ChaosReport {
    let mut generator = config.generator();
    let layout = generator.layout().clone();

    // Small blocks so leaf files span several blocks and the per-block
    // fault machinery (CRC verify, failover, repair) sees real traffic.
    // Replication 2 over 4 nodes keeps blocks findable with one node down
    // (the crash cycle's regime) but vulnerable during the 2-node drill.
    let dfs_config = DfsConfig {
        block_size: 4 * 1024,
        replication: 2,
        n_datanodes: 4,
        io: IoModel::unthrottled(),
        cache_bytes: 0,
        ..DfsConfig::default()
    };
    let dfs = Dfs::with_faults(dfs_config, FaultConfig::chaos(seed));
    // Decay the two oldest days of a week so the coverage report's
    // `decayed` bucket is exercised alongside `unavailable`.
    let policy = DecayPolicy {
        full_resolution_days: 5,
        day_highlight_days: 30,
        month_highlight_days: 365,
        year_highlight_days: 1000,
    };
    let mut spate = if cas {
        SpateFramework::with_cas(dfs, layout).with_decay(policy)
    } else {
        SpateFramework::new(dfs, layout).with_decay(policy)
    };

    let mut epochs_ingested = 0usize;
    let mut ingest_retries = 0u64;
    let mut ingest_failures = 0u64;
    let mut queries_run = 0usize;
    let mut exact_results = 0usize;
    let mut partial_results = 0usize;
    let mut unavailable_results = 0usize;
    let mut inconsistent_coverage = 0usize;
    let mut repair = RepairReport::default();

    while let Some(snapshot) = generator.next_snapshot() {
        let mut attempts = 0u32;
        loop {
            match spate.try_ingest(&snapshot) {
                Ok(_) => {
                    epochs_ingested += 1;
                    break;
                }
                Err(_) if attempts < 50 => {
                    attempts += 1;
                    ingest_retries += 1;
                }
                Err(_) => {
                    ingest_failures += 1;
                    break;
                }
            }
        }

        // End of each simulated day: a repair pass, the first four paper
        // tasks over the finished day, and one coverage-checked query.
        if snapshot.epoch.epoch_in_day() == EPOCHS_PER_DAY - 1 {
            repair.merge(&spate.store().dfs().repair());

            let day_start = EpochId(snapshot.epoch.day_index() * EPOCHS_PER_DAY);
            let day_end = snapshot.epoch;
            let fw: &dyn ExplorationFramework = &spate;
            let _ = tasks::t1_equality(fw, EpochId(day_start.0 + EPOCHS_PER_DAY / 2));
            let _ = tasks::t2_range(fw, day_start, day_end);
            let _ = tasks::t3_aggregate(fw, day_start, day_end);
            let _ = tasks::t4_join(fw, EpochId(day_end.0 - 3), day_end);

            let q = Query::new(&["upflux", "downflux"], BoundingBox::everything())
                .with_epoch_range(day_start.0, day_end.0);
            let result = spate.query(&q);
            queries_run += 1;
            match &result {
                QueryResult::Exact(_) | QueryResult::Summary { .. } => exact_results += 1,
                QueryResult::Partial { .. } => partial_results += 1,
                QueryResult::Unavailable => unavailable_results += 1,
            }
            if !coverage_is_consistent(&result, EPOCHS_PER_DAY) {
                inconsistent_coverage += 1;
            }
        }
    }

    let last_epoch = config.days * EPOCHS_PER_DAY - 1;
    let dfs = spate.store().dfs().clone();

    // Blackout drill: take down half the cluster. With replication 2 over
    // 4 nodes some blocks lose every live replica, so recent (full
    // resolution) epochs become unreadable and queries must degrade to
    // partial results instead of erroring.
    dfs.kill_datanode(0);
    dfs.kill_datanode(1);
    let drill_day = config.days - 2; // well inside the full-resolution window
    let drill_start = EpochId(drill_day * EPOCHS_PER_DAY);
    let drill_end = EpochId(drill_day * EPOCHS_PER_DAY + EPOCHS_PER_DAY - 1);
    let probe = spate.probe_coverage(drill_start, drill_end);
    let blackout_unavailable = probe.unavailable;
    let q = Query::new(&["upflux"], BoundingBox::everything())
        .with_epoch_range(drill_start.0, drill_end.0);
    let drill_result = spate.query(&q);
    let blackout_degraded_cleanly = match &drill_result {
        // Losing half the cluster should surface as degradation, not a
        // clean exact answer — unless this seed's replica placement left
        // the whole drill day on the surviving nodes.
        QueryResult::Partial { .. } | QueryResult::Unavailable => {
            coverage_is_consistent(&drill_result, EPOCHS_PER_DAY)
        }
        QueryResult::Exact(_) | QueryResult::Summary { .. } => probe.unavailable == 0,
    };

    // Heal: bring the nodes back (a crash is a restart — the disks
    // survive), then repair until replication is restored.
    for id in 0..4 {
        dfs.revive_datanode(id);
    }
    repair.merge(&dfs.repair());
    repair.merge(&dfs.repair());

    // Zero-data-loss verification: every epoch of the whole trace must be
    // served or decayed — nothing unavailable after the cluster healed.
    let final_coverage = spate.probe_coverage(EpochId(0), EpochId(last_epoch));

    ChaosReport {
        seed,
        cas,
        epochs_ingested,
        ingest_retries,
        ingest_failures,
        queries_run,
        exact_results,
        partial_results,
        unavailable_results,
        inconsistent_coverage,
        blackout_unavailable,
        blackout_degraded_cleanly,
        repair,
        faults: spate.store().dfs().fault_stats(),
        final_coverage,
        data_loss_epochs: final_coverage.unavailable,
        present_leaves: spate.index().present_leaves(),
    }
}

// --------------------------------------------------------------- CAS run

/// Outcome of the `repro cas` experiment: the same seeded week ingested
/// through the per-epoch path backend and the content-addressed backend
/// side by side. Every field is a pure function of `(seed, scale, days)` —
/// CI runs the experiment twice and diffs the printed `cas:` lines, so
/// nothing time-derived lives here (timings go in [`CasPerf`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CasReport {
    pub seed: u64,
    pub epochs: usize,
    /// Raw (uncompressed) trace bytes ingested.
    pub raw_bytes: u64,
    /// On-disk bytes of the path backend (one compressed file per epoch).
    pub path_bytes: u64,
    /// On-disk bytes of the CAS backend (packs + manifests).
    pub cas_bytes: u64,
    /// Compressed piece data (packs) share of `cas_bytes`.
    pub pack_bytes: u64,
    /// Compressed chunk metadata (manifests) share of `cas_bytes`.
    pub manifest_bytes: u64,
    /// Chunk-level dedup hits across the whole ingest.
    pub dedup_hits: u64,
    /// Raw bytes the dedup hits avoided re-storing.
    pub dedup_bytes_saved: u64,
    pub unique_chunks: u64,
    pub packs: u64,
    /// Merkle root over every retained epoch manifest — must be identical
    /// across two runs with the same seed (the determinism gate).
    pub manifest_root: String,
    /// Query-equivalence check: identical queries against both backends.
    pub queries_run: usize,
    pub results_equal: bool,
    /// Anchor+delta store bytes, plain DFS backend.
    pub delta_bytes: u64,
    /// Anchor+delta store bytes, CAS backend (anchors chunked raw).
    pub delta_cas_bytes: u64,
    /// Bytes released by evicting every epoch (decay-as-GC).
    pub decay_freed: u64,
    /// Deferred garbage reclaimed by the final sweep.
    pub gc_swept: u64,
    /// Chunks with zero references still indexed after full decay — must
    /// be 0.
    pub unreferenced_chunks: u64,
    /// On-disk bytes remaining after full decay + GC (CAS root and the
    /// CAS-backed delta store) — must be 0, the GC-leak gate.
    pub leak_bytes: u64,
}

impl CasReport {
    /// Storage reduction of the CAS backend vs. the path backend, percent.
    pub fn reduction_pct(&self) -> f64 {
        if self.path_bytes == 0 {
            0.0
        } else {
            100.0 * (1.0 - self.cas_bytes as f64 / self.path_bytes as f64)
        }
    }

    /// Same reduction as integer permille — diffable and shell-comparable
    /// (CI gates on `>= 200`, i.e. the 20 % acceptance bar).
    pub fn reduction_permille(&self) -> i64 {
        if self.path_bytes == 0 {
            0
        } else {
            ((self.path_bytes as i128 - self.cas_bytes as i128) * 1000 / self.path_bytes as i128)
                as i64
        }
    }
}

/// Wall-clock measurements of the CAS experiment — never diffed.
#[derive(Debug, Clone, Copy)]
pub struct CasPerf {
    /// Per-epoch full-snapshot read latency, path backend (µs).
    pub path_read_p50_us: u64,
    pub path_read_p95_us: u64,
    /// Per-epoch full-snapshot read latency, CAS backend (µs) — pays
    /// manifest + pack reads plus hash verification.
    pub cas_read_p50_us: u64,
    pub cas_read_p95_us: u64,
    pub wall_secs: f64,
}

fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// The `repro cas` experiment: ingest one seeded week into the path
/// backend and the content-addressed backend on separate clusters, verify
/// both answer identical queries, measure the dedup'd footprint (plus the
/// anchor+delta variant of both), then decay everything and verify the GC
/// reclaims every byte.
pub fn cas_experiment(config: &BenchConfig, seed: u64) -> (CasReport, CasPerf) {
    let wall = Instant::now();
    let mut trace_config = config.trace_config();
    trace_config.seed = seed;
    let mut generator = TraceGenerator::new(trace_config);
    let layout = generator.layout().clone();

    let mut path_fw = SpateFramework::new(config.dfs(), layout.clone());
    let mut cas_fw = SpateFramework::with_cas(config.dfs(), layout);
    // The paper's anchor+delta scheme with and without content addressing,
    // on their own clusters (anchors every 8 epochs, as in the core tests).
    let delta_path = DeltaSnapshotStore::new(config.dfs(), Arc::new(GzipLite::default()), 8);
    let delta_cas = DeltaSnapshotStore::new_cas(config.dfs(), Arc::new(GzipLite::default()), 8);

    let mut raw_bytes = 0u64;
    let mut epochs: Vec<EpochId> = Vec::new();
    while let Some(snapshot) = generator.next_snapshot() {
        raw_bytes += path_fw.ingest(&snapshot).raw_bytes;
        cas_fw.ingest(&snapshot);
        delta_path.store(&snapshot).expect("delta path ingest");
        delta_cas.store(&snapshot).expect("delta cas ingest");
        epochs.push(snapshot.epoch);
    }

    // Query equivalence: a full-day range scan and a midday point lookup
    // per simulated day, answered by both backends.
    let mut queries_run = 0usize;
    let mut results_equal = true;
    let last = epochs.last().copied().unwrap_or(EpochId(0));
    for day in 0..config.days {
        let start = EpochId(day * EPOCHS_PER_DAY);
        let end = EpochId(day * EPOCHS_PER_DAY + EPOCHS_PER_DAY - 1);
        if end > last {
            break;
        }
        let mid = EpochId(start.0 + EPOCHS_PER_DAY / 2);
        for q in [
            Query::new(&["upflux", "downflux"], BoundingBox::everything())
                .with_epoch_range(start.0, end.0),
            Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(mid.0, mid.0),
        ] {
            let a = path_fw.query(&q);
            let b = cas_fw.query(&q);
            queries_run += 1;
            if format!("{a:?}") != format!("{b:?}") {
                results_equal = false;
            }
        }
    }

    // Read-path latency: one cold-ish full-snapshot load per epoch per
    // backend (timing only — never part of the diffable report).
    let mut path_us: Vec<u64> = Vec::with_capacity(epochs.len());
    let mut cas_us: Vec<u64> = Vec::with_capacity(epochs.len());
    for &e in &epochs {
        let t = Instant::now();
        path_fw.store().load(e).expect("path load");
        path_us.push(t.elapsed().as_micros() as u64);
        let t = Instant::now();
        cas_fw.store().load(e).expect("cas load");
        cas_us.push(t.elapsed().as_micros() as u64);
    }
    path_us.sort_unstable();
    cas_us.sort_unstable();

    let cas_store = cas_fw.store().cas().expect("cas backend").clone();
    let stats = cas_store.stats();
    let path_bytes = path_fw.store().stored_bytes();
    let cas_bytes = cas_store.listed_bytes();
    let pack_bytes = cas_store.pack_bytes();
    let manifest_bytes = cas_store.manifest_bytes();
    let manifest_root = cas_store.root_hash();
    let unique_chunks = cas_store.chunk_count();
    let packs = cas_store.pack_count();
    let delta_bytes = delta_path.stored_bytes();
    let delta_cas_bytes = delta_cas.stored_bytes();

    // Full decay: evict every epoch (deltas before their anchors, hence
    // reverse order), then sweep deferred garbage. Decay is the GC — after
    // this the stores must hold zero bytes.
    let mut decay_freed = 0u64;
    for &e in epochs.iter().rev() {
        decay_freed += cas_fw.store().evict(e).expect("cas evict");
        delta_cas.evict(e).expect("delta cas evict");
    }
    let gc_swept = cas_store.gc();
    let unreferenced_chunks = cas_store.unreferenced_chunks();
    let leak_bytes = cas_store.listed_bytes() + delta_cas.stored_bytes();

    let report = CasReport {
        seed,
        epochs: epochs.len(),
        raw_bytes,
        path_bytes,
        cas_bytes,
        pack_bytes,
        manifest_bytes,
        dedup_hits: stats.dedup_hits,
        dedup_bytes_saved: stats.dedup_bytes_saved,
        unique_chunks,
        packs,
        manifest_root,
        queries_run,
        results_equal,
        delta_bytes,
        delta_cas_bytes,
        decay_freed,
        gc_swept,
        unreferenced_chunks,
        leak_bytes,
    };
    let perf = CasPerf {
        path_read_p50_us: percentile_us(&path_us, 0.50),
        path_read_p95_us: percentile_us(&path_us, 0.95),
        cas_read_p50_us: percentile_us(&cas_us, 0.50),
        cas_read_p95_us: percentile_us(&cas_us, 0.95),
        wall_secs: wall.elapsed().as_secs_f64(),
    };
    (report, perf)
}

// ----------------------------------------------------------- Figs. 11-12

/// Response time of every task on every framework.
#[derive(Debug)]
pub struct ResponseReport {
    /// `(task id, [RAW, SHAHED, SPATE] seconds)`, T1..T8 in order.
    pub tasks: Vec<(&'static str, [f64; 3])>,
}

/// Figs. 11–12: run T1–T8 on all frameworks over the ingested trace.
///
/// Windows follow the paper's usage: point lookups and scans over a
/// mid-trace business day, the quadratic join over a morning window, the
/// heavy analytics over two days.
pub fn response_experiment(config: &BenchConfig, fws: &Frameworks) -> ResponseReport {
    assert!(
        config.days >= 5,
        "response windows need at least 5 trace days"
    );
    let day4 = 4 * EPOCHS_PER_DAY; // Friday
    let t1_epoch = EpochId(day4 + 24); // Friday 12:00
    let day_window = (EpochId(day4), EpochId(day4 + EPOCHS_PER_DAY - 1));
    let join_window = (EpochId(day4 + 14), EpochId(day4 + 35)); // Friday 07:00-18:00
    let heavy_window = (
        EpochId(3 * EPOCHS_PER_DAY),
        EpochId(day4 + EPOCHS_PER_DAY - 1),
    );

    let mut rows: Vec<(&'static str, [f64; 3])> = Vec::new();
    // Each task behaves like a fresh analytics job: the page cache is
    // dropped before it starts (in-task re-reads still benefit — that is
    // T4's mechanism). A first untimed pass per task warms the process
    // allocator so first-touch page faults don't bias whichever framework
    // happens to run first.
    let drop_all = |fws: &Frameworks| {
        fws.raw.store().dfs().drop_caches();
        fws.shahed.store().dfs().drop_caches();
        fws.spate.store().dfs().drop_caches();
    };
    let run = |f: &mut dyn FnMut(&dyn ExplorationFramework) -> f64, fws: &Frameworks| -> [f64; 3] {
        let [raw, shahed, spate] = fws.iter();
        for fw in [raw, shahed, spate] {
            drop_all(fws);
            let _ = f(fw); // warm-up, untimed
        }
        drop_all(fws);
        let a = f(raw);
        drop_all(fws);
        let b = f(shahed);
        drop_all(fws);
        let c = f(spate);
        [a, b, c]
    };

    rows.push((
        "T1 equality",
        run(&mut |fw| tasks::t1_equality(fw, t1_epoch).1, fws),
    ));
    rows.push((
        "T2 range",
        run(
            &mut |fw| tasks::t2_range(fw, day_window.0, day_window.1).1,
            fws,
        ),
    ));
    rows.push((
        "T3 aggregate",
        run(
            &mut |fw| tasks::t3_aggregate(fw, day_window.0, day_window.1).1,
            fws,
        ),
    ));
    rows.push((
        "T4 join",
        run(
            &mut |fw| tasks::t4_join(fw, join_window.0, join_window.1).1,
            fws,
        ),
    ));
    rows.push((
        "T5 privacy",
        run(
            &mut |fw| tasks::t5_privacy(fw, day_window.0, day_window.1, 5).1,
            fws,
        ),
    ));
    rows.push((
        "T6 statistics",
        run(
            &mut |fw| tasks::t6_statistics(fw, heavy_window.0, heavy_window.1).1,
            fws,
        ),
    ));
    rows.push((
        "T7 clustering",
        run(
            &mut |fw| tasks::t7_clustering(fw, heavy_window.0, heavy_window.1, 8).1,
            fws,
        ),
    ));
    rows.push((
        "T8 regression",
        run(
            &mut |fw| tasks::t8_regression(fw, heavy_window.0, heavy_window.1).1,
            fws,
        ),
    ));
    ResponseReport { tasks: rows }
}

/// Full pipeline for the response experiment: build, ingest, measure.
pub fn response_experiment_from_scratch(config: &BenchConfig) -> ResponseReport {
    let (mut fws, mut generator) = build_frameworks(config);
    ingest_all(
        &mut fws,
        &mut generator,
        (config.days * EPOCHS_PER_DAY) as usize,
    );
    response_experiment(config, &fws)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> BenchConfig {
        BenchConfig {
            scale: 1.0 / 1024.0,
            days: 7,
            throttled: false,
        }
    }

    #[test]
    fn fig4_shapes_match_the_paper() {
        let r = fig4_entropy(&quick_config());
        // CDR: most attributes below 1 bit, several at zero, a few high.
        assert!(r.cdr.zero_columns() >= 30);
        assert!(r.cdr.below(1.0) > cdr::WIDTH / 2);
        assert!(r.cdr.max() > 4.0);
        // NMS: counters carry a few bits each.
        assert!(r.nms.max() > 2.0);
        assert!(r.nms.per_column.len() == nms::WIDTH);
        // CELL: low-entropy inventory attributes (paper: up to ~3.5).
        assert!(r.cell.per_column.len() == cell::WIDTH);
        assert!(r.cell.max() > 1.0);
    }

    #[test]
    fn table1_orderings_match_the_paper() {
        let rows = table1_codecs(&quick_config(), 4);
        let get = |name: &str| rows.iter().find(|r| r.name == name).unwrap().clone();
        let (gzip, seven, snappy, zstd) = (
            get("gzip-lite"),
            get("7z-lite"),
            get("snappy-lite"),
            get("zstd-lite"),
        );
        // Ratio ordering: 7z best, snappy roughly half of the rest.
        assert!(seven.ratio > gzip.ratio);
        assert!(seven.ratio > snappy.ratio);
        assert!(zstd.ratio > snappy.ratio);
        assert!(snappy.ratio < gzip.ratio * 0.75);
        // Compression always slower than decompression.
        for r in &rows {
            assert!(r.tc1_s > r.tc2_s, "{}: {} vs {}", r.name, r.tc1_s, r.tc2_s);
        }
        // Snappy compresses fastest.
        assert!(snappy.tc1_s < gzip.tc1_s);
        assert!(snappy.tc1_s < seven.tc1_s);
    }

    #[test]
    fn decay_experiment_evicts_and_counts_deletes() {
        let r = decay_experiment(&quick_config());
        assert!(r.leaves_evicted > 0, "{r:?}");
        assert!(r.bytes_freed > 0);
        assert!(r.day_highlights_dropped > 0);
        // Every evicted leaf is one DFS delete, and the metrics layer must
        // not drop them (the record_delete fix).
        assert_eq!(r.dfs_deletes, r.leaves_evicted as u64);
        assert_eq!(r.dfs_bytes_deleted, r.bytes_freed);
        assert!(r.present_leaves > 0, "the newest day survives");
    }

    fn chaos_config() -> BenchConfig {
        BenchConfig {
            scale: 1.0 / 2048.0,
            days: 7,
            throttled: false,
        }
    }

    #[test]
    fn chaos_runs_are_reproducible_and_lossless() {
        let config = chaos_config();
        let first = chaos_experiment(&config, 7);
        // The zero-data-loss gate: after the blackout ends and repair
        // completes, every epoch is served or decayed.
        assert_eq!(first.data_loss_epochs, 0, "{first:?}");
        assert_eq!(first.ingest_failures, 0, "{first:?}");
        assert_eq!(first.repair.unrecoverable, 0, "{first:?}");
        assert_eq!(first.inconsistent_coverage, 0, "{first:?}");
        assert!(first.blackout_degraded_cleanly, "{first:?}");
        // The fault plan actually did damage, and repair actually healed.
        assert!(first.faults.corrupt_replicas_injected > 0, "{first:?}");
        assert!(first.faults.transient_reads_injected > 0, "{first:?}");
        assert!(first.faults.crashes_injected > 0, "{first:?}");
        assert!(
            first.repair.replicas_added > 0 || first.repair.corrupt_replicas_dropped > 0,
            "{first:?}"
        );
        // Decay ran, so the coverage report exercises all three buckets.
        assert!(first.final_coverage.decayed > 0, "{first:?}");
        assert_eq!(
            first.final_coverage.served + first.final_coverage.decayed,
            first.final_coverage.requested,
            "{first:?}"
        );

        // Determinism: the same seed reproduces every counter; a different
        // seed draws a different fault schedule.
        let again = chaos_experiment(&config, 7);
        assert_eq!(first, again);
        let other = chaos_experiment(&config, 8);
        assert_ne!(first.faults, other.faults);
    }

    #[test]
    fn chaos_over_cas_is_reproducible_and_lossless() {
        let config = chaos_config();
        let first = chaos_experiment_with(&config, 7, true);
        assert!(first.cas);
        // The content-addressed backend must clear the same bars as the
        // path backend under the identical fault schedule.
        assert_eq!(first.data_loss_epochs, 0, "{first:?}");
        assert_eq!(first.ingest_failures, 0, "{first:?}");
        assert_eq!(first.inconsistent_coverage, 0, "{first:?}");
        assert!(first.blackout_degraded_cleanly, "{first:?}");
        assert!(first.faults.corrupt_replicas_injected > 0, "{first:?}");
        assert!(first.final_coverage.decayed > 0, "{first:?}");
        assert_eq!(
            first.final_coverage.served + first.final_coverage.decayed,
            first.final_coverage.requested,
            "{first:?}"
        );
        let again = chaos_experiment_with(&config, 7, true);
        assert_eq!(first, again);
    }

    #[test]
    fn cas_experiment_dedups_answers_identically_and_gcs_clean() {
        // The default 1/128 bench scale, not the 1/2048 chaos scale: the
        // per-epoch manifest floor is fixed-size, so the reduction ratio
        // is only meaningful once epochs carry real data (at 1/2048 an
        // epoch compresses to ~1.4 KB and metadata eats the win).
        let config = BenchConfig {
            scale: 1.0 / 128.0,
            days: 7,
            throttled: false,
        };
        let (r, _perf) = cas_experiment(&config, 7);
        assert_eq!(r.epochs, 7 * EPOCHS_PER_DAY as usize, "{r:?}");
        // Equal answers from both backends on every probe query.
        assert!(r.queries_run > 0);
        assert!(r.results_equal, "{r:?}");
        // The acceptance bar: >= 20 % smaller than the path backend.
        assert!(
            r.reduction_permille() >= 200,
            "reduction {}‰: {r:?}",
            r.reduction_permille()
        );
        assert!(r.dedup_hits > 0, "{r:?}");
        assert!(r.dedup_bytes_saved > 0, "{r:?}");
        // Content addressing also shrinks the anchor+delta layout.
        assert!(r.delta_cas_bytes < r.delta_bytes, "{r:?}");
        // Decay-as-GC leaves nothing behind.
        assert_eq!(r.unreferenced_chunks, 0, "{r:?}");
        assert_eq!(r.leak_bytes, 0, "{r:?}");
        assert!(r.decay_freed > 0, "{r:?}");

        // Determinism: same seed → identical report, including the Merkle
        // root; another seed → different trace, different root.
        let (again, _) = cas_experiment(&config, 7);
        assert_eq!(r, again);
        let (other, _) = cas_experiment(&config, 8);
        assert_ne!(r.manifest_root, other.manifest_root);
    }

    #[test]
    fn ingest_experiment_shapes() {
        let config = BenchConfig {
            scale: 1.0 / 1024.0,
            days: 7,
            throttled: false,
        };
        let r = ingest_experiment(&config);
        // Space: SPATE far below RAW and SHAHED, SHAHED ≥ RAW.
        let [raw, shahed, spate] = r.total_space;
        assert!(spate * 2 < raw, "spate {spate} raw {raw}");
        assert!(shahed >= raw);
        // Every partition shows the same ordering.
        for (_, s) in &r.space_per_period {
            assert!(s[2] < s[0], "{s:?}");
        }
        for (_, s) in &r.space_per_weekday {
            assert!(s[2] < s[0], "{s:?}");
        }
        // All partitions have data.
        assert_eq!(r.time_per_period.len(), 4);
        assert_eq!(r.time_per_weekday.len(), 7);
    }
}
