//! Experiment drivers regenerating every table and figure of the SPATE
//! paper's evaluation. Each driver returns structured rows; the `repro`
//! binary prints them in the paper's layout, and the criterion benches
//! wrap the same code paths.
//!
//! | Driver | Paper artifact |
//! |---|---|
//! | [`fig4_entropy`] | Fig. 4 — per-attribute entropy of CDR/NMS/CELL |
//! | [`table1_codecs`] | Table I — codec ratio / T_c1 / T_c2 per snapshot |
//! | [`ingest_experiment`] | Figs. 7–10 — ingestion time & disk space by day period and weekday |
//! | [`response_experiment`] | Figs. 11–12 — response time of tasks T1–T8 on RAW/SHAHED/SPATE |
//! | [`serve_experiment`] | `repro serve` — concurrent serving tier under mid-run decay (no paper counterpart) |
//! | [`trace_experiment`] | `repro trace` — one request traced end-to-end, cold vs warm (no paper counterpart) |
//! | [`cas_experiment`] | `repro cas` — content-addressed store vs. path store: dedup ratio, query equality, GC-leak gate (no paper counterpart) |
//! | [`heat_experiment`] | `repro heat` — per-query cost accounting and heat-ledger bands under a skewed workload (no paper counterpart) |
//! | [`chaos_serve_experiment`] | `repro chaos-serve` — adversarial serving-tier drill: poison queries, deadline storms, cancel races, malformed frames, disconnects, chaos-dfs backend with circuit breakers (no paper counterpart) |

pub mod chaos_serve;
pub mod experiments;
pub mod heat_bench;
pub mod serve_bench;
pub mod setup;

pub use chaos_serve::{chaos_serve_experiment, ChaosServeReport};
pub use experiments::{
    cas_experiment, chaos_experiment, chaos_experiment_with, fig4_entropy, ingest_experiment,
    response_experiment, table1_codecs, CasPerf, CasReport, ChaosReport, CodecRow, EntropyReport,
    IngestReport, ResponseReport,
};
pub use heat_bench::{heat_experiment, HeatBenchReport};
pub use serve_bench::{serve_experiment, trace_experiment, ServeReport, TraceReport};
pub use setup::{build_frameworks, BenchConfig, Frameworks};
