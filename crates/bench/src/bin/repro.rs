//! `repro` — regenerate every table and figure of the SPATE paper.
//!
//! ```text
//! repro [EXPERIMENT] [--scale 1/N] [--days D] [--unthrottled]
//!       [--seed N] [--clients N] [--cas] [--profile] [--metrics-json PATH]
//!       [--introspect] [--trace-json PATH]
//!
//! EXPERIMENT: table1 | fig4 | fig7 | fig8 | fig9 | fig10 | fig11 | fig12
//!             | decay | chaos | serve | chaos-serve | trace | cas | heat
//!             | space-summary | all (default)
//!
//! --seed N             workload/fault-plan seed for the chaos, serve,
//!                      chaos-serve, trace, cas and heat experiments
//!                      (default 7); two runs with the same seed print
//!                      identical `chaos:`/`serve:`/`chaos-serve:`/
//!                      `trace:`/`cas:`/`heat:` lines
//! --clients N          concurrent clients for the serve and chaos-serve
//!                      experiments (default 8)
//! --cas                run the chaos experiment over the content-addressed
//!                      storage backend instead of the path backend
//!
//! --profile            print the span flame table (per-stage wall time)
//!                      after the experiment finishes
//! --metrics-json PATH  dump the whole metric registry (counters, gauges,
//!                      histograms, spans) as JSON to PATH
//! --introspect         after a serve run, print the live Stats/Trace
//!                      introspection frames fetched over the wire
//! --trace-json PATH    dump the flight recorder as Chrome trace_event JSON
//!                      to PATH (open in chrome://tracing or Perfetto)
//! ```
//!
//! Absolute numbers will differ from the paper (its testbed was a 4-VM
//! Hadoop/Spark cluster over a 5 GB real trace); the *shapes* — orderings,
//! rough factors, crossovers — are the reproduction target.

use spate_bench::experiments::{self, FRAMEWORK_NAMES};
use spate_bench::{build_frameworks, BenchConfig};
use telco_trace::time::EPOCHS_PER_DAY;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_string();
    let mut config = BenchConfig::default();
    let mut profile = false;
    let mut metrics_json: Option<String> = None;
    let mut trace_json: Option<String> = None;
    let mut introspect = false;
    let mut seed = 7u64;
    let mut clients = 8usize;
    let mut cas_backend = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-h" | "--help" => {
                print_help();
                return;
            }
            "--profile" => profile = true,
            "--metrics-json" => {
                i += 1;
                metrics_json = Some(args.get(i).expect("--metrics-json needs a path").clone());
            }
            "--trace-json" => {
                i += 1;
                trace_json = Some(args.get(i).expect("--trace-json needs a path").clone());
            }
            "--introspect" => introspect = true,
            "--scale" => {
                i += 1;
                let v = &args[i];
                config.scale = if let Some(denom) = v.strip_prefix("1/") {
                    1.0 / denom.parse::<f64>().expect("bad --scale")
                } else {
                    v.parse().expect("bad --scale")
                };
            }
            "--days" => {
                i += 1;
                config.days = args[i].parse().expect("bad --days");
            }
            "--unthrottled" => config.throttled = false,
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("bad --seed");
            }
            "--clients" => {
                i += 1;
                clients = args[i].parse().expect("bad --clients");
            }
            "--cas" => cas_backend = true,
            other if !other.starts_with("--") => experiment = other.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!(
        "SPATE reproduction — scale 1/{:.0} of the paper's 5GB trace, {} days, I/O model: {}",
        1.0 / config.scale,
        config.days,
        if config.throttled {
            "cluster disks + page cache"
        } else {
            "unthrottled"
        }
    );
    println!("{}", "=".repeat(76));

    match experiment.as_str() {
        "fig4" => fig4(&config),
        "table1" => table1(&config),
        "fig7" | "fig8" | "fig9" | "fig10" => ingest_figs(&config),
        "fig11" | "fig12" => response_figs(&config),
        "decay" => decay_run(&config),
        "chaos" => chaos_run(&config, seed, cas_backend),
        "serve" => serve_run(&config, clients, seed, introspect),
        "chaos-serve" => chaos_serve_run(&config, clients, seed),
        "trace" => trace_run(&config, seed),
        "cas" => cas_run(&config, seed),
        "heat" => heat_run(&config, seed),
        "space-summary" => space_summary(&config),
        "all" => {
            fig4(&config);
            table1(&config);
            ingest_figs(&config);
            response_figs(&config);
            decay_run(&config);
        }
        other => {
            eprintln!("unknown experiment {other} (try `repro --help`)");
            std::process::exit(2);
        }
    }

    if profile {
        println!("\n## Profile — span flame table\n");
        print!("{}", obs::export::flame_table(obs::global()));
    }
    if let Some(path) = metrics_json {
        std::fs::write(&path, obs::export::json(obs::global())).expect("writing --metrics-json");
        println!("\nmetrics written to {path}");
    }
    if let Some(path) = trace_json {
        let events = obs::flight().dump();
        std::fs::write(&path, obs::export::chrome_trace(&events)).expect("writing --trace-json");
        println!(
            "\nflight recorder ({} events) written to {path}",
            events.len()
        );
    }
}

fn print_help() {
    println!(
        "\
repro — regenerate the SPATE paper's tables and figures, plus repo-grown experiments

USAGE:
    repro [EXPERIMENT] [FLAGS]

EXPERIMENTS:
    all              every paper artifact below, in order (default)
    fig4             Fig. 4  — per-attribute entropy of CDR/NMS/CELL
    table1           Table I — lossless codec ratio and compress/decompress times
    fig7|fig8|fig9|fig10
                     Figs. 7-10 — ingestion time & disk space by day period / weekday
    fig11|fig12      Figs. 11-12 — task response time on RAW/SHAHED/SPATE
    decay            continuous decay: sliding-window eviction under ingestion
    chaos            seeded fault injection, repair, degraded-coverage queries
    serve            concurrent serving tier: seeded clients, mid-run decay,
                     latency percentiles, shed rate, cache hit ratio,
                     meta-highlights self-monitoring
    chaos-serve      adversarial serving-tier drill: poison queries, deadline
                     storms, cancel races, malformed frames, mid-stream
                     disconnects, then serving over a chaos-faulted DFS with
                     replica circuit breakers — gates on zero server deaths
                     and a terminal frame for every request
    trace            trace one seeded request end-to-end (cold vs warm) and
                     print its span tree — \"why was request R slow\"
    cas              content-addressed store vs. path store: dedup ratio,
                     query equality, Merkle root, decay-as-GC leak gate
    heat             per-query cost accounting (EXPLAIN ANALYZE) and heat
                     ledger: seeded skewed workload, band census, restart
                     round-trip, zero-cost-leak gate
    space-summary    one-line total-space comparison

FLAGS:
    --scale 1/N          trace scale relative to the paper's 5 GB (default 1/128)
    --days D             days of trace to generate
    --unthrottled        disable the cluster-disk I/O model
    --seed N             seed for chaos/serve/chaos-serve/trace/cas/heat
                         workloads (default 7)
    --clients N          concurrent clients for serve and chaos-serve (default 8)
    --cas                run chaos over the content-addressed backend
    --profile            print the span flame table after the experiment
    --metrics-json PATH  dump the metric registry (counters, gauges including
                         the spate.heat.* gauges, histograms, spans) as JSON
    --introspect         print live Stats/Trace frames after a serve run
    --trace-json PATH    dump the flight recorder as Chrome trace_event JSON
                         (open in chrome://tracing or Perfetto)
    -h, --help           this text

Machine-readable reports: chaos, serve, chaos-serve, cas and heat write
BENCH_CHAOS.json, BENCH_SERVE.json, BENCH_CHAOS_SERVE.json, BENCH_CAS.json
and BENCH_HEAT.json next to the run output."
    );
}

fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(f64::MIN, f64::max).max(1e-12);
    values
        .iter()
        .map(|v| BARS[((v / max) * 7.0).round() as usize])
        .collect()
}

fn fig4(config: &BenchConfig) {
    println!("\n## Figure 4 — entropy of attributes (bits/symbol)\n");
    let r = experiments::fig4_entropy(config);
    for (name, profile, paper_note) in [
        ("CDR", &r.cdr, "paper: most < 1, several 0, peaks ~5"),
        ("NMS", &r.nms, "paper: counters carry a few bits each"),
        ("CELL", &r.cell, "paper: ≤ ~3.5"),
    ] {
        println!(
            "{name:>5}: {} attrs | zero-entropy {} | below 1 bit {} | max {:.2} | mean {:.2}   ({paper_note})",
            profile.per_column.len(),
            profile.zero_columns(),
            profile.below(1.0),
            profile.max(),
            profile.mean()
        );
        println!("       {}", sparkline(&profile.per_column));
    }
}

fn table1(config: &BenchConfig) {
    println!("\n## Table I — lossless compression per 30-min snapshot\n");
    let rows = experiments::table1_codecs(config, 32);
    println!("codec         ratio r_c   T_c1 (s)   T_c2 (s)   (paper: 9.06/11.75/4.94/9.72; T_c1 ≫ T_c2)");
    println!("{}", "-".repeat(88));
    for r in rows {
        println!(
            "{:<12} {:>9.2} {:>10.4} {:>10.5}",
            r.name, r.ratio, r.tc1_s, r.tc2_s
        );
    }
}

fn ingest_figs(config: &BenchConfig) {
    println!("\n## Figures 7-10 — ingestion time & disk space\n");
    let r = experiments::ingest_experiment(config);

    println!("Fig. 7 — mean ingestion time per snapshot (s), by day period:");
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "", FRAMEWORK_NAMES[0], FRAMEWORK_NAMES[1], FRAMEWORK_NAMES[2]
    );
    for (p, t) in &r.time_per_period {
        println!(
            "{:<10} {:>10.4} {:>10.4} {:>10.4}",
            p.label(),
            t[0],
            t[1],
            t[2]
        );
    }
    println!("(paper: SPATE slowest but ≤ ~1.25x, stable across periods)\n");

    println!("Fig. 8 — disk space (MB) attributed to each day period:");
    for (p, s) in &r.space_per_period {
        println!(
            "{:<10} {:>10.2} {:>10.2} {:>10.2}",
            p.label(),
            s[0] as f64 / 1e6,
            s[1] as f64 / 1e6,
            s[2] as f64 / 1e6
        );
    }
    println!("(paper: SPATE an order of magnitude smaller, stable)\n");

    println!("Fig. 9 — mean ingestion time per snapshot (s), by weekday:");
    for (w, t) in &r.time_per_weekday {
        println!(
            "{:<10} {:>10.4} {:>10.4} {:>10.4}",
            w.label(),
            t[0],
            t[1],
            t[2]
        );
    }
    println!();

    println!("Fig. 10 — disk space (MB) attributed to each weekday:");
    for (w, s) in &r.space_per_weekday {
        println!(
            "{:<10} {:>10.2} {:>10.2} {:>10.2}",
            w.label(),
            s[0] as f64 / 1e6,
            s[1] as f64 / 1e6,
            s[2] as f64 / 1e6
        );
    }

    summary_line(&r);
}

fn summary_line(r: &experiments::IngestReport) {
    let [raw, shahed, spate] = r.total_space;
    println!(
        "\nTotal space: RAW {:.2} MB | SHAHED {:.2} MB | SPATE {:.2} MB  → SPATE {:.1}x smaller",
        raw as f64 / 1e6,
        shahed as f64 / 1e6,
        spate as f64 / 1e6,
        raw as f64 / spate as f64
    );
    println!("(paper §VIII: 5.32 GB | 5.37 GB | 0.49 GB → 10.9x)");
}

fn space_summary(config: &BenchConfig) {
    let r = experiments::ingest_experiment(config);
    summary_line(&r);
}

fn decay_run(config: &BenchConfig) {
    println!("\n## Continuous decay — sliding-window eviction under ingestion\n");
    let r = experiments::decay_experiment(config);
    println!(
        "ingested {} epochs | evicted {} leaves ({:.2} MB) | dropped {} day + {} month highlights",
        r.epochs_ingested,
        r.leaves_evicted,
        r.bytes_freed as f64 / 1e6,
        r.day_highlights_dropped,
        r.month_highlights_dropped
    );
    println!(
        "DFS saw {} deletes ({:.2} MB logical) | {} leaves remain present | {:.2} MB stored",
        r.dfs_deletes,
        r.dfs_bytes_deleted as f64 / 1e6,
        r.present_leaves,
        r.stored_bytes as f64 / 1e6
    );
    println!("(paper Fig. 5: full resolution decays first, then day/month highlights)");
}

fn chaos_run(config: &BenchConfig, seed: u64, cas: bool) {
    println!("\n## Chaos — seeded faults, repair, and degraded-coverage queries\n");
    let r = experiments::chaos_experiment_with(config, seed, cas);
    // Every `chaos:` line is a pure function of (seed, scale, days, backend)
    // — CI runs the experiment twice and diffs them to enforce determinism.
    println!(
        "chaos: seed={} backend={} epochs={} ingest_retries={} ingest_failures={}",
        r.seed,
        if r.cas { "cas" } else { "path" },
        r.epochs_ingested,
        r.ingest_retries,
        r.ingest_failures
    );
    let f = &r.faults;
    println!(
        "chaos: injected transient_reads={} transient_writes={} corrupt_replicas={} slow_reads={} crashes={} revivals={}",
        f.transient_reads_injected,
        f.transient_writes_injected,
        f.corrupt_replicas_injected,
        f.slow_reads_injected,
        f.crashes_injected,
        f.revivals
    );
    println!(
        "chaos: recovered checksum_mismatches={} read_failovers={} retry_attempts={} retry_successes={} retries_exhausted={}",
        f.checksum_mismatches, f.read_failovers, f.retry_attempts, f.retry_successes, f.retries_exhausted
    );
    let rep = &r.repair;
    println!(
        "chaos: repair passes={} blocks_scanned={} under_replicated={} replicas_added={} corrupt_dropped={} unrecoverable={}",
        f.repair_passes,
        rep.blocks_scanned,
        rep.under_replicated,
        rep.replicas_added,
        rep.corrupt_replicas_dropped,
        rep.unrecoverable
    );
    println!(
        "chaos: queries run={} exact={} partial={} unavailable={} inconsistent_coverage={}",
        r.queries_run,
        r.exact_results,
        r.partial_results,
        r.unavailable_results,
        r.inconsistent_coverage
    );
    println!(
        "chaos: blackout unavailable_epochs={} degraded_cleanly={}",
        r.blackout_unavailable, r.blackout_degraded_cleanly
    );
    println!(
        "chaos: final coverage={} present_leaves={} data_loss={}",
        r.final_coverage, r.present_leaves, r.data_loss_epochs
    );
    println!(
        "(acceptance: data_loss=0, repair healed every injected fault, same seed → identical lines)"
    );
    write_bench_json(
        "BENCH_CHAOS.json",
        &[
            ("experiment", "\"chaos\"".into()),
            ("seed", r.seed.to_string()),
            (
                "backend",
                format!("\"{}\"", if r.cas { "cas" } else { "path" }),
            ),
            ("epochs_ingested", r.epochs_ingested.to_string()),
            ("ingest_retries", r.ingest_retries.to_string()),
            ("ingest_failures", r.ingest_failures.to_string()),
            ("data_loss_epochs", r.data_loss_epochs.to_string()),
            ("repair_passes", r.faults.repair_passes.to_string()),
            ("replicas_added", r.repair.replicas_added.to_string()),
            (
                "corrupt_replicas_dropped",
                r.repair.corrupt_replicas_dropped.to_string(),
            ),
            ("queries_run", r.queries_run.to_string()),
            ("inconsistent_coverage", r.inconsistent_coverage.to_string()),
            ("coverage_served", r.final_coverage.served.to_string()),
            ("coverage_decayed", r.final_coverage.decayed.to_string()),
            (
                "coverage_unavailable",
                r.final_coverage.unavailable.to_string(),
            ),
        ],
    );
}

fn serve_run(config: &BenchConfig, clients: usize, seed: u64, introspect: bool) {
    println!("\n## Serving tier — concurrent clients under mid-run decay\n");
    let r = spate_bench::serve_experiment(config, clients, seed);
    // `serve:` lines are a pure function of (seed, clients, scale) — CI
    // runs the experiment twice and diffs them, and gates on the
    // stale_reads/protocol_errors fields being zero.
    println!(
        "serve: seed={} clients={} queries={} rows_streamed={} phase1_rows={} day0_count={} counts_agree={}",
        r.seed, r.clients, r.queries, r.rows_streamed, r.phase1_rows, r.day0_count, r.counts_agree
    );
    println!(
        "serve: per_client_rows={:?} stale_reads={} protocol_errors={}",
        r.per_client_rows, r.stale_reads, r.protocol_errors
    );
    // Meta-highlights: ticks happen at fixed workload barriers and the
    // run injects no faults, so both fields are deterministic — CI diffs
    // this line and gates on anomalies_deterministic=0.
    println!(
        "serve: meta_ticks={} anomalies_deterministic={}",
        r.meta_ticks, r.anomalies_deterministic
    );
    // Timing-dependent: never diffed, varies run to run.
    let (i50, i95, i99) = spate_bench::serve_bench::latency_us("interactive");
    let (s50, s95, s99) = spate_bench::serve_bench::latency_us("scan");
    println!(
        "serve-perf: throughput={:.0} q/s wall={:.3}s interactive_us p50={} p95={} p99={} scan_us p50={} p95={} p99={}",
        r.throughput(),
        r.wall_secs,
        i50,
        i95,
        i99,
        s50,
        s95,
        s99
    );
    println!(
        "serve-perf: shed_overflow={} shed_deadline={} shed_rate={:.4} client_retries={} prefetches={}",
        r.shed_overflow,
        r.shed_deadline,
        r.shed_rate(),
        r.shed_retries,
        r.prefetches
    );
    println!(
        "serve-perf: cache hit_ratio={:.3} hits={} misses={} inserts={} evictions={} invalidations={} (decay invalidated {})",
        r.cache.hit_ratio(),
        r.cache.hits,
        r.cache.misses,
        r.cache.inserts,
        r.cache.evictions,
        r.cache.invalidations,
        r.decay_invalidations
    );
    println!(
        "serve-perf: meta anomalies_total={} (timing-stream advisories; shed storms are expected under this load)",
        r.anomalies_total
    );
    if introspect {
        print_introspection(&r.introspect_stats, &r.introspect_trace);
    }
    println!(
        "(acceptance: stale_reads=0, protocol_errors=0, counts_agree=true, anomalies_deterministic=0, same seed → identical `serve:` lines)"
    );
    write_bench_json(
        "BENCH_SERVE.json",
        &[
            ("experiment", "\"serve\"".into()),
            ("seed", r.seed.to_string()),
            ("clients", r.clients.to_string()),
            ("queries", r.queries.to_string()),
            ("rows_streamed", r.rows_streamed.to_string()),
            ("throughput_qps", format!("{:.1}", r.throughput())),
            ("wall_secs", format!("{:.3}", r.wall_secs)),
            ("interactive_p50_us", i50.to_string()),
            ("interactive_p95_us", i95.to_string()),
            ("interactive_p99_us", i99.to_string()),
            ("scan_p50_us", s50.to_string()),
            ("scan_p95_us", s95.to_string()),
            ("scan_p99_us", s99.to_string()),
            ("shed_rate", format!("{:.4}", r.shed_rate())),
            ("cache_hit_ratio", format!("{:.3}", r.cache.hit_ratio())),
            ("stale_reads", r.stale_reads.to_string()),
            ("protocol_errors", r.protocol_errors.to_string()),
        ],
    );
}

fn chaos_serve_run(config: &BenchConfig, clients: usize, seed: u64) {
    println!("\n## Chaos-serve — adversarial serving-tier survivability drill\n");
    let r = spate_bench::chaos_serve_experiment(config, clients, seed);
    // Every `chaos-serve:` line is a pure function of (seed, clients,
    // scale) — CI runs the drill twice and diffs them byte-for-byte.
    for line in r.deterministic_lines() {
        println!("chaos-serve: {line}");
    }
    // Timing-dependent: wall time and timing-stream meta advisories
    // (deadline/cancel interrupts, shed pressure) vary run to run.
    println!(
        "chaos-serve-perf: wall={:.3}s meta_anomalies_total={} (timing-stream advisories included)",
        r.wall_secs, r.anomalies_total
    );
    println!(
        "(acceptance: all_terminal=true, survived=true, poison isolated={}/{}, \
         inconsistent_coverage=0, recovered_closed=true, degraded_unavailable=true, \
         same seed → identical `chaos-serve:` lines)",
        r.poison_isolated, r.poison_queries
    );
    // No timing fields in the JSON: CI byte-compares two same-seed runs.
    write_bench_json(
        "BENCH_CHAOS_SERVE.json",
        &[
            ("experiment", "\"chaos-serve\"".into()),
            ("seed", r.seed.to_string()),
            ("clients", r.clients.to_string()),
            ("requests_awaited", r.requests_awaited.to_string()),
            ("terminal_frames", r.terminal_frames.to_string()),
            ("all_terminal", r.all_terminal().to_string()),
            ("survived_storm", r.survived_storm.to_string()),
            ("healthy_queries", r.healthy_queries.to_string()),
            ("healthy_rows", r.healthy_rows.to_string()),
            ("poison_queries", r.poison_queries.to_string()),
            ("poison_isolated", r.poison_isolated.to_string()),
            ("worker_panics", r.worker_panics.to_string()),
            ("worker_respawns", r.worker_respawns.to_string()),
            ("deadline_storms", r.deadline_storms.to_string()),
            ("deadline_partials", r.deadline_partials.to_string()),
            ("cancels_sent", r.cancels_sent.to_string()),
            ("cancel_partials", r.cancel_partials.to_string()),
            ("malformed_frames", r.malformed_frames.to_string()),
            ("malformed_rejected", r.malformed_rejected.to_string()),
            ("protocol_errors", r.protocol_errors.to_string()),
            ("disconnects", r.disconnects.to_string()),
            ("sheds_seen", r.sheds_seen.to_string()),
            ("meta_ticks", r.meta_ticks.to_string()),
            ("survive_anomalies", r.survive_anomalies.to_string()),
            ("dfs_ingest_failures", r.dfs_ingest_failures.to_string()),
            ("dfs_queries", r.dfs_queries.to_string()),
            ("dfs_exact", r.dfs_exact.to_string()),
            ("dfs_partial", r.dfs_partial.to_string()),
            ("dfs_unavailable", r.dfs_unavailable.to_string()),
            (
                "dfs_inconsistent_coverage",
                r.dfs_inconsistent_coverage.to_string(),
            ),
            ("dfs_breaker_trips", r.dfs_breaker_trips.to_string()),
            (
                "drill_recovered_closed",
                r.drill_recovered_closed.to_string(),
            ),
            (
                "drill_degraded_unavailable",
                r.drill_degraded_unavailable.to_string(),
            ),
        ],
    );
}

/// Pretty-print the live introspection frames a serve run captured over
/// the wire just before shutdown. Contents are timing-dependent (which
/// request happens to be the latest trace, current counter values), so
/// nothing here carries a diffable prefix.
fn print_introspection(stats: &spate_serve::StatsFrame, trace: &spate_serve::TraceFrame) {
    println!("\nintrospection — live StatsFrame:");
    println!(
        "  queries={} rows_streamed={} shed_overflow={} shed_deadline={} protocol_errors={}",
        stats.queries,
        stats.rows_streamed,
        stats.shed_overflow,
        stats.shed_deadline,
        stats.protocol_errors
    );
    println!(
        "  queue interactive={} scan={} | cache hits={} misses={} evictions={} invalidations={}",
        stats.queue_interactive,
        stats.queue_scan,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.cache_invalidations
    );
    println!(
        "  meta ticks={} anomalies_total={} anomalies_deterministic={}",
        stats.meta_ticks, stats.anomalies_total, stats.anomalies_deterministic
    );
    for a in &stats.anomalies {
        println!(
            "  anomaly tick={} stream={} category={} share={:.3} deterministic={}",
            a.tick,
            a.stream,
            a.category,
            a.share_milli as f64 / 1000.0,
            a.deterministic
        );
    }
    println!(
        "  registry counters: {} (top: {})",
        stats.counters.len(),
        stats
            .counters
            .iter()
            .take(4)
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!(
        "\nintrospection — latest TraceFrame (trace_id={:#x}, {} spans):",
        trace.trace_id,
        trace.spans.len()
    );
    for line in spate_bench::serve_bench::trace_lines(trace) {
        println!("  {line}");
    }
}

fn trace_run(config: &BenchConfig, seed: u64) {
    println!("\n## Trace — one seeded request end-to-end, cold vs warm\n");
    let r = spate_bench::trace_experiment(config, seed);
    // `trace:` lines are a pure function of (seed, scale): span structure,
    // names, args and the cold/warm cache split never depend on timing.
    // CI diffs two runs byte-for-byte.
    println!(
        "trace: seed={} window=({},{}) cold_spans={} warm_spans={}",
        r.seed,
        r.window.0,
        r.window.1,
        r.cold.spans.len(),
        r.warm.spans.len()
    );
    let cold_misses = r
        .cold
        .spans
        .iter()
        .filter(|s| s.name == "cache.miss")
        .count();
    let warm_hits = r
        .warm
        .spans
        .iter()
        .filter(|s| s.name == "cache.hit")
        .count();
    println!("trace: cold_cache_misses={cold_misses} warm_cache_hits={warm_hits}");
    for line in spate_bench::serve_bench::trace_lines(&r.cold) {
        println!("trace: cold {line}");
    }
    for line in spate_bench::serve_bench::trace_lines(&r.warm) {
        println!("trace: warm {line}");
    }
    // Timing-dependent: the actual durations, never diffed.
    println!(
        "trace-perf: wall={:.3}s chrome_json_bytes={} (dump the full recorder with --trace-json)",
        r.wall_secs,
        r.chrome_json.len()
    );
    println!(
        "(acceptance: cold run misses once per window epoch, warm run hits every epoch, same seed → identical `trace:` lines)"
    );
}

fn cas_run(config: &BenchConfig, seed: u64) {
    println!("\n## CAS — content-addressed store vs. path store, same seeded week\n");
    let (r, perf) = experiments::cas_experiment(config, seed);
    // `cas:` lines are a pure function of (seed, scale, days) — CI runs
    // the experiment twice and diffs them byte-for-byte; the Merkle root
    // doubles as a whole-store content fingerprint.
    println!(
        "cas: seed={} epochs={} raw_bytes={} path_bytes={} cas_bytes={} reduction_permille={}",
        r.seed,
        r.epochs,
        r.raw_bytes,
        r.path_bytes,
        r.cas_bytes,
        r.reduction_permille()
    );
    println!(
        "cas: pack_bytes={} manifest_bytes={} dedup_hits={} dedup_bytes_saved={} unique_chunks={} packs={}",
        r.pack_bytes, r.manifest_bytes, r.dedup_hits, r.dedup_bytes_saved, r.unique_chunks, r.packs
    );
    println!("cas: manifest_root={}", r.manifest_root);
    println!(
        "cas: queries_run={} results_equal={}",
        r.queries_run, r.results_equal
    );
    println!(
        "cas: delta_bytes={} delta_cas_bytes={}",
        r.delta_bytes, r.delta_cas_bytes
    );
    println!(
        "cas: decay_freed={} gc_swept={} unreferenced_chunks={} leak_bytes={}",
        r.decay_freed, r.gc_swept, r.unreferenced_chunks, r.leak_bytes
    );
    println!(
        "CAS stores the week in {:.2} MB vs {:.2} MB path files — {:.1}% smaller at equal query results",
        r.cas_bytes as f64 / 1e6,
        r.path_bytes as f64 / 1e6,
        r.reduction_pct()
    );
    // Timing-dependent: never diffed, varies run to run.
    println!(
        "cas-perf: read_us path p50={} p95={} | cas p50={} p95={} | wall={:.3}s",
        perf.path_read_p50_us,
        perf.path_read_p95_us,
        perf.cas_read_p50_us,
        perf.cas_read_p95_us,
        perf.wall_secs
    );
    println!(
        "(acceptance: results_equal=true, reduction_permille>=200, leak_bytes=0, unreferenced_chunks=0, same seed → identical `cas:` lines)"
    );
    write_bench_json(
        "BENCH_CAS.json",
        &[
            ("experiment", "\"cas\"".into()),
            ("seed", r.seed.to_string()),
            ("epochs", r.epochs.to_string()),
            ("raw_bytes", r.raw_bytes.to_string()),
            ("path_bytes", r.path_bytes.to_string()),
            ("cas_bytes", r.cas_bytes.to_string()),
            ("pack_bytes", r.pack_bytes.to_string()),
            ("manifest_bytes", r.manifest_bytes.to_string()),
            ("reduction_pct", format!("{:.2}", r.reduction_pct())),
            ("reduction_permille", r.reduction_permille().to_string()),
            ("dedup_hits", r.dedup_hits.to_string()),
            ("dedup_bytes_saved", r.dedup_bytes_saved.to_string()),
            ("delta_bytes", r.delta_bytes.to_string()),
            ("delta_cas_bytes", r.delta_cas_bytes.to_string()),
            ("manifest_root", format!("\"{}\"", r.manifest_root)),
            ("results_equal", r.results_equal.to_string()),
            (
                "gc_reclaimed_bytes",
                (r.decay_freed + r.gc_swept).to_string(),
            ),
            ("leak_bytes", r.leak_bytes.to_string()),
            ("unreferenced_chunks", r.unreferenced_chunks.to_string()),
            ("path_read_p95_us", perf.path_read_p95_us.to_string()),
            ("cas_read_p95_us", perf.cas_read_p95_us.to_string()),
            ("wall_secs", format!("{:.3}", perf.wall_secs)),
        ],
    );
}

fn heat_run(config: &BenchConfig, seed: u64) {
    println!("\n## Heat — per-query cost accounting and the heat ledger\n");
    let r = spate_bench::heat_experiment(config, seed);
    // Every `heat:` line is a pure function of (seed, scale, days) — CI
    // runs the experiment twice and diffs them byte-for-byte, and gates
    // on leak_bytes=0 / profiles_reconcile=true / restart_bands_identical.
    println!(
        "heat: seed={} epochs={} queries={} bytes_read_total={} bytes_decompressed_total={}",
        r.seed, r.epochs_ingested, r.queries_run, r.bytes_read_total, r.bytes_decompressed_total
    );
    println!(
        "heat: rows_scanned={} rows_returned={} epochs_touched={} leak_bytes={} profiles_reconcile={}",
        r.rows_scanned, r.rows_returned, r.epochs_touched, r.leak_bytes, r.profiles_reconcile
    );
    println!(
        "heat: bands hot={} warm={} cold={} tracked={} tick={} exports_consistent={}",
        r.hot, r.warm, r.cold, r.tracked_epochs, r.ledger_tick, r.exports_consistent
    );
    for (epoch, heat_milli, accesses) in &r.top_epochs {
        println!("heat: top_epoch={epoch} heat_milli={heat_milli} accesses={accesses}");
    }
    for (attr, accesses) in &r.top_attributes {
        println!("heat: top_attribute={attr} accesses={accesses}");
    }
    // The rows EXPLAIN ANALYZE would print for the paper's T1 and T4,
    // timing entries stripped so the lines stay diffable.
    println!("heat: t1 result_rows={}", r.t1_rows);
    for (metric, value) in &r.t1_metrics {
        println!("heat: t1 {metric}={value}");
    }
    println!("heat: t4 result_rows={}", r.t4_rows);
    for (metric, value) in &r.t4_metrics {
        println!("heat: t4 {metric}={value}");
    }
    println!(
        "heat: restart_bands_identical={} restart_tracked={} index_image_bytes={}",
        r.restart_bands_identical, r.restart_tracked_epochs, r.index_image_bytes
    );
    // Timing-dependent: never diffed.
    println!("heat-perf: wall={:.3}s", r.wall_secs);
    println!(
        "(acceptance: leak_bytes=0, profiles_reconcile=true, hot>0, restart_bands_identical=true, same seed → identical `heat:` lines)"
    );
    // Unlike the other bench reports this one carries no timing field:
    // CI `cmp`s two same-seed BENCH_HEAT.json files byte-for-byte.
    write_bench_json(
        "BENCH_HEAT.json",
        &[
            ("experiment", "\"heat\"".into()),
            ("seed", r.seed.to_string()),
            ("epochs_ingested", r.epochs_ingested.to_string()),
            ("queries_run", r.queries_run.to_string()),
            ("bytes_read_total", r.bytes_read_total.to_string()),
            (
                "bytes_decompressed_total",
                r.bytes_decompressed_total.to_string(),
            ),
            ("rows_scanned", r.rows_scanned.to_string()),
            ("rows_returned", r.rows_returned.to_string()),
            ("epochs_touched", r.epochs_touched.to_string()),
            ("leak_bytes", r.leak_bytes.to_string()),
            ("profiles_reconcile", r.profiles_reconcile.to_string()),
            ("hot", r.hot.to_string()),
            ("warm", r.warm.to_string()),
            ("cold", r.cold.to_string()),
            ("tracked_epochs", r.tracked_epochs.to_string()),
            ("ledger_tick", r.ledger_tick.to_string()),
            (
                "top_epoch",
                r.top_epochs.first().map_or(0, |(e, _, _)| *e).to_string(),
            ),
            (
                "top_attribute",
                format!(
                    "\"{}\"",
                    r.top_attributes.first().map_or("", |(a, _)| a.as_str())
                ),
            ),
            ("t1_result_rows", r.t1_rows.to_string()),
            ("t4_result_rows", r.t4_rows.to_string()),
            ("exports_consistent", r.exports_consistent.to_string()),
            (
                "restart_bands_identical",
                r.restart_bands_identical.to_string(),
            ),
            ("index_image_bytes", r.index_image_bytes.to_string()),
        ],
    );
}

/// Persist a flat machine-readable report next to the human-readable run
/// output. Values arrive pre-formatted as JSON literals (numbers bare,
/// strings quoted) so the writer stays dependency-free.
fn write_bench_json(name: &str, fields: &[(&str, String)]) {
    let mut out = String::from("{\n");
    for (i, (k, v)) in fields.iter().enumerate() {
        out.push_str(&format!("  \"{k}\": {v}"));
        out.push_str(if i + 1 == fields.len() { "\n" } else { ",\n" });
    }
    out.push_str("}\n");
    std::fs::write(name, out).unwrap_or_else(|e| panic!("writing {name}: {e}"));
    println!("bench report written to {name}");
}

fn response_figs(config: &BenchConfig) {
    println!("\n## Figures 11-12 — task response time (s)\n");
    println!(
        "Ingesting {} days at scale 1/{:.0}...",
        config.days,
        1.0 / config.scale
    );
    let (mut fws, mut generator) = build_frameworks(config);
    spate_bench::setup::ingest_all(
        &mut fws,
        &mut generator,
        (config.days * EPOCHS_PER_DAY) as usize,
    );
    let r = experiments::response_experiment(config, &fws);

    println!(
        "\n{:<16} {:>10} {:>10} {:>10}   note",
        "task", FRAMEWORK_NAMES[0], FRAMEWORK_NAMES[1], FRAMEWORK_NAMES[2]
    );
    println!("{}", "-".repeat(72));
    for (i, (name, t)) in r.tasks.iter().enumerate() {
        let note = match i {
            0..=2 => "paper: SPATE within 0.1-3s of SHAHED",
            3 => "paper: SPATE 4-5x faster (nested loop re-reads)",
            4 => "paper: comparable",
            _ => "paper: CPU-bound, all comparable (Fig. 12)",
        };
        println!(
            "{:<16} {:>10.4} {:>10.4} {:>10.4}   {note}",
            name, t[0], t[1], t[2]
        );
    }
}
