//! `repro heat` — per-query cost accounting and the system-wide heat
//! ledger over a seeded exploration workload.
//!
//! The experiment answers the two operator questions the observability
//! layer exists for, end to end and deterministically:
//!
//! * **"What did query R cost?"** — every query runs under an
//!   [`obs::cost`] guard ([`spate_core::profile_query`] for explorations,
//!   [`spate_sql::query_profiled`] for the paper's T1/T4 as SQL) and the
//!   experiment gates on every profile *reconciling*: bytes per source
//!   sum to the total, nothing unattributed.
//! * **"Which epochs are hot?"** — the skewed workload (half the queries
//!   land on the most recent epochs) must separate the temporal index's
//!   heat ledger into non-trivial hot/warm/cold bands, and those bands
//!   must survive a persist + restore round-trip byte-identically.
//!
//! Every `heat:` line printed by `repro` from this report is a pure
//! function of `(seed, scale, days)` — CI runs the experiment twice and
//! diffs the lines. Wall time goes on a `heat-perf:` line, never diffed.

use crate::setup::BenchConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spate_core::framework::{ExplorationFramework, SpateFramework};
use spate_core::{profile_query, Query};
use spate_sql::{parser, query_profiled, SqlContext};
use std::collections::BTreeSet;
use telco_trace::cells::BoundingBox;
use telco_trace::time::{EpochId, EPOCHS_PER_DAY};

/// Everything `repro heat` prints. All fields except [`wall_secs`] and
/// [`index_image_bytes`]'s storage timing are pure functions of the seed
/// and the bench config.
///
/// [`wall_secs`]: HeatBenchReport::wall_secs
/// [`index_image_bytes`]: HeatBenchReport::index_image_bytes
pub struct HeatBenchReport {
    pub seed: u64,
    pub epochs_ingested: u32,
    /// Explore queries profiled (excludes the two SQL tasks).
    pub queries_run: usize,
    /// Summed over every profile (explores + T1 + T4).
    pub bytes_read_total: u64,
    pub bytes_decompressed_total: u64,
    pub rows_scanned: u64,
    pub rows_returned: u64,
    /// Union of epochs touched across all profiles.
    pub epochs_touched: usize,
    /// Σ `unattributed_bytes()` — the zero-cost-leak gate.
    pub leak_bytes: u64,
    /// Every profile passed `CostProfile::reconciles()`.
    pub profiles_reconcile: bool,
    /// T1's deterministic profile rows (`time.*` entries dropped).
    pub t1_metrics: Vec<(String, String)>,
    pub t1_rows: usize,
    /// T4's deterministic profile rows (`time.*` entries dropped).
    pub t4_metrics: Vec<(String, String)>,
    pub t4_rows: usize,
    /// Heat-band census after the workload.
    pub hot: usize,
    pub warm: usize,
    pub cold: usize,
    pub tracked_epochs: usize,
    pub ledger_tick: u64,
    /// `(epoch, heat_milli, accesses)` of the five hottest epochs. Heat is
    /// reported in thousandths so the diffable line never prints a float.
    pub top_epochs: Vec<(u32, u64, u64)>,
    /// `(attribute, accesses)` of the three hottest attributes.
    pub top_attributes: Vec<(String, u64)>,
    /// JSON + Prometheus exports render and carry the band census.
    pub exports_consistent: bool,
    /// Gzip'd index image size from `persist_index` (content-deterministic).
    pub index_image_bytes: u64,
    /// `HeatReport::bands()` identical before persist and after restore.
    pub restart_bands_identical: bool,
    pub restart_tracked_epochs: usize,
    /// Timing-dependent; never diffed.
    pub wall_secs: f64,
}

/// The attribute pool the skewed workload draws from, hottest-first by
/// construction (upflux is in every query).
const ATTRIBUTES: [&str; 3] = ["upflux", "downflux", "call_drops"];

/// Number of explore queries in the seeded workload.
const EXPLORE_QUERIES: usize = 64;

/// Run the cost-accounting / heat-ledger experiment. Panics on storage
/// errors (the bench DFS is fault-free here).
pub fn heat_experiment(config: &BenchConfig, seed: u64) -> HeatBenchReport {
    let t0 = std::time::Instant::now();
    let total_epochs = config.days * EPOCHS_PER_DAY;
    assert!(config.days >= 2, "heat experiment needs at least 2 days");

    // One SPATE warehouse; the dfs handle is shared so the restored
    // framework later reads the same simulated cluster.
    let dfs = config.dfs();
    let mut generator = config.generator();
    let layout = generator.layout().clone();
    let mut fw = SpateFramework::new(dfs.clone(), layout.clone());
    let mut ingested = 0u32;
    for _ in 0..total_epochs {
        let Some(snapshot) = generator.next_snapshot() else {
            break;
        };
        fw.ingest(&snapshot);
        ingested += 1;
    }

    // Seeded, recency-skewed exploration workload: half the queries land
    // on the hot zone (the 12 newest epochs), a third on the newest day,
    // the rest anywhere — the shape that separates the heat bands.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut profiles = Vec::with_capacity(EXPLORE_QUERIES + 2);
    let last = ingested.saturating_sub(1);
    for _ in 0..EXPLORE_QUERIES {
        let len = rng.gen_range(1..=4u32);
        let zone = rng.gen_range(0..100u32);
        let hi_start = last.saturating_sub(len - 1);
        let start = if zone < 50 {
            rng.gen_range(last.saturating_sub(11)..=hi_start)
        } else if zone < 83 {
            rng.gen_range(last.saturating_sub(EPOCHS_PER_DAY - 1)..=hi_start)
        } else {
            rng.gen_range(0..=hi_start)
        };
        let mut attrs: Vec<&str> = vec![ATTRIBUTES[0]];
        if rng.gen_range(0..2u32) == 0 {
            attrs.push(ATTRIBUTES[1]);
        }
        if rng.gen_range(0..4u32) == 0 {
            attrs.push(ATTRIBUTES[2]);
        }
        let q = Query::new(&attrs, BoundingBox::everything())
            .with_epoch_range(start, (start + len - 1).min(last));
        let (_result, profile) = profile_query(&fw, &q);
        profiles.push(profile);
    }

    // The paper's T1 (equality) and T4 (self-join) as SQL, profiled by
    // the same machinery `EXPLAIN ANALYZE` uses. Windows follow the
    // response experiment's convention, clamped to short traces.
    let base = (config.days.min(5) - 1) * EPOCHS_PER_DAY;
    let t1_epoch = EpochId(base + 24);
    let t4_window = (EpochId(base + 14), EpochId(base + 21));

    let t1_stmt = parser::parse("SELECT upflux, downflux FROM CDR").expect("t1 sql");
    let t1_ctx = SqlContext::new(&fw, t1_epoch, t1_epoch);
    let (t1_result, t1_profile) = query_profiled(&t1_ctx, &t1_stmt).expect("t1 run");

    let t4_stmt = parser::parse(
        "SELECT a.caller_id, a.cell_id, b.cell_id FROM CDR a, CDR b \
         WHERE a.caller_id = b.caller_id AND a.cell_id != b.cell_id",
    )
    .expect("t4 sql");
    let t4_ctx = SqlContext::new(&fw, t4_window.0, t4_window.1);
    let (t4_result, t4_profile) = query_profiled(&t4_ctx, &t4_stmt).expect("t4 run");

    // Aggregate cost accounting across every profile; the acceptance
    // gates are leak_bytes == 0 and profiles_reconcile == true.
    profiles.push(t1_profile.clone());
    profiles.push(t4_profile.clone());
    let mut bytes_read_total = 0u64;
    let mut bytes_decompressed_total = 0u64;
    let mut rows_scanned = 0u64;
    let mut rows_returned = 0u64;
    let mut leak_bytes = 0u64;
    let mut touched: BTreeSet<u64> = BTreeSet::new();
    let mut profiles_reconcile = true;
    for p in &profiles {
        bytes_read_total += p.bytes_read_total;
        bytes_decompressed_total += p.bytes_decompressed_total;
        rows_scanned += p.rows_scanned;
        rows_returned += p.rows_returned;
        leak_bytes += p.unattributed_bytes();
        touched.extend(p.epochs_touched.iter().copied());
        profiles_reconcile &= p.reconciles();
    }

    // Heat census, exports, and the restart round-trip.
    let heat = fw.index().heat();
    heat.publish_gauges();
    let report = heat.report();
    let json = report.to_json();
    let prom = report.to_prometheus();
    let exports_consistent = json.contains("\"tick\"")
        && json.contains("\"bands\"")
        && prom.contains("spate_heat_band_total")
        && prom.contains(&format!("{}", report.hot));

    let top_epochs = report
        .epochs
        .iter()
        .take(5)
        .map(|e| (e.epoch.0, (e.heat * 1000.0).round() as u64, e.accesses))
        .collect();
    let top_attributes = report
        .attributes
        .iter()
        .take(3)
        .map(|(name, _, accesses)| (name.clone(), *accesses))
        .collect();

    let index_image_bytes = fw.persist_index().expect("persist index image");
    let restored = SpateFramework::restore(dfs, layout).expect("restore warehouse");
    let restored_report = restored.index().heat().report();
    let restart_bands_identical = restored_report.bands() == report.bands();

    let strip_timings = |p: &obs::CostProfile| {
        p.rows()
            .into_iter()
            .filter(|(metric, _)| !metric.starts_with("time."))
            .collect::<Vec<_>>()
    };

    HeatBenchReport {
        seed,
        epochs_ingested: ingested,
        queries_run: EXPLORE_QUERIES,
        bytes_read_total,
        bytes_decompressed_total,
        rows_scanned,
        rows_returned,
        epochs_touched: touched.len(),
        leak_bytes,
        profiles_reconcile,
        t1_metrics: strip_timings(&t1_profile),
        t1_rows: t1_result.len(),
        t4_metrics: strip_timings(&t4_profile),
        t4_rows: t4_result.len(),
        hot: report.hot,
        warm: report.warm,
        cold: report.cold,
        tracked_epochs: report.epochs.len(),
        ledger_tick: report.tick,
        top_epochs,
        top_attributes,
        exports_consistent,
        index_image_bytes,
        restart_bands_identical,
        restart_tracked_epochs: restored_report.epochs.len(),
        wall_secs: t0.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig {
            scale: 1.0 / 4096.0,
            days: 2,
            throttled: false,
        }
    }

    #[test]
    fn heat_experiment_reconciles_and_survives_restart() {
        let r = heat_experiment(&tiny(), 11);
        assert_eq!(r.epochs_ingested, 2 * EPOCHS_PER_DAY);
        assert_eq!(r.queries_run, EXPLORE_QUERIES);
        assert!(r.profiles_reconcile, "a profile failed to reconcile");
        assert_eq!(r.leak_bytes, 0, "unattributed bytes leaked");
        assert!(r.bytes_read_total > 0);
        assert!(r.rows_scanned > 0);
        assert!(r.epochs_touched > 0);
        assert!(r.hot > 0, "skewed workload must produce hot epochs");
        assert!(r.tracked_epochs >= r.hot + r.warm);
        assert!(r.exports_consistent);
        assert!(r.restart_bands_identical, "heat bands changed on restart");
        assert_eq!(r.restart_tracked_epochs, r.tracked_epochs);
        assert!(r.index_image_bytes > 0);
        // The SQL profiles carry the rows EXPLAIN ANALYZE would print.
        let names: Vec<&str> = r.t1_metrics.iter().map(|(m, _)| m.as_str()).collect();
        assert!(names.contains(&"rows_scanned"));
        assert!(names.contains(&"unattributed_bytes"));
        assert!(!names.iter().any(|m| m.starts_with("time.")));
    }

    #[test]
    fn same_seed_is_deterministic() {
        let (a, b) = (heat_experiment(&tiny(), 7), heat_experiment(&tiny(), 7));
        assert_eq!(a.bytes_read_total, b.bytes_read_total);
        assert_eq!(a.bytes_decompressed_total, b.bytes_decompressed_total);
        assert_eq!(a.rows_scanned, b.rows_scanned);
        assert_eq!(a.rows_returned, b.rows_returned);
        assert_eq!(a.epochs_touched, b.epochs_touched);
        assert_eq!((a.hot, a.warm, a.cold), (b.hot, b.warm, b.cold));
        assert_eq!(a.top_epochs, b.top_epochs);
        assert_eq!(a.top_attributes, b.top_attributes);
        assert_eq!(a.t1_metrics, b.t1_metrics);
        assert_eq!(a.t4_metrics, b.t4_metrics);
        assert_eq!(a.t1_rows, b.t1_rows);
        assert_eq!(a.t4_rows, b.t4_rows);
    }

    #[test]
    fn different_seeds_shift_the_workload() {
        let (a, b) = (heat_experiment(&tiny(), 1), heat_experiment(&tiny(), 2));
        // Same trace, different queries: totals may coincide but the
        // per-epoch access pattern should not be identical.
        assert!(
            a.top_epochs != b.top_epochs || a.bytes_read_total != b.bytes_read_total,
            "two seeds produced an identical workload"
        );
    }
}
