//! Closed-loop load generator for the serving tier (`repro serve`).
//!
//! N seeded clients hammer one [`Server`] through the frame protocol in
//! two barrier-separated phases. Between the phases the main thread
//! ingests the first snapshot of day 2, which triggers the decay pass
//! and evicts every day-0 epoch the clients were just reading — the
//! same mid-run mutation the CI smoke gate uses to prove the shared
//! cache never serves stale rows.
//!
//! The report splits cleanly into two halves:
//!
//! * **answer-deterministic** — query counts, per-client row totals,
//!   the day-0 SQL aggregate, stale reads, protocol errors. These are a
//!   pure function of `(seed, clients, scale)` regardless of thread
//!   interleaving; the `repro` binary prints them as `serve:` lines and
//!   CI diffs two runs byte-for-byte.
//! * **timing-dependent** — latency percentiles, throughput, shed and
//!   cache-hit counts. Printed as `serve-perf:` lines, never diffed.

use crate::BenchConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spate_core::framework::ExplorationFramework;
use spate_core::framework::SpateFramework;
use spate_core::DecayPolicy;
use spate_serve::{CacheStats, Reply, ServeConfig, Server, StatsFrame, TraceFrame};
use std::sync::{Arc, Barrier};
use telco_trace::cells::BoundingBox;
use telco_trace::record::Value;
use telco_trace::time::EPOCHS_PER_DAY;
use telco_trace::{Snapshot, TraceConfig, TraceGenerator};

/// Per-client workload volume (per phase where applicable).
const INTERACTIVE_QUERIES: usize = 24;
const SCAN_QUERIES: usize = 6;

#[derive(Debug, Clone)]
pub struct ServeReport {
    pub seed: u64,
    pub clients: usize,
    /// Queries actually served (shed submissions retried by clients are
    /// admitted exactly once each, so this is workload-deterministic).
    pub queries: u64,
    pub rows_streamed: u64,
    /// Sum over clients of phase-1 exact row totals.
    pub phase1_rows: u64,
    pub per_client_rows: Vec<u64>,
    /// The day-0 `SELECT COUNT(*) FROM CDR` every client computed in
    /// phase 1 — identical across clients or the run is broken.
    pub day0_count: i64,
    pub counts_agree: bool,
    /// Phase-2 replies over the decayed day that still carried rows.
    pub stale_reads: u64,
    pub protocol_errors: u64,
    /// Meta-highlights self-monitoring: the monitor is ticked at fixed
    /// workload boundaries, so the tick count is a constant of the
    /// scenario and a fault-free run reports exactly zero deterministic
    /// anomalies (both diffed by CI). `anomalies_total` may also count
    /// timing-stream advisories (shed storms are expected here) and is
    /// reported but never diffed.
    pub meta_ticks: u64,
    pub anomalies_total: u64,
    pub anomalies_deterministic: u64,
    // ---- timing-dependent below ----
    pub shed_overflow: u64,
    pub shed_deadline: u64,
    /// Client-side resubmissions after a shed reply.
    pub shed_retries: u64,
    pub cache: CacheStats,
    pub decay_invalidations: u64,
    pub prefetches: u64,
    pub wall_secs: f64,
    /// Live introspection frames fetched over the wire just before
    /// shutdown — what `repro serve --introspect` prints.
    pub introspect_stats: StatsFrame,
    pub introspect_trace: TraceFrame,
}

impl ServeReport {
    pub fn throughput(&self) -> f64 {
        self.queries as f64 / self.wall_secs.max(1e-9)
    }

    pub fn shed_rate(&self) -> f64 {
        let shed = self.shed_overflow + self.shed_deadline;
        shed as f64 / (self.queries + shed).max(1) as f64
    }
}

/// Latency percentiles in microseconds for one admission class, read
/// back from the labeled `serve.latency_us{class="..."}` histogram the
/// server populates (one metric name, one label — not a mangled name
/// per class).
pub fn latency_us(class: &str) -> (u64, u64, u64) {
    let h = obs::global().histogram_labeled("serve.latency_us", &[("class", class)]);
    (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99))
}

/// Drive the full two-phase scenario and collect the report.
pub fn serve_experiment(config: &BenchConfig, clients: usize, seed: u64) -> ServeReport {
    // One experiment = one measurement window. Clearing the registry and
    // flight recorder up front makes every metric-derived report field
    // (prefetch count, latency quantiles, the meta monitor's sampling
    // windows) describe this run only.
    obs::reset();
    let day = EPOCHS_PER_DAY;
    let mut trace_config = TraceConfig::scaled(config.scale);
    trace_config.days = 3;
    let mut generator = TraceGenerator::new(trace_config);
    let layout = generator.layout().clone();
    let snaps: Vec<Snapshot> = (&mut generator).take(2 * day as usize + 1).collect();

    let policy = DecayPolicy {
        full_resolution_days: 1,
        day_highlight_days: 100,
        month_highlight_days: 100,
        year_highlight_days: 100,
    };
    let mut fw = SpateFramework::in_memory(layout).with_decay(policy);
    for s in &snaps[..2 * day as usize] {
        fw.ingest(s);
    }

    let server = Arc::new(Server::start(fw, ServeConfig::default()));
    let barrier = Arc::new(Barrier::new(clients + 1));
    let started = std::time::Instant::now();

    let mut handles = Vec::new();
    for c in 0..clients {
        let server = server.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            client_loop(&server, &barrier, seed, c as u64)
        }));
    }

    barrier.wait(); // all clients finished phase 1
                    // Meta-monitor ticks happen at workload boundaries (the clients are
                    // parked on barriers), so the tick count is a constant of the
                    // scenario: 2 after phase 1, 1 after the decay ingest, 2 after
                    // phase 2 — five per run, diffable.
    server.monitor_tick();
    server.monitor_tick();
    let invalidated_before = server.cache_stats().invalidations;
    server.ingest(&snaps[2 * day as usize]); // day 2 arrives → day 0 decays
    let decay_invalidations = server.cache_stats().invalidations - invalidated_before;
    server.monitor_tick();
    barrier.wait(); // release phase 2

    let mut report = ServeReport {
        seed,
        clients,
        queries: 0,
        rows_streamed: 0,
        phase1_rows: 0,
        per_client_rows: Vec::with_capacity(clients),
        day0_count: -1,
        counts_agree: true,
        stale_reads: 0,
        protocol_errors: 0,
        meta_ticks: 0,
        anomalies_total: 0,
        anomalies_deterministic: 0,
        shed_overflow: 0,
        shed_deadline: 0,
        shed_retries: 0,
        cache: CacheStats::default(),
        decay_invalidations,
        prefetches: 0,
        wall_secs: 0.0,
        introspect_stats: StatsFrame::default(),
        introspect_trace: TraceFrame::default(),
    };
    for h in handles {
        let c = h.join().expect("serve client panicked");
        report.phase1_rows += c.rows;
        report.per_client_rows.push(c.rows);
        report.stale_reads += c.stale_reads;
        report.shed_retries += c.shed_retries;
        if report.day0_count < 0 {
            report.day0_count = c.day0_count;
        } else if report.day0_count != c.day0_count {
            report.counts_agree = false;
        }
    }
    report.wall_secs = started.elapsed().as_secs_f64();
    report.cache = server.cache_stats();
    report.prefetches = obs::global().counter("serve.prefetch").get();

    server.monitor_tick();
    server.monitor_tick();
    let meta = server.meta_summary();
    report.meta_ticks = meta.ticks;
    report.anomalies_total = meta.anomalies_total;
    report.anomalies_deterministic = meta.anomalies_deterministic;

    // Live introspection over the wire — the same control frames any
    // client could send mid-run. Stats and Trace are answered on the
    // reader thread, so this works even while workers are saturated.
    let mut probe = server.connect();
    report.introspect_stats = probe.stats().expect("stats frame");
    report.introspect_trace = probe.trace(0).expect("trace frame");
    probe.close();

    let server = Arc::into_inner(server).expect("clients still hold server handles");
    let stats = server.shutdown();
    report.queries = stats.queries;
    report.rows_streamed = stats.rows_streamed;
    report.protocol_errors = stats.protocol_errors;
    report.shed_overflow = stats.shed_overflow;
    report.shed_deadline = stats.shed_deadline;
    report
}

/// Output of `repro trace`: one fully-traced cold request, its warm
/// re-read, and the flight-recorder exports that explain them.
#[derive(Debug, Clone)]
pub struct TraceReport {
    pub seed: u64,
    /// The traced window `(a, b)`.
    pub window: (u32, u32),
    /// Cold request: every epoch in the window misses the cache.
    pub cold: TraceFrame,
    /// Same window again: every epoch hits.
    pub warm: TraceFrame,
    /// Live stats frame captured after both requests.
    pub stats: StatsFrame,
    /// Chrome `trace_event` JSON for the cold request (open in
    /// `chrome://tracing` / Perfetto).
    pub chrome_json: String,
    pub wall_secs: f64,
}

/// Render one wire trace as deterministic, diffable lines: span ids are
/// rewritten to their index inside the trace (absolute ids come from a
/// process-global counter) and durations are omitted. Structure, names
/// and args are a pure function of the seeded workload.
pub fn trace_lines(frame: &TraceFrame) -> Vec<String> {
    let mut index = std::collections::HashMap::new();
    for s in &frame.spans {
        if s.span_id != 0 && !index.contains_key(&s.span_id) {
            index.insert(s.span_id, index.len() + 1);
        }
    }
    frame
        .spans
        .iter()
        .map(|s| {
            let own = index.get(&s.span_id).copied().unwrap_or(0);
            let parent = index.get(&s.parent_id).copied().unwrap_or(0);
            let kind = if s.instant { "instant" } else { "span" };
            let args: String = s.args.iter().map(|(k, v)| format!(" {k}={v}")).collect();
            format!("{kind} #{own} parent=#{parent} {}{args}", s.name)
        })
        .collect()
}

/// Deterministic single-request tracing scenario (`repro trace`): one
/// worker, prefetch off, a seeded window explored cold then warm. The
/// resulting span trees answer "why was request R slow" — the cold
/// trace shows one `cache.miss` per window epoch with the decompress /
/// parse / index work under it, the warm trace shows only hits.
pub fn trace_experiment(config: &BenchConfig, seed: u64) -> TraceReport {
    obs::reset();
    let mut trace_config = TraceConfig::scaled(config.scale);
    trace_config.days = 1;
    let mut generator = TraceGenerator::new(trace_config);
    let layout = generator.layout().clone();
    let snaps: Vec<Snapshot> = (&mut generator).take(6).collect();
    let mut fw = SpateFramework::in_memory(layout);
    for s in &snaps {
        fw.ingest(s);
    }

    let started = std::time::Instant::now();
    let server = Server::start(
        fw,
        ServeConfig {
            workers: 1,
            prefetch: false, // keep the cold span tree minimal and exact
            ..ServeConfig::default()
        },
    );
    let mut conn = server.connect();

    let mut rng = StdRng::seed_from_u64(seed);
    let start = rng.gen_range(0..3u32);
    let window = (start, start + 3);

    let explore = |conn: &mut spate_serve::ClientConn| match conn
        .explore(&["upflux", "downflux"], BoundingBox::everything(), window)
        .expect("transport failed")
    {
        Reply::Rows { .. } => {}
        other => panic!("trace scenario expected rows, got {other:?}"),
    };
    explore(&mut conn);
    let cold_id = conn.last_trace_id().expect("request sent");
    explore(&mut conn);
    let warm_id = conn.last_trace_id().expect("request sent");

    server.monitor_tick();
    let cold = conn.trace(cold_id).expect("cold trace");
    let warm = conn.trace(warm_id).expect("warm trace");
    let stats = conn.stats().expect("stats frame");
    let chrome_json = obs::export::chrome_trace(&obs::flight().trace(cold_id));
    conn.close();
    server.shutdown();

    TraceReport {
        seed,
        window,
        cold,
        warm,
        stats,
        chrome_json,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

struct ClientOutcome {
    rows: u64,
    day0_count: i64,
    stale_reads: u64,
    shed_retries: u64,
}

fn client_loop(server: &Server, barrier: &Barrier, seed: u64, id: u64) -> ClientOutcome {
    let day = EPOCHS_PER_DAY;
    let mut conn = server.connect();
    let mut rng = StdRng::seed_from_u64(seed ^ id.wrapping_mul(0x9E37_79B9));
    let mut retries = 0u64;

    // Deterministic workload, fixed before any racing begins.
    let interactive: Vec<(u32, u32)> = (0..INTERACTIVE_QUERIES)
        .map(|_| {
            let start = rng.gen_range(0..day - 6);
            let len = rng.gen_range(1..=6);
            (start, start + len - 1)
        })
        .collect();
    // Long windows over both retained days: classified as scans, queued
    // on the low-priority lane, and deliberately deep enough to overflow
    // it now and then so the shed/retry path sees real traffic.
    let scans: Vec<(u32, u32)> = (0..SCAN_QUERIES)
        .map(|_| {
            let start = rng.gen_range(0..2 * day - 25);
            let len = rng.gen_range(12..=24);
            (start, start + len - 1)
        })
        .collect();
    let day0 = (0u32, day - 1);

    // Submit until a non-shed reply; every workload item is served once.
    fn explore_once(conn: &mut spate_serve::ClientConn, w: (u32, u32), retries: &mut u64) -> Reply {
        loop {
            match conn
                .explore(&["upflux", "downflux"], BoundingBox::everything(), w)
                .expect("transport failed")
            {
                Reply::Shed { .. } => *retries += 1,
                reply => return reply,
            }
        }
    }

    // Phase 1: everything retained; exact rows everywhere.
    let mut rows = 0u64;
    for &w in interactive.iter().chain(&scans) {
        match explore_once(&mut conn, w, &mut retries) {
            Reply::Rows { total_rows, .. } => rows += total_rows,
            other => panic!("phase 1 expected rows, got {other:?}"),
        }
    }
    let day0_count = loop {
        match conn
            .sql(day0, "SELECT COUNT(*) FROM CDR")
            .expect("transport failed")
        {
            Reply::Shed { .. } => retries += 1,
            Reply::Rows { rows, .. } => match rows[0][0][0] {
                Value::Int(n) => break n,
                ref v => panic!("unexpected count value {v:?}"),
            },
            other => panic!("phase 1 sql expected rows, got {other:?}"),
        }
    };

    barrier.wait(); // phase 1 done
    barrier.wait(); // day 0 decayed

    // Phase 2: the same day-0 windows must all answer with summaries.
    let mut stale_reads = 0u64;
    for &w in &interactive {
        match explore_once(&mut conn, w, &mut retries) {
            Reply::Summary { .. } => {}
            Reply::Rows { .. } => stale_reads += 1,
            other => panic!("phase 2 unexpected reply {other:?}"),
        }
    }
    loop {
        match conn
            .sql(day0, "SELECT COUNT(*) FROM CDR")
            .expect("transport failed")
        {
            Reply::Shed { .. } => retries += 1,
            Reply::Rows { rows, .. } => {
                if rows[0][0][0] != Value::Int(0) {
                    stale_reads += 1;
                }
                break;
            }
            other => panic!("phase 2 sql unexpected reply {other:?}"),
        }
    }

    conn.close();
    ClientOutcome {
        rows,
        day0_count,
        stale_reads,
        shed_retries: retries,
    }
}
