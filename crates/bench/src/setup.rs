//! Shared testbed assembly: generated trace + the three frameworks on
//! their own simulated clusters, mirroring §VII of the paper.

use dfs::{Dfs, DfsConfig, IoModel};
use spate_core::framework::{ExplorationFramework, RawFramework, ShahedFramework, SpateFramework};
use telco_trace::{Snapshot, TraceConfig, TraceGenerator};

/// Experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Trace volume as a fraction of the paper's 5 GB (see
    /// `TraceConfig::scaled`).
    pub scale: f64,
    /// Trace length in days (the paper: 7).
    pub days: u32,
    /// Apply the cluster-disk I/O model (bandwidth + seek + page cache).
    /// Unthrottled runs measure pure CPU shapes.
    pub throttled: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            scale: 1.0 / 128.0,
            days: 7,
            throttled: true,
        }
    }
}

impl BenchConfig {
    /// Rough raw bytes of one average snapshot (for cache sizing).
    pub fn approx_snapshot_bytes(&self) -> usize {
        let c = self.trace_config();
        // CDR lines ≈ 330 B, NMS lines ≈ 40 B.
        (c.cdr_base_per_epoch * 330.0 + f64::from(c.n_cells) * c.nms_reports_per_cell * 40.0)
            as usize
    }

    pub fn trace_config(&self) -> TraceConfig {
        let mut c = TraceConfig::scaled(self.scale);
        c.days = self.days;
        c
    }

    pub(crate) fn dfs(&self) -> Dfs {
        let mut config = DfsConfig::default();
        if self.throttled {
            config = config.with_io(IoModel::cluster_disks());
            // Page cache sized between the compressed and raw working set
            // of a one-day window: the compressed day fits, the raw one
            // does not — the regime the paper's testbed ran in (15 MB raw
            // snapshots vs. gigabytes of RAM across 4 VMs).
            let day_raw = self.approx_snapshot_bytes() * 48;
            config = config.with_cache(day_raw / 4);
        }
        Dfs::new(config)
    }

    /// The generator for this configuration.
    pub fn generator(&self) -> TraceGenerator {
        TraceGenerator::new(self.trace_config())
    }
}

/// The three systems under evaluation, each on its own cluster.
pub struct Frameworks {
    pub raw: RawFramework,
    pub shahed: ShahedFramework,
    pub spate: SpateFramework,
}

impl Frameworks {
    pub fn iter_mut(&mut self) -> [&mut dyn ExplorationFramework; 3] {
        [&mut self.raw, &mut self.shahed, &mut self.spate]
    }

    pub fn iter(&self) -> [&dyn ExplorationFramework; 3] {
        [&self.raw, &self.shahed, &self.spate]
    }
}

/// Build the three frameworks over a fresh trace; returns the frameworks
/// and the generator positioned at epoch 0.
pub fn build_frameworks(config: &BenchConfig) -> (Frameworks, TraceGenerator) {
    let generator = config.generator();
    let layout = generator.layout().clone();
    let fws = Frameworks {
        raw: RawFramework::new(config.dfs(), layout.clone()),
        shahed: ShahedFramework::new(config.dfs(), layout.clone()),
        spate: SpateFramework::new(config.dfs(), layout),
    };
    (fws, generator)
}

/// Generate and ingest `epochs` snapshots into all three frameworks,
/// discarding per-snapshot stats (setup helper for response benches).
pub fn ingest_all(fws: &mut Frameworks, generator: &mut TraceGenerator, epochs: usize) {
    for _ in 0..epochs {
        let Some(snapshot) = generator.next_snapshot() else {
            break;
        };
        fws.raw.ingest(&snapshot);
        fws.shahed.ingest(&snapshot);
        fws.spate.ingest(&snapshot);
    }
    fws.shahed.finalize();
}

/// Generate `n` snapshots without any framework (codec microbenches).
pub fn generate_snapshots(config: &BenchConfig, n: usize) -> Vec<Snapshot> {
    config.generator().take(n).collect()
}
