//! Adversarial serving-tier chaos drill (`repro chaos-serve`).
//!
//! Three seeded phases, each designed so its outcome is a pure function
//! of `(seed, clients, scale)`:
//!
//! 1. **Survivability storm** — seeded clients hammer one in-memory
//!    server with a shuffled mix of healthy explorations, poison queries
//!    (worker panics), deadline storms (1 ms deadlines behind a 5 ms
//!    chaos stall) and cancel races; meanwhile the main thread injects a
//!    malformed frame, a mid-stream disconnect and a slow client. The
//!    server runs one worker, so every job serializes: once the final
//!    health probe answers, every earlier request — including the one
//!    whose client vanished — has fully settled, and panic/cancel/
//!    deadline counters are exact.
//! 2. **Degraded dfs-backed serving** — the same serving tier mounted
//!    over a DFS with a seeded [`FaultConfig::chaos`] plan and circuit
//!    breakers enabled. One client, one worker, no prefetch: the dfs op
//!    sequence (and therefore the op-indexed fault schedule, failovers
//!    and breaker transitions) is deterministic, so the exact/partial/
//!    unavailable split diffs byte-for-byte across runs.
//! 3. **Breaker state-machine drill** — a direct, placement-pinned
//!    walk of the per-datanode breaker: trip on consecutive verified
//!    read failures, cool down on the op clock, probe half-open,
//!    recover closed after repair, and degrade to `BlockUnavailable`
//!    (never a hang) when every replica sits behind an open breaker.
//!
//! Deterministic fields print as `chaos-serve:` lines (CI runs the
//! drill twice and diffs them); wall time and timing-stream anomaly
//! advisories print as `chaos-serve-perf:` lines and are never diffed.

use crate::BenchConfig;
use dfs::{BreakerConfig, BreakerState, Dfs, DfsConfig, DfsError, FaultConfig, IoModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spate_core::framework::{ExplorationFramework, SpateFramework};
use spate_serve::proto::{errcode, MAGIC, VERSION};
use spate_serve::{
    Reply, RequestBody, ServeConfig, Server, CHAOS_PANIC_ATTRIBUTE, CHAOS_STALL_ATTRIBUTE,
};
use std::sync::Arc;
use std::time::{Duration, Instant};
use telco_trace::cells::BoundingBox;
use telco_trace::time::EPOCHS_PER_DAY;
use telco_trace::{Snapshot, TraceConfig, TraceGenerator};

/// Epochs ingested for the storm phase (all retained, no decay).
const STORM_EPOCHS: usize = 12;
/// Calm monitor ticks before the storm, arming θ-rarity detection.
const CALM_TICKS: usize = 6;
/// Per-client storm workload mix.
const HEALTHY_PER_CLIENT: usize = 8;
const POISON_PER_CLIENT: usize = 2;
const STORMS_PER_CLIENT: usize = 2;
const CANCELS_PER_CLIENT: usize = 2;

/// Outcome of the chaos-serve drill. Everything above `wall_secs` is a
/// pure function of `(seed, clients, scale)` — [`deterministic_lines`]
/// renders those fields and CI diffs two same-seed runs byte-for-byte.
///
/// [`deterministic_lines`]: ChaosServeReport::deterministic_lines
#[derive(Debug, Clone)]
pub struct ChaosServeReport {
    pub seed: u64,
    pub clients: usize,
    /// Storm requests a client waited on (poison/deadline/cancel/healthy).
    pub requests_awaited: u64,
    /// Storm requests that received a terminal frame (rows, summary,
    /// shed, or error — anything that lets the client move on).
    pub terminal_frames: u64,
    pub healthy_queries: u64,
    pub healthy_rows: u64,
    pub poison_queries: u64,
    /// Poison queries answered with an `INTERNAL` error terminal frame.
    pub poison_isolated: u64,
    pub deadline_storms: u64,
    /// Deadline storms that honestly degraded: `Partial` coverage with
    /// zero epochs served (the 5 ms stall guarantees the 1 ms deadline
    /// is spent before the first checkpoint).
    pub deadline_partials: u64,
    pub cancels_sent: u64,
    /// Cancelled requests that terminated with `Partial` zero-served
    /// coverage instead of hanging or erroring.
    pub cancel_partials: u64,
    pub malformed_frames: u64,
    /// Malformed frames answered with `BAD_REQUEST` *and* followed by a
    /// connection drop (the byte stream is unrecoverable past garbage).
    pub malformed_rejected: u64,
    pub disconnects: u64,
    pub slow_rows: u64,
    /// Load sheds observed by storm clients — expected 0 (the drill's
    /// queue is deeper than its maximum outstanding load).
    pub sheds_seen: u64,
    /// Server-side stats after shutdown — all workload-deterministic.
    pub server_queries: u64,
    pub worker_panics: u64,
    pub worker_respawns: u64,
    pub cancelled_counted: u64,
    pub deadline_expired_counted: u64,
    pub protocol_errors: u64,
    /// A fresh connection answered a healthy query after the storm.
    pub survived_storm: bool,
    pub meta_ticks: u64,
    /// Deterministic-stream meta anomalies (the `serve.survive` stream
    /// flagging the panic burst) — ≥ 1 in any storm run.
    pub survive_anomalies: u64,
    // ---- phase 2: dfs-backed serving under storage chaos ----
    pub dfs_epochs_ingested: usize,
    pub dfs_ingest_retries: u64,
    pub dfs_ingest_failures: u64,
    pub dfs_queries: u64,
    pub dfs_exact: u64,
    pub dfs_partial: u64,
    pub dfs_unavailable: u64,
    /// Degraded answers whose coverage arithmetic did not add up — must
    /// be 0 (degradation is honest or it is a bug).
    pub dfs_inconsistent_coverage: u64,
    pub dfs_checksum_mismatches: u64,
    pub dfs_read_failovers: u64,
    pub dfs_breaker_trips: u64,
    pub dfs_breaker_recoveries: u64,
    pub dfs_breaker_skipped: u64,
    // ---- phase 3: breaker state-machine drill ----
    pub drill_trips: u64,
    pub drill_probes: u64,
    pub drill_recoveries: u64,
    pub drill_reopens: u64,
    pub drill_skipped: u64,
    pub drill_recovered_closed: bool,
    pub drill_degraded_unavailable: bool,
    // ---- timing-dependent below (never diffed) ----
    /// All meta anomalies including timing-stream advisories (shed
    /// pressure, latency inflation, cancel/deadline races).
    pub anomalies_total: u64,
    pub wall_secs: f64,
}

impl ChaosServeReport {
    /// Every storm request got a terminal frame — the no-hung-client gate.
    pub fn all_terminal(&self) -> bool {
        self.requests_awaited > 0 && self.terminal_frames == self.requests_awaited
    }

    /// The diffable report: one string per `chaos-serve:` output line,
    /// covering every deterministic field and nothing time-derived. The
    /// determinism test and the `repro` binary both render from here, so
    /// the CI diff and the in-process assertion can never drift apart.
    pub fn deterministic_lines(&self) -> Vec<String> {
        vec![
            format!(
                "seed={} clients={} requests_awaited={} terminal_frames={} all_terminal={}",
                self.seed,
                self.clients,
                self.requests_awaited,
                self.terminal_frames,
                self.all_terminal()
            ),
            format!(
                "storm healthy={} healthy_rows={} slow_rows={} disconnects={} sheds={}",
                self.healthy_queries,
                self.healthy_rows,
                self.slow_rows,
                self.disconnects,
                self.sheds_seen
            ),
            format!(
                "storm poison sent={} isolated={} worker_panics={} worker_respawns={}",
                self.poison_queries, self.poison_isolated, self.worker_panics, self.worker_respawns
            ),
            format!(
                "storm deadline storms={} partials={} expired_counted={}",
                self.deadline_storms, self.deadline_partials, self.deadline_expired_counted
            ),
            format!(
                "storm cancel sent={} partials={} cancelled_counted={}",
                self.cancels_sent, self.cancel_partials, self.cancelled_counted
            ),
            format!(
                "storm malformed sent={} rejected={} protocol_errors={}",
                self.malformed_frames, self.malformed_rejected, self.protocol_errors
            ),
            format!(
                "storm survived={} server_queries={} meta_ticks={} survive_anomalies={}",
                self.survived_storm, self.server_queries, self.meta_ticks, self.survive_anomalies
            ),
            format!(
                "dfs epochs={} ingest_retries={} ingest_failures={} queries={} exact={} partial={} unavailable={} inconsistent_coverage={}",
                self.dfs_epochs_ingested,
                self.dfs_ingest_retries,
                self.dfs_ingest_failures,
                self.dfs_queries,
                self.dfs_exact,
                self.dfs_partial,
                self.dfs_unavailable,
                self.dfs_inconsistent_coverage
            ),
            format!(
                "dfs faults checksum_mismatches={} read_failovers={} breaker_trips={} breaker_recoveries={} breaker_skipped={}",
                self.dfs_checksum_mismatches,
                self.dfs_read_failovers,
                self.dfs_breaker_trips,
                self.dfs_breaker_recoveries,
                self.dfs_breaker_skipped
            ),
            format!(
                "drill trips={} probes={} recoveries={} reopens={} skipped={} recovered_closed={} degraded_unavailable={}",
                self.drill_trips,
                self.drill_probes,
                self.drill_recoveries,
                self.drill_reopens,
                self.drill_skipped,
                self.drill_recovered_closed,
                self.drill_degraded_unavailable
            ),
        ]
    }
}

/// Swallow the intentional poison-query panics (they would spam stderr
/// once per injection); every other panic still reaches the previous
/// hook. Installed once per process — the filter is transparent for
/// everything but the drill's own marker message.
fn install_quiet_poison_hook() {
    use std::sync::Once;
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let poison = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains("poison query"));
            if !poison {
                previous(info);
            }
        }));
    });
}

#[derive(Default)]
struct StormOutcome {
    awaited: u64,
    terminal: u64,
    healthy: u64,
    rows: u64,
    poison_ok: u64,
    storm_ok: u64,
    cancel_ok: u64,
    sheds: u64,
}

impl StormOutcome {
    fn merge(&mut self, other: StormOutcome) {
        self.awaited += other.awaited;
        self.terminal += other.terminal;
        self.healthy += other.healthy;
        self.rows += other.rows;
        self.poison_ok += other.poison_ok;
        self.storm_ok += other.storm_ok;
        self.cancel_ok += other.cancel_ok;
        self.sheds += other.sheds;
    }
}

#[derive(Clone, Copy)]
enum Op {
    Healthy,
    Poison,
    DeadlineStorm,
    CancelRace,
}

/// One storm client: a seeded, shuffled mix of healthy and adversarial
/// requests over a single connection. Every op waits for its terminal
/// frame, so the per-op outcome classification is exact.
fn storm_client(server: &Server, seed: u64, id: u64) -> StormOutcome {
    let mut conn = server.connect();
    let mut rng = StdRng::seed_from_u64(seed ^ id.wrapping_mul(0x9E37_79B9));
    let mut out = StormOutcome::default();

    let mut ops = Vec::new();
    ops.extend(std::iter::repeat_n(Op::Healthy, HEALTHY_PER_CLIENT));
    ops.extend(std::iter::repeat_n(Op::Poison, POISON_PER_CLIENT));
    ops.extend(std::iter::repeat_n(Op::DeadlineStorm, STORMS_PER_CLIENT));
    ops.extend(std::iter::repeat_n(Op::CancelRace, CANCELS_PER_CLIENT));
    // Fisher–Yates off the client's seeded rng (the rand shim carries no
    // shuffle helper): adversarial ops interleave with healthy ones in a
    // per-client deterministic order.
    for i in (1..ops.len()).rev() {
        ops.swap(i, rng.gen_range(0..=i));
    }

    for op in ops {
        out.awaited += 1;
        let reply = match op {
            Op::Healthy => {
                let start = rng.gen_range(0..STORM_EPOCHS as u32 - 4);
                let len = rng.gen_range(1..=4);
                conn.explore(
                    &["upflux", "downflux"],
                    BoundingBox::everything(),
                    (start, start + len - 1),
                )
            }
            Op::Poison => conn.explore(&[CHAOS_PANIC_ATTRIBUTE], BoundingBox::everything(), (0, 1)),
            Op::DeadlineStorm => conn.explore_with_deadline(
                &["upflux", CHAOS_STALL_ATTRIBUTE],
                BoundingBox::everything(),
                (0, 5),
                1,
            ),
            Op::CancelRace => conn
                .send(RequestBody::Explore {
                    attributes: vec!["upflux".into(), CHAOS_STALL_ATTRIBUTE.into()],
                    bbox: (f64::MIN, f64::MIN, f64::MAX, f64::MAX),
                    window: (0, 5),
                    deadline_ms: 0,
                })
                .and_then(|id| {
                    conn.cancel(id)?;
                    conn.await_reply(id)
                }),
        };
        let Ok(reply) = reply else {
            continue; // no terminal frame — the all_terminal gate fails
        };
        out.terminal += 1;
        match (op, &reply) {
            (_, Reply::Shed { .. }) => out.sheds += 1,
            (
                Op::Healthy,
                Reply::Rows {
                    coverage: None,
                    total_rows,
                    ..
                },
            ) => {
                out.healthy += 1;
                out.rows += total_rows;
            }
            (Op::Poison, Reply::ServerError { code, .. }) if *code == errcode::INTERNAL => {
                out.poison_ok += 1;
            }
            (
                Op::DeadlineStorm,
                Reply::Rows {
                    coverage: Some(c), ..
                },
            ) if c.served == 0 && c.unavailable == c.requested => out.storm_ok += 1,
            (
                Op::CancelRace,
                Reply::Rows {
                    coverage: Some(c), ..
                },
            ) if c.served == 0 => out.cancel_ok += 1,
            _ => {} // terminal but unexpected: the diffable counts expose it
        }
    }
    conn.close();
    out
}

/// Deterministic walk of the breaker state machine over pinned replica
/// placement (3 replicas on exactly 3 nodes: block `b`'s first replica
/// sits on node `b % 3`), mirroring the end-to-end breaker suite so the
/// drill proves trip → cool-down → half-open probe → recovery on every
/// seed, independent of the chaos plan.
struct BreakerDrill {
    trips: u64,
    probes: u64,
    recoveries: u64,
    reopens: u64,
    skipped: u64,
    recovered_closed: bool,
    degraded_unavailable: bool,
}

fn breaker_drill() -> BreakerDrill {
    let base = DfsConfig {
        replication: 3,
        n_datanodes: 3,
        ..DfsConfig::default()
    }
    .with_block_size(64);
    let fs = Dfs::new(base.with_breaker(BreakerConfig::new(2, 3)));
    for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
        fs.write(name, &[i as u8; 48]).expect("drill write");
    }
    // Blocks 1 ("a") and 4 ("d") both place their first replica on node
    // 1: two consecutive verified-read failures there trip its breaker.
    fs.corrupt_replica_for_test("a", 1);
    fs.corrupt_replica_for_test("d", 1);
    let _ = fs.read("a");
    let _ = fs.read("d");
    let tripped = fs.breaker_state(1) == BreakerState::Open;

    // Repair replaces the corrupt copies, then the op-clock cooldown
    // burns down on reads that never consult node 1 first.
    fs.repair();
    fs.drop_caches();
    for _ in 0..3 {
        let _ = fs.read("b");
        fs.drop_caches();
    }
    // Force the half-open probe onto node 1 (repair re-appended its
    // fresh copy at the end of the replica list): with the other nodes
    // down, the probe read verifies and the breaker closes.
    fs.kill_datanode(0);
    fs.kill_datanode(2);
    let _ = fs.read("a");
    let recovered_closed = tripped && fs.breaker_state(1) == BreakerState::Closed;
    fs.revive_datanode(0);
    fs.revive_datanode(2);
    let s = fs.breaker_stats();

    // Every-replica-open degradation: a single-replica block behind the
    // one tripped node reports BlockUnavailable instead of spinning.
    let lone = Dfs::new(
        DfsConfig {
            replication: 1,
            n_datanodes: 1,
            ..base
        }
        .with_breaker(BreakerConfig::new(1, 1_000)),
    );
    lone.write("a", &[0u8; 48]).expect("drill write");
    lone.write("b", &[1u8; 48]).expect("drill write");
    lone.corrupt_replica_for_test("a", 0);
    let _ = lone.read("a"); // trips (K = 1)
    let degraded_unavailable = matches!(lone.read("b"), Err(DfsError::BlockUnavailable { .. }));

    BreakerDrill {
        trips: s.trips,
        probes: s.probes,
        recoveries: s.recoveries,
        reopens: s.reopens,
        skipped: s.skipped + lone.breaker_stats().skipped,
        recovered_closed,
        degraded_unavailable,
    }
}

/// Run the full three-phase drill and collect the report.
pub fn chaos_serve_experiment(config: &BenchConfig, clients: usize, seed: u64) -> ChaosServeReport {
    obs::reset();
    install_quiet_poison_hook();
    let started = Instant::now();

    // ---------------- phase 1: survivability storm ----------------
    let mut trace_config = TraceConfig::scaled(config.scale);
    trace_config.days = 1;
    let mut generator = TraceGenerator::new(trace_config);
    let layout = generator.layout().clone();
    let snaps: Vec<Snapshot> = (&mut generator).take(STORM_EPOCHS).collect();
    let mut fw = SpateFramework::in_memory(layout);
    for s in &snaps {
        fw.ingest(s);
    }

    // One worker serializes every job, which is what makes the counters
    // exact: the post-storm health probe cannot answer before every
    // earlier request (including the vanished client's) settled. The
    // queue deadline is lifted far above any plausible backlog so the
    // only sheds a run can see are real bugs.
    let server = Arc::new(Server::start(
        fw,
        ServeConfig {
            workers: 1,
            prefetch: false,
            queue_deadline: Duration::from_secs(60),
            chaos_poison: true,
            ..ServeConfig::default()
        },
    ));
    for _ in 0..CALM_TICKS {
        server.monitor_tick();
    }

    let mut handles = Vec::new();
    for c in 0..clients {
        let server = server.clone();
        handles.push(std::thread::spawn(move || {
            storm_client(&server, seed, c as u64)
        }));
    }

    // Malformed frame: valid header magic/version, unknown kind byte.
    // The server answers BAD_REQUEST (request id 0 — there is no frame
    // to attribute it to) and drops the connection: past garbage the
    // next frame boundary is unknowable.
    let mut malformed = server.connect();
    let mut bad = Vec::new();
    bad.extend_from_slice(&MAGIC);
    bad.push(VERSION);
    bad.push(0xEE);
    bad.extend_from_slice(&0u32.to_le_bytes());
    let malformed_frames = u64::from(malformed.send_raw(&bad).is_ok());
    let rejected = matches!(
        malformed.await_reply(0),
        Ok(Reply::ServerError { code, .. }) if code == errcode::BAD_REQUEST
    );
    let malformed_rejected = u64::from(rejected && malformed.stats().is_err());

    // Mid-stream disconnect: admit a stalled request, vanish before the
    // answer. The worker streams into the closed pipe and must shrug.
    let vanisher = server.connect();
    let mut vanisher = vanisher;
    let disconnects = u64::from(
        vanisher
            .send(RequestBody::Explore {
                attributes: vec!["upflux".into(), CHAOS_STALL_ATTRIBUTE.into()],
                bbox: (f64::MIN, f64::MIN, f64::MAX, f64::MAX),
                window: (0, 5),
                deadline_ms: 0,
            })
            .is_ok(),
    );
    vanisher.close();

    // Slow client: admit, nap past the stall, then drain. Exercises the
    // reply sitting in transport backpressure until the reader wakes.
    let mut slow = server.connect();
    let slow_rows = match slow.send(RequestBody::Explore {
        attributes: vec!["upflux".into(), "downflux".into()],
        bbox: (f64::MIN, f64::MIN, f64::MAX, f64::MAX),
        window: (0, 1),
        deadline_ms: 0,
    }) {
        Ok(id) => {
            std::thread::sleep(Duration::from_millis(10));
            match slow.await_reply(id) {
                Ok(Reply::Rows { total_rows, .. }) => total_rows,
                _ => 0,
            }
        }
        Err(_) => 0,
    };
    slow.close();

    let mut storm = StormOutcome::default();
    for h in handles {
        storm.merge(h.join().expect("storm client panicked"));
    }

    // Health probe on a fresh connection: with a single worker this
    // reply doubles as a settle fence for the whole storm.
    let mut probe = server.connect();
    let survived_storm = matches!(
        probe.explore(&["upflux"], BoundingBox::everything(), (0, 2)),
        Ok(Reply::Rows { .. })
    );
    probe.close();

    // Storm tick (the survive stream flags the panic burst against its
    // calm history), then one more calm tick to show it re-arms.
    server.monitor_tick();
    server.monitor_tick();
    let meta = server.meta_summary();

    let server = Arc::into_inner(server).expect("storm clients still hold server handles");
    let stats = server.shutdown();

    // ------------- phase 2: dfs-backed serving under chaos -------------
    let mut trace_config = TraceConfig::scaled(config.scale);
    trace_config.days = 1;
    let mut generator = TraceGenerator::new(trace_config);
    let layout = generator.layout().clone();
    // Small blocks so leaf files span several blocks; replication 2 over
    // 4 nodes keeps blocks findable with one node down but lets the
    // chaos plan create real unavailability. Breakers on top.
    let dfs_config = DfsConfig {
        block_size: 4 * 1024,
        replication: 2,
        n_datanodes: 4,
        io: IoModel::unthrottled(),
        cache_bytes: 0,
        ..DfsConfig::default()
    }
    .with_breaker(BreakerConfig::new(3, 64));
    let fs = Dfs::with_faults(dfs_config, FaultConfig::chaos(seed));
    let mut fw = SpateFramework::new(fs.clone(), layout);

    let day = EPOCHS_PER_DAY as usize;
    let mut dfs_epochs_ingested = 0usize;
    let mut dfs_ingest_retries = 0u64;
    let mut dfs_ingest_failures = 0u64;
    for snapshot in (&mut generator).take(day) {
        let mut attempts = 0u32;
        loop {
            match fw.try_ingest(&snapshot) {
                Ok(_) => {
                    dfs_epochs_ingested += 1;
                    break;
                }
                Err(_) if attempts < 50 => {
                    attempts += 1;
                    dfs_ingest_retries += 1;
                }
                Err(_) => {
                    dfs_ingest_failures += 1;
                    break;
                }
            }
        }
    }
    // Heal the ingest-time damage so serving-time degradation is the
    // chaos plan's live work, not leftovers.
    for node in 0..4 {
        fs.revive_datanode(node);
    }
    fs.repair();
    fs.repair();

    let dfs_server = Server::start(
        fw,
        ServeConfig {
            workers: 1,
            prefetch: false,
            queue_deadline: Duration::from_secs(60),
            ..ServeConfig::default()
        },
    );
    let mut conn = dfs_server.connect();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(0xD1F5));
    let mut windows: Vec<(u32, u32)> = (0..12)
        .map(|_| {
            let start = rng.gen_range(0..day as u32 - 8);
            let len = rng.gen_range(1..=6);
            (start, start + len - 1)
        })
        .collect();
    windows.extend((0..4).map(|_| {
        let start = rng.gen_range(0..day as u32 - 30);
        let len = rng.gen_range(16..=24);
        (start, start + len - 1)
    }));

    let mut dfs_queries = 0u64;
    let mut dfs_exact = 0u64;
    let mut dfs_partial = 0u64;
    let mut dfs_unavailable = 0u64;
    let mut dfs_inconsistent_coverage = 0u64;
    for &(a, b) in &windows {
        dfs_queries += 1;
        match conn.explore(&["upflux", "downflux"], BoundingBox::everything(), (a, b)) {
            Ok(Reply::Rows { coverage: None, .. }) => dfs_exact += 1,
            Ok(Reply::Rows {
                coverage: Some(c), ..
            }) => {
                dfs_partial += 1;
                if c.requested != b - a + 1 || c.served + c.decayed + c.unavailable != c.requested {
                    dfs_inconsistent_coverage += 1;
                }
            }
            Ok(Reply::Unavailable) => dfs_unavailable += 1,
            Ok(_) | Err(_) => dfs_inconsistent_coverage += 1,
        }
    }
    conn.close();
    dfs_server.shutdown();
    let faults = fs.fault_stats();
    let dfs_breaker = fs.breaker_stats();

    // ------------- phase 3: breaker state-machine drill -------------
    let drill = breaker_drill();

    ChaosServeReport {
        seed,
        clients,
        requests_awaited: storm.awaited,
        terminal_frames: storm.terminal,
        healthy_queries: storm.healthy,
        healthy_rows: storm.rows,
        poison_queries: (clients * POISON_PER_CLIENT) as u64,
        poison_isolated: storm.poison_ok,
        deadline_storms: (clients * STORMS_PER_CLIENT) as u64,
        deadline_partials: storm.storm_ok,
        cancels_sent: (clients * CANCELS_PER_CLIENT) as u64,
        cancel_partials: storm.cancel_ok,
        malformed_frames,
        malformed_rejected,
        disconnects,
        slow_rows,
        sheds_seen: storm.sheds,
        server_queries: stats.queries,
        worker_panics: stats.panics,
        worker_respawns: stats.worker_respawns,
        cancelled_counted: stats.cancelled,
        deadline_expired_counted: stats.deadline_expired,
        protocol_errors: stats.protocol_errors,
        survived_storm,
        meta_ticks: meta.ticks,
        survive_anomalies: meta.anomalies_deterministic,
        dfs_epochs_ingested,
        dfs_ingest_retries,
        dfs_ingest_failures,
        dfs_queries,
        dfs_exact,
        dfs_partial,
        dfs_unavailable,
        dfs_inconsistent_coverage,
        dfs_checksum_mismatches: faults.checksum_mismatches,
        dfs_read_failovers: faults.read_failovers,
        dfs_breaker_trips: dfs_breaker.trips,
        dfs_breaker_recoveries: dfs_breaker.recoveries,
        dfs_breaker_skipped: dfs_breaker.skipped,
        drill_trips: drill.trips,
        drill_probes: drill.probes,
        drill_recoveries: drill.recoveries,
        drill_reopens: drill.reopens,
        drill_skipped: drill.skipped,
        drill_recovered_closed: drill.recovered_closed,
        drill_degraded_unavailable: drill.degraded_unavailable,
        anomalies_total: meta.anomalies_total,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}
