//! Deterministic trace-tree reconstruction from a seeded run — the
//! bench-level half of the flight-recorder coverage. Lives in its own
//! integration binary (own process) because `trace_experiment` calls
//! `obs::reset()`, which would race tests sharing the global registry.

use spate_bench::serve_bench::{trace_experiment, trace_lines};
use spate_bench::BenchConfig;

fn tiny() -> BenchConfig {
    BenchConfig {
        scale: 1.0 / 2048.0,
        throttled: false,
        ..BenchConfig::default()
    }
}

/// Same seed → byte-identical diffable lines, across repeated runs in
/// one process (the flight recorder and conn-id counters are global and
/// keep advancing; the normalized rendering must not care).
#[test]
fn seeded_trace_reconstruction_is_deterministic() {
    let a = trace_experiment(&tiny(), 9);
    let b = trace_experiment(&tiny(), 9);
    assert_eq!(a.window, b.window);
    assert_eq!(trace_lines(&a.cold), trace_lines(&b.cold));
    assert_eq!(trace_lines(&a.warm), trace_lines(&b.warm));

    // The cold tree answers "why was this slow": one cache.miss per
    // window epoch, each followed by the storage work it caused.
    // " cache.miss " with delimiters: the epoch-cache event, not the
    // separate dfs.cache.miss page-cache instants.
    let lines = trace_lines(&a.cold);
    let misses = lines.iter().filter(|l| l.contains(" cache.miss ")).count();
    assert_eq!(misses, 4, "{lines:#?}");
    assert!(lines.iter().any(|l| l.contains("admission.wait")));
    assert!(lines.iter().any(|l| l.contains("serve.request")));
    assert!(lines.iter().any(|l| l.contains("dfs.read")));
    // Warm re-read of the same window: hits only.
    let warm = trace_lines(&a.warm);
    assert_eq!(warm.iter().filter(|l| l.contains(" cache.hit ")).count(), 4);
    assert!(!warm.iter().any(|l| l.contains(" cache.miss ")));

    // The Chrome trace_event dump is structurally valid.
    assert!(a.chrome_json.starts_with("{\"traceEvents\": ["));
    assert_eq!(
        a.chrome_json.matches('{').count(),
        a.chrome_json.matches('}').count()
    );
    assert!(a.chrome_json.contains("\"ph\": \"X\""));
    assert!(a.chrome_json.contains("\"ph\": \"i\""));
}
