//! The chaos-serve drill's contract: every deterministic line is a pure
//! function of `(seed, clients, scale)`, every adversarial request gets
//! a terminal frame, every injected fault is visibly isolated, and the
//! breaker drill completes its full state-machine walk.
//!
//! Own integration binary: the drill calls `obs::reset()` on the global
//! registry, which would race other tests sharing the process.

use spate_bench::{chaos_serve_experiment, BenchConfig};

fn tiny() -> BenchConfig {
    BenchConfig {
        scale: 1.0 / 2048.0,
        throttled: false,
        ..BenchConfig::default()
    }
}

#[test]
fn chaos_serve_is_deterministic_and_every_fault_is_isolated() {
    let config = tiny();
    let a = chaos_serve_experiment(&config, 3, 11);
    let b = chaos_serve_experiment(&config, 3, 11);

    // Same seed → byte-identical deterministic report (the same lines CI
    // diffs across two `repro chaos-serve` runs).
    assert_eq!(
        a.deterministic_lines(),
        b.deterministic_lines(),
        "same-seed drill runs diverged"
    );

    // Survivability: nobody hung, nobody died, the server answered after.
    assert!(
        a.all_terminal(),
        "a storm request never got a terminal frame"
    );
    assert!(a.survived_storm, "post-storm health probe failed");
    assert_eq!(a.sheds_seen, 0, "drill queue depth should never shed");

    // Poison queries: all isolated into INTERNAL error frames, each one
    // a counted worker panic, none killing the pool.
    assert!(a.poison_queries > 0);
    assert_eq!(a.poison_isolated, a.poison_queries);
    assert_eq!(a.worker_panics, a.poison_queries);

    // Deadline storms and cancel races: every one degraded to honest
    // zero-served Partial coverage.
    assert!(a.deadline_storms > 0);
    assert_eq!(a.deadline_partials, a.deadline_storms);
    assert!(a.cancels_sent > 0);
    assert_eq!(a.cancel_partials, a.cancels_sent);

    // Malformed frame: rejected with BAD_REQUEST and the connection cut.
    assert_eq!(a.malformed_frames, 1);
    assert_eq!(a.malformed_rejected, 1);
    assert_eq!(a.protocol_errors, 1);
    assert_eq!(a.disconnects, 1);

    // Meta-highlights: the survive stream (deterministic kind) flagged
    // the panic burst against its calm arming history.
    assert!(a.survive_anomalies >= 1, "{}", a.survive_anomalies);

    // Dfs-backed phase: chaos never lost an ingest, and every degraded
    // answer kept its coverage arithmetic consistent.
    assert_eq!(a.dfs_ingest_failures, 0);
    assert!(a.dfs_queries > 0);
    assert_eq!(a.dfs_inconsistent_coverage, 0);

    // Breaker drill: trip → cool down → half-open probe → recovery, and
    // an all-replicas-open read degraded to BlockUnavailable.
    assert!(a.drill_trips >= 1);
    assert!(a.drill_recovered_closed);
    assert!(a.drill_degraded_unavailable);
}
