//! Table I bench: compression / decompression of one 30-minute snapshot
//! per codec family (GZIP-, 7z-, Snappy-, Zstd-class).

use codecs::table1_codecs;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spate_bench::{setup::generate_snapshots, BenchConfig};

fn config() -> BenchConfig {
    BenchConfig {
        scale: 1.0 / 128.0,
        days: 1,
        throttled: false,
    }
}

fn bench_compress(c: &mut Criterion) {
    // A representative mid-day snapshot.
    let snaps = generate_snapshots(&config(), 25);
    let raw = snaps.last().unwrap().to_bytes();

    let mut group = c.benchmark_group("table1/compress");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(raw.len() as u64));
    for codec in table1_codecs() {
        group.bench_with_input(BenchmarkId::from_parameter(codec.name()), &raw, |b, raw| {
            b.iter(|| codec.compress(raw))
        });
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let snaps = generate_snapshots(&config(), 25);
    let raw = snaps.last().unwrap().to_bytes();

    let mut group = c.benchmark_group("table1/decompress");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(raw.len() as u64));
    for codec in table1_codecs() {
        let packed = codec.compress(&raw);
        group.bench_with_input(
            BenchmarkId::from_parameter(codec.name()),
            &packed,
            |b, packed| b.iter(|| codec.decompress(packed).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compress, bench_decompress);
criterion_main!(benches);
