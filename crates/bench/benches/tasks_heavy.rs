//! Fig. 12 bench: the heavy engine-parallelized tasks T6–T8. These are
//! CPU-bound — the paper's point is that all three frameworks land close
//! together once decompression is amortized into the first pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spate_bench::setup::ingest_all;
use spate_bench::{build_frameworks, BenchConfig, Frameworks};
use spate_core::framework::ExplorationFramework;
use spate_core::tasks;
use telco_trace::time::EpochId;

fn config() -> BenchConfig {
    BenchConfig {
        scale: 1.0 / 256.0,
        days: 1,
        throttled: true,
    }
}

fn setup() -> Frameworks {
    let cfg = config();
    let (mut fws, mut generator) = build_frameworks(&cfg);
    ingest_all(&mut fws, &mut generator, 40);
    fws
}

fn for_each_framework(
    c: &mut Criterion,
    group_name: &str,
    fws: &Frameworks,
    mut task: impl FnMut(&dyn ExplorationFramework),
) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for (name, fw) in ["RAW", "SHAHED", "SPATE"].iter().zip(fws.iter()) {
        group.bench_with_input(BenchmarkId::from_parameter(name), &fw, |b, fw| {
            b.iter(|| task(*fw))
        });
    }
    group.finish();
}

fn bench_tasks(c: &mut Criterion) {
    let fws = setup();
    let (w0, w1) = (EpochId(8), EpochId(39));

    for_each_framework(c, "fig12/t6_statistics", &fws, |fw| {
        tasks::t6_statistics(fw, w0, w1);
    });
    for_each_framework(c, "fig12/t7_clustering", &fws, |fw| {
        tasks::t7_clustering(fw, w0, w1, 8);
    });
    for_each_framework(c, "fig12/t8_regression", &fws, |fw| {
        tasks::t8_regression(fw, w0, w1);
    });
}

criterion_group!(benches, bench_tasks);
criterion_main!(benches);
