//! Fig. 11 bench: the simple tasks T1–T5 on RAW, SHAHED and SPATE.
//!
//! Uses the throttled cluster-disk + page-cache I/O model, which is where
//! T4's nested loop shows SPATE's compressed re-read advantage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spate_bench::setup::ingest_all;
use spate_bench::{build_frameworks, BenchConfig, Frameworks};
use spate_core::framework::ExplorationFramework;
use spate_core::tasks;
use telco_trace::time::EpochId;

fn config() -> BenchConfig {
    BenchConfig {
        scale: 1.0 / 256.0,
        days: 1,
        throttled: true,
    }
}

fn setup() -> Frameworks {
    let cfg = config();
    let (mut fws, mut generator) = build_frameworks(&cfg);
    ingest_all(&mut fws, &mut generator, 36);
    fws
}

fn for_each_framework(
    c: &mut Criterion,
    group_name: &str,
    fws: &Frameworks,
    mut task: impl FnMut(&dyn ExplorationFramework),
) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for (name, fw) in ["RAW", "SHAHED", "SPATE"].iter().zip(fws.iter()) {
        group.bench_with_input(BenchmarkId::from_parameter(name), &fw, |b, fw| {
            b.iter(|| task(*fw))
        });
    }
    group.finish();
}

fn bench_tasks(c: &mut Criterion) {
    let fws = setup();
    // Windows inside the ingested 36 epochs, in the busy morning.
    let epoch = EpochId(24);
    let (w0, w1) = (EpochId(20), EpochId(31));
    let (j0, j1) = (EpochId(22), EpochId(29));

    for_each_framework(c, "fig11/t1_equality", &fws, |fw| {
        tasks::t1_equality(fw, epoch);
    });
    for_each_framework(c, "fig11/t2_range", &fws, |fw| {
        tasks::t2_range(fw, w0, w1);
    });
    for_each_framework(c, "fig11/t3_aggregate", &fws, |fw| {
        tasks::t3_aggregate(fw, w0, w1);
    });
    for_each_framework(c, "fig11/t4_join", &fws, |fw| {
        tasks::t4_join(fw, j0, j1);
    });
    for_each_framework(c, "fig11/t5_privacy", &fws, |fw| {
        tasks::t5_privacy(fw, w0, w1, 5);
    });
}

criterion_group!(benches, bench_tasks);
criterion_main!(benches);
