//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * codec choice inside SPATE's storage layer (end-to-end ingest),
//! * trained vs untrained zstd-lite dictionaries on small snapshots,
//! * highlight threshold θ (event extraction cost),
//! * decayed vs full-resolution query answering.

use codecs::{Codec, Dictionary, GzipLite, SevenzLite, SnappyLite, ZstdLite};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfs::Dfs;
use spate_bench::BenchConfig;
use spate_core::framework::{ExplorationFramework, SpateFramework};
use spate_core::index::highlights::{HighlightConfig, Highlights, Resolution};
use spate_core::query::Query;
use spate_core::DecayPolicy;
use std::sync::Arc;
use telco_trace::cells::BoundingBox;
use telco_trace::time::EPOCHS_PER_DAY;
use telco_trace::Snapshot;

fn config() -> BenchConfig {
    BenchConfig {
        scale: 1.0 / 256.0,
        days: 2,
        throttled: false,
    }
}

fn snapshots(n: usize) -> (telco_trace::CellLayout, Vec<Snapshot>) {
    let mut generator = config().generator();
    let layout = generator.layout().clone();
    let snaps = (&mut generator).skip(16).take(n).collect();
    (layout, snaps)
}

/// Which codec should SPATE's storage layer use? (The paper picked GZIP
/// for ecosystem compatibility; this measures the end-to-end ingest cost
/// of each choice.)
fn bench_codec_choice(c: &mut Criterion) {
    let (layout, snaps) = snapshots(4);
    let mut group = c.benchmark_group("ablation/spate_codec_ingest");
    group.sample_size(10);
    let codecs: Vec<Arc<dyn Codec>> = vec![
        Arc::new(GzipLite::default()),
        Arc::new(SevenzLite::default()),
        Arc::new(SnappyLite::default()),
        Arc::new(ZstdLite::default()),
    ];
    for codec in codecs {
        group.bench_with_input(
            BenchmarkId::from_parameter(codec.name()),
            &snaps,
            |b, snaps| {
                b.iter_with_setup(
                    || {
                        SpateFramework::with_codec(
                            Dfs::in_memory(),
                            layout.clone(),
                            Arc::clone(&codec),
                        )
                    },
                    |mut fw| {
                        for s in snaps {
                            fw.ingest(s);
                        }
                    },
                )
            },
        );
    }
    group.finish();
}

/// Trained dictionary vs none, on individually-compressed small payloads
/// (the regime where dictionaries pay off).
fn bench_dictionary(c: &mut Criterion) {
    let (_, snaps) = snapshots(8);
    // Train on the first half, compress the second.
    let corpus: Vec<Vec<u8>> = snaps[..4].iter().map(Snapshot::to_bytes).collect();
    let refs: Vec<&[u8]> = corpus.iter().map(Vec::as_slice).collect();
    let dict = Arc::new(Dictionary::train(&refs, 16 << 10));
    let payloads: Vec<Vec<u8>> = snaps[4..].iter().map(Snapshot::to_bytes).collect();

    let plain = ZstdLite::default();
    let trained = ZstdLite::default().with_dictionary(dict);
    let mut group = c.benchmark_group("ablation/zstd_dictionary");
    group.sample_size(10);
    group.bench_function("untrained", |b| {
        b.iter(|| {
            payloads
                .iter()
                .map(|p| plain.compress(p).len())
                .sum::<usize>()
        })
    });
    group.bench_function("trained", |b| {
        b.iter(|| {
            payloads
                .iter()
                .map(|p| trained.compress(p).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

/// Highlight event extraction across θ settings.
fn bench_theta(c: &mut Criterion) {
    let (_, snaps) = snapshots(8);
    let base = HighlightConfig::default();
    let mut h = Highlights::empty(snaps[0].epoch, base.categorical_attrs.len());
    for s in &snaps {
        h.merge(&Highlights::from_snapshot(s, &base));
    }
    let mut group = c.benchmark_group("ablation/theta_events");
    for theta in [0.001, 0.01, 0.05] {
        let cfg = HighlightConfig {
            theta_day: theta,
            ..base.clone()
        };
        group.bench_with_input(BenchmarkId::from_parameter(theta), &cfg, |b, cfg| {
            b.iter(|| h.events(cfg, Resolution::Day))
        });
    }
    group.finish();
}

/// Query latency: exact (full resolution) vs summary (decayed) answering.
fn bench_decay_query(c: &mut Criterion) {
    let mut generator = config().generator();
    let layout = generator.layout().clone();
    let mut full = SpateFramework::in_memory(layout.clone());
    let mut decayed = SpateFramework::in_memory(layout).with_decay(DecayPolicy {
        full_resolution_days: 0,
        day_highlight_days: 1000,
        month_highlight_days: 1000,
        year_highlight_days: 1000,
    });
    for s in (&mut generator).take(2 * EPOCHS_PER_DAY as usize) {
        full.ingest(&s);
        decayed.ingest(&s);
    }
    let q = Query::new(&["upflux", "downflux"], BoundingBox::everything())
        .with_epoch_range(0, EPOCHS_PER_DAY - 1);

    let mut group = c.benchmark_group("ablation/decay_query");
    group.sample_size(10);
    group.bench_function("full_resolution", |b| b.iter(|| full.query(&q)));
    group.bench_function("decayed_summary", |b| b.iter(|| decayed.query(&q)));
    group.finish();
}

/// Plain per-snapshot compression vs anchor+delta storage (the paper's
/// §IX-B future-work extension): ingest cost of each.
fn bench_delta_storage(c: &mut Criterion) {
    use spate_core::{DeltaSnapshotStore, SnapshotStore};
    let (_, snaps) = snapshots(8);
    let mut group = c.benchmark_group("ablation/delta_storage_ingest");
    group.sample_size(10);
    group.bench_function("plain_gzip", |b| {
        b.iter_with_setup(
            || SnapshotStore::new(Dfs::in_memory(), Arc::new(GzipLite::default())),
            |store| {
                for s in &snaps {
                    store.store(s).unwrap();
                }
                store.stored_bytes()
            },
        )
    });
    group.bench_function("anchor_delta", |b| {
        b.iter_with_setup(
            || DeltaSnapshotStore::new(Dfs::in_memory(), Arc::new(GzipLite::default()), 8),
            |store| {
                for s in &snaps {
                    store.store(s).unwrap();
                }
                store.stored_bytes()
            },
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_codec_choice,
    bench_dictionary,
    bench_theta,
    bench_decay_query,
    bench_delta_storage
);
criterion_main!(benches);
