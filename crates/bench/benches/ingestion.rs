//! Figs. 7/9 bench: per-snapshot ingestion cost of RAW, SHAHED and SPATE
//! (compression + incremence, as the paper defines ingestion time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spate_bench::{build_frameworks, BenchConfig};
use spate_core::framework::ExplorationFramework;
use telco_trace::Snapshot;

fn config() -> BenchConfig {
    BenchConfig {
        scale: 1.0 / 128.0,
        days: 1,
        throttled: false, // CPU cost only; the repro binary measures with I/O
    }
}

fn snapshots() -> Vec<Snapshot> {
    // A busy stretch of the day.
    config().generator().skip(20).take(8).collect()
}

fn bench_ingestion(c: &mut Criterion) {
    let snaps = snapshots();
    let mut group = c.benchmark_group("ingestion/per_snapshot");
    group.sample_size(10);

    for name in ["RAW", "SHAHED", "SPATE"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &snaps, |b, snaps| {
            b.iter_with_setup(
                || build_frameworks(&config()).0,
                |mut fws| {
                    let fw: &mut dyn ExplorationFramework = match name {
                        "RAW" => &mut fws.raw,
                        "SHAHED" => &mut fws.shahed,
                        _ => &mut fws.spate,
                    };
                    for s in snaps {
                        fw.ingest(s);
                    }
                },
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingestion);
criterion_main!(benches);
