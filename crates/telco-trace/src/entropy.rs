//! Per-attribute Shannon entropy analysis (paper Fig. 4 and §II-B).
//!
//! "Based on Shannon's source coding theorem, the minimum number of bits
//! needed to express a symbol ... the maximum compression ratio possible is
//! inversely proportional to the entropy H = −Σ pᵢ log₂ pᵢ of the data."

use crate::record::Record;
use std::collections::HashMap;

/// Shannon entropy (bits/symbol) of one column across records.
pub fn column_entropy(records: &[Record], col: usize) -> f64 {
    let mut counts: HashMap<String, u64> = HashMap::new();
    for r in records {
        *counts.entry(r.get(col).as_text()).or_insert(0) += 1;
    }
    entropy_of_counts(counts.values().copied())
}

/// Entropy of every column of a table.
pub fn table_entropy(records: &[Record], width: usize) -> Vec<f64> {
    (0..width).map(|c| column_entropy(records, c)).collect()
}

/// Entropy from raw frequency counts.
pub fn entropy_of_counts(counts: impl IntoIterator<Item = u64>) -> f64 {
    let counts: Vec<u64> = counts.into_iter().filter(|&c| c > 0).collect();
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total_f = total as f64;
    -counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total_f;
            p * p.log2()
        })
        .sum::<f64>()
}

/// Summary of a table's entropy profile (used by the Fig. 4 report).
#[derive(Debug, Clone)]
pub struct EntropyProfile {
    pub per_column: Vec<f64>,
}

impl EntropyProfile {
    pub fn of(records: &[Record], width: usize) -> Self {
        Self {
            per_column: table_entropy(records, width),
        }
    }

    pub fn max(&self) -> f64 {
        self.per_column.iter().copied().fold(0.0, f64::max)
    }

    pub fn mean(&self) -> f64 {
        if self.per_column.is_empty() {
            return 0.0;
        }
        self.per_column.iter().sum::<f64>() / self.per_column.len() as f64
    }

    /// Number of zero-entropy columns (constant or always-blank).
    pub fn zero_columns(&self) -> usize {
        self.per_column.iter().filter(|&&h| h < 1e-9).count()
    }

    /// Number of columns below a threshold (Fig. 4: "most attributes have
    /// an entropy smaller than 1").
    pub fn below(&self, threshold: f64) -> usize {
        self.per_column.iter().filter(|&&h| h < threshold).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceConfig, TraceGenerator};
    use crate::record::Value;
    use crate::schema::cdr;

    #[test]
    fn entropy_of_known_distributions() {
        // Uniform over 4 symbols → 2 bits.
        assert!((entropy_of_counts([10, 10, 10, 10]) - 2.0).abs() < 1e-12);
        // Single symbol → 0 bits.
        assert_eq!(entropy_of_counts([42]), 0.0);
        // Fair coin → 1 bit.
        assert!((entropy_of_counts([7, 7]) - 1.0).abs() < 1e-12);
        // Empty → 0.
        assert_eq!(entropy_of_counts([]), 0.0);
        // 90/10 split → ~0.469 bits.
        let h = entropy_of_counts([90, 10]);
        assert!((h - 0.469).abs() < 0.001, "{h}");
    }

    #[test]
    fn column_entropy_over_records() {
        let records: Vec<Record> = (0..100)
            .map(|i| {
                Record::new(vec![
                    Value::Str("constant".into()),
                    Value::Int(i % 2),
                    Value::Int(i),
                ])
            })
            .collect();
        assert_eq!(column_entropy(&records, 0), 0.0);
        assert!((column_entropy(&records, 1) - 1.0).abs() < 1e-12);
        // 100 distinct values → log2(100) ≈ 6.64.
        assert!((column_entropy(&records, 2) - 100f64.log2()).abs() < 1e-9);
    }

    #[test]
    fn generated_cdr_matches_fig4_shape() {
        let mut g = TraceGenerator::new(TraceConfig::tiny());
        let mut records = Vec::new();
        // A full day of snapshots, so high-cardinality columns (ids, flux
        // volumes) accumulate enough distinct values.
        for _ in 0..48 {
            records.extend(g.next_snapshot().unwrap().cdr);
        }
        let profile = EntropyProfile::of(&records, cdr::WIDTH);

        // Fig. 4 (left): "most attributes have an entropy smaller than 1
        // and some even have an entropy of 0".
        assert!(
            profile.zero_columns() >= 30,
            "expected many zero-entropy columns, got {}",
            profile.zero_columns()
        );
        assert!(
            profile.below(1.0) > cdr::WIDTH / 2,
            "most columns should be below 1 bit, got {}",
            profile.below(1.0)
        );
        // And a few high-entropy id/flux columns reach several bits.
        assert!(profile.max() > 4.0, "max entropy {}", profile.max());
    }

    #[test]
    fn profile_statistics() {
        let p = EntropyProfile {
            per_column: vec![0.0, 0.5, 2.0, 4.0],
        };
        assert_eq!(p.zero_columns(), 1);
        assert_eq!(p.below(1.0), 2);
        assert_eq!(p.max(), 4.0);
        assert!((p.mean() - 1.625).abs() < 1e-12);
    }
}
