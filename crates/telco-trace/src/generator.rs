//! The trace generator: deterministic synthetic CDR/NMS streams with the
//! paper trace's cardinalities, skew and arrival pattern.

use crate::cells::CellLayout;
use crate::load;
use crate::record::{Record, Value};
use crate::schema::{cdr, nms, FillerClass, Schema};
use crate::snapshot::Snapshot;
use crate::time::{EpochId, EPOCHS_PER_DAY};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a synthetic trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Master seed; everything downstream derives from it.
    pub seed: u64,
    /// Trace length in days (the paper's trace spans 1 week).
    pub days: u32,
    pub n_users: u32,
    pub n_cells: u32,
    pub n_antennas: u32,
    /// Mean CDR records per epoch at activity 1.0.
    pub cdr_base_per_epoch: f64,
    /// Mean NMS reports per cell per epoch at activity 1.0.
    pub nms_reports_per_cell: f64,
}

impl TraceConfig {
    /// Paper-scale parameters: 1 week, ~300K users, 3660 cells on 1192
    /// antennas, ~1.7M CDR and ~21M NMS records total (§VII-C).
    pub fn paper() -> Self {
        Self {
            seed: 2016,
            days: 7,
            n_users: 300_000,
            n_cells: 3660,
            n_antennas: 1192,
            // 1.7M / 336 epochs ≈ 5060 CDR per epoch.
            cdr_base_per_epoch: 5060.0,
            // 21M / 336 / 3660 ≈ 17 NMS reports per cell per epoch.
            nms_reports_per_cell: 17.0,
        }
    }

    /// Scale record volume by `f` (0 < f ≤ 1). Cells/antennas shrink with
    /// f^0.75 — slower than volume, so spatial density stays reasonable,
    /// but fast enough that the per-cell NMS report multiplicity (the
    /// redundancy that drives the paper's compression ratios) survives
    /// down-scaling. NMS-per-cell is derived so the paper's ~12:1 NMS:CDR
    /// record ratio is preserved.
    pub fn scaled(f: f64) -> Self {
        assert!(f > 0.0 && f <= 1.0);
        let p = Self::paper();
        let n_cells = ((f64::from(p.n_cells) * f.powf(0.75)) as u32).max(24);
        let n_antennas = (n_cells / 3).max(8);
        let cdr_base = (p.cdr_base_per_epoch * f).max(8.0);
        let nms_total_ratio = 21.0 / 1.7; // paper record ratio
        Self {
            seed: p.seed,
            days: p.days,
            n_users: ((f64::from(p.n_users) * f) as u32).max(64),
            n_cells,
            n_antennas,
            cdr_base_per_epoch: cdr_base,
            nms_reports_per_cell: nms_total_ratio * cdr_base / f64::from(n_cells),
        }
    }

    /// Small deterministic configuration for unit tests and quick demos.
    pub fn tiny() -> Self {
        let mut c = Self::scaled(1.0 / 1024.0);
        c.days = 2;
        c
    }

    pub fn total_epochs(&self) -> u32 {
        self.days * EPOCHS_PER_DAY
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_days(mut self, days: u32) -> Self {
        self.days = days;
        self
    }
}

/// Per-user mobility state.
#[derive(Debug, Clone, Copy)]
struct UserState {
    current_cell: u32,
}

/// Stateful generator: yields snapshots in epoch order (mobility state
/// evolves between epochs, so order matters for determinism).
pub struct TraceGenerator {
    config: TraceConfig,
    layout: CellLayout,
    users: Vec<UserState>,
    cdr_schema: Schema,
    next_epoch: u32,
    next_record_id: u64,
}

impl TraceGenerator {
    pub fn new(config: TraceConfig) -> Self {
        let layout = CellLayout::generate(config.n_cells, config.n_antennas, config.seed);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x05E7_0F00);
        let users = (0..config.n_users)
            .map(|_| UserState {
                current_cell: layout.sample_popular(&mut rng),
            })
            .collect();
        Self {
            config,
            layout,
            users,
            cdr_schema: Schema::cdr(),
            next_epoch: 0,
            next_record_id: 1,
        }
    }

    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    pub fn layout(&self) -> &CellLayout {
        &self.layout
    }

    /// Activity-skewed user sampling (a few heavy users dominate).
    fn sample_user(&self, rng: &mut StdRng) -> u32 {
        let u: f64 = rng.gen();
        ((u * u) * f64::from(self.config.n_users)) as u32 % self.config.n_users
    }

    fn user_msisdn(user_idx: u32) -> String {
        format!("82{:08}", user_idx)
    }

    fn fill_filler(rng: &mut StdRng, class: FillerClass) -> Value {
        match class {
            FillerClass::Blank => Value::Null,
            FillerClass::Zero => Value::Int(0),
            FillerClass::Categorical { cardinality, skew } => {
                if rng.gen_bool(skew) {
                    Value::Str("A0".to_string())
                } else {
                    Value::Str(format!("A{}", rng.gen_range(1..cardinality)))
                }
            }
            FillerClass::Counter { max, zero_bias } => {
                if rng.gen_bool(zero_bias) {
                    Value::Int(0)
                } else {
                    // Geometric-ish decay toward small counts.
                    let u: f64 = rng.gen();
                    Value::Int((u * u * f64::from(max)) as i64)
                }
            }
        }
    }

    fn generate_cdr_record(&mut self, rng: &mut StdRng, epoch: EpochId) -> Record {
        let caller = self.sample_user(rng);
        let callee = self.sample_user(rng);
        // Mobility: ~10% of observed users moved since their last record.
        if rng.gen_bool(0.10) {
            let next = self
                .layout
                .neighbor(self.users[caller as usize].current_cell, rng);
            self.users[caller as usize].current_cell = next;
        }
        let cell_id = self.users[caller as usize].current_cell;
        let cell = self.layout.get(cell_id);

        let call_type = match rng.gen_range(0..100) {
            0..=54 => "VOICE",
            55..=79 => "SMS",
            _ => "DATA",
        };
        let call_result = match rng.gen_range(0..100) {
            0..=91 => "SUCCESS",
            92..=94 => "DROP",
            95..=97 => "BUSY",
            _ => "FAIL",
        };
        // Durations are billed in 5-second increments.
        let duration_s: i64 = match call_type {
            "SMS" => 0,
            "VOICE" => rng.gen_range(1..120) * 5,
            _ => rng.gen_range(1..60) * 30,
        };
        let (upflux, downflux) = if call_type == "DATA" {
            // Byte counters are accounted in KB blocks by the mediation
            // system, like most real billing pipelines.
            let up = rng.gen_range(1..500i64) * 1_000;
            (up, up * rng.gen_range(2..20))
        } else {
            (0, 0)
        };
        let offset_min = rng.gen_range(0..30u64);
        let start = EpochId::from_minutes(epoch.start_minutes() + offset_min);
        debug_assert_eq!(start, epoch);

        let mut values = Vec::with_capacity(cdr::WIDTH);
        values.push(Value::Int(self.next_record_id as i64)); // RECORD_ID
        self.next_record_id += 1;
        values.push(Value::Str(Self::user_msisdn(caller))); // CALLER_ID
        values.push(Value::Str(Self::user_msisdn(callee))); // CALLEE_ID
        values.push(Value::Int(i64::from(cell_id))); // CELL_ID
        let civil = epoch.civil();
        values.push(Value::Str(civil.compact())); // TS_START
        values.push(Value::Str(civil.compact())); // TS_END (same epoch granularity)
        values.push(Value::Int(duration_s)); // DURATION_S
        values.push(Value::Str(call_type.to_string())); // CALL_TYPE
        values.push(Value::Str(call_result.to_string())); // CALL_RESULT
        values.push(Value::Int(upflux)); // UPFLUX
        values.push(Value::Int(downflux)); // DOWNFLUX
        values.push(Value::Str(cell.tech.label().to_string())); // TECH
        values.push(Value::Int(i64::from(rng.gen_bool(0.02)))); // ROAMING
        values.push(Value::Str(format!("PLAN{}", caller % 7))); // PLAN_CODE
        values.push(Value::Int(i64::from(cell.controller_id))); // BSC_ID
        values.push(Value::Int(i64::from(cell.region))); // LAC
        values.push(Value::Int(i64::from(caller % 4))); // BILLING_CLASS
        values.push(Value::Str("280-01".to_string())); // MCC_MNC (constant: one operator)

        for col in &self.cdr_schema.columns[cdr::FILLER_START..] {
            values.push(Self::fill_filler(rng, col.filler.expect("filler column")));
        }
        debug_assert_eq!(values.len(), cdr::WIDTH);
        Record::new(values)
    }

    fn generate_nms_records(&self, rng: &mut StdRng, epoch: EpochId, out: &mut Vec<Record>) {
        let act = load::activity(epoch);
        // Expected reports per cell this epoch; may be fractional at small
        // scales, in which case cells are subsampled.
        let expected = self.config.nms_reports_per_cell * act;
        let whole = expected.floor() as usize;
        let frac = expected - expected.floor();
        let civil = epoch.civil().compact();
        for c in &self.layout.cells {
            let reports = whole + usize::from(frac > 0.0 && rng.gen_bool(frac));
            // The cell's base load this epoch is deterministic (popularity
            // × diurnal activity); successive counter reports for the same
            // cell differ only by small noise — real OSS counters are
            // heavily correlated, which is what makes them so compressible.
            let base_load = (act * 40.0 * (1.0 + f64::from(c.cell_id % 7) * 0.2)) as i64;
            // Radio conditions are stable within one 30-minute epoch: the
            // cell's throughput bucket and signal level are sampled once
            // per cell-epoch, and the ~17 counter reports of that cell
            // differ only in load noise. This per-report redundancy is the
            // property that gives real OSS files their high compression
            // ratios (Table I).
            let throughput_kbps = match c.tech {
                crate::cells::Tech::Gsm => rng.gen_range(0..2) * 100,
                crate::cells::Tech::Umts => rng.gen_range(5..40) * 100,
                crate::cells::Tech::Lte => rng.gen_range(5..60) * 1_000,
            };
            let rssi_dbm = -rng.gen_range(30..55) * 2;
            for _ in 0..reports {
                let attempts = base_load + rng.gen_range(0..4);
                let drop_rate = match c.tech {
                    crate::cells::Tech::Gsm => 0.030,
                    crate::cells::Tech::Umts => 0.020,
                    crate::cells::Tech::Lte => 0.008,
                };
                let drops = ((attempts as f64) * drop_rate * rng.gen_range(0.0..2.0)) as i64;
                let mut values = Vec::with_capacity(nms::WIDTH);
                values.push(Value::Str(civil.clone())); // TS
                values.push(Value::Int(i64::from(c.cell_id))); // CELL_ID
                values.push(Value::Int(attempts)); // CALL_ATTEMPTS
                values.push(Value::Int(drops)); // CALL_DROPS
                values.push(Value::Int(attempts * 60)); // TOTAL_DURATION_S (mean hold time)
                values.push(Value::Int(throughput_kbps)); // THROUGHPUT_KBPS
                values.push(Value::Int(rssi_dbm)); // RSSI_DBM
                values.push(Value::Int(rng.gen_range(0..4))); // HANDOVER_FAILURES
                debug_assert_eq!(values.len(), nms::WIDTH);
                out.push(Record::new(values));
            }
        }
    }

    /// Generate the next snapshot in sequence.
    pub fn next_snapshot(&mut self) -> Option<Snapshot> {
        if self.next_epoch >= self.config.total_epochs() {
            return None;
        }
        let epoch = EpochId(self.next_epoch);
        self.next_epoch += 1;
        // Per-epoch RNG: derived from the master seed and epoch id.
        let mut rng = StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(u64::from(epoch.0)),
        );
        let n_cdr = load::scaled_count(self.config.cdr_base_per_epoch, epoch);
        let mut cdr_rows = Vec::with_capacity(n_cdr);
        for _ in 0..n_cdr {
            let rec = self.generate_cdr_record(&mut rng, epoch);
            cdr_rows.push(rec);
        }
        let mut nms_rows =
            Vec::with_capacity(self.layout.len() * self.config.nms_reports_per_cell as usize + 1);
        self.generate_nms_records(&mut rng, epoch, &mut nms_rows);
        Some(Snapshot::new(epoch, cdr_rows, nms_rows))
    }

    /// Generate the entire configured trace.
    pub fn generate_all(mut self) -> Vec<Snapshot> {
        let mut out = Vec::with_capacity(self.config.total_epochs() as usize);
        while let Some(s) = self.next_snapshot() {
            out.push(s);
        }
        out
    }
}

impl Iterator for TraceGenerator {
    type Item = Snapshot;

    fn next(&mut self) -> Option<Snapshot> {
        self.next_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::DayPeriod;

    #[test]
    fn generation_is_deterministic() {
        let a: Vec<Snapshot> = TraceGenerator::new(TraceConfig::tiny()).take(4).collect();
        let b: Vec<Snapshot> = TraceGenerator::new(TraceConfig::tiny()).take(4).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn snapshots_cover_configured_epochs() {
        let config = TraceConfig::tiny();
        let total = config.total_epochs();
        let snaps = TraceGenerator::new(config).generate_all();
        assert_eq!(snaps.len() as u32, total);
        for (i, s) in snaps.iter().enumerate() {
            assert_eq!(s.epoch.0 as usize, i);
        }
    }

    #[test]
    fn record_shapes_match_schemas() {
        let mut g = TraceGenerator::new(TraceConfig::tiny());
        let s = g.next_snapshot().unwrap();
        assert!(!s.cdr.is_empty());
        assert!(!s.nms.is_empty());
        for r in &s.cdr {
            assert_eq!(r.values.len(), cdr::WIDTH);
        }
        for r in &s.nms {
            assert_eq!(r.values.len(), nms::WIDTH);
        }
    }

    #[test]
    fn cdr_cells_are_valid_and_ts_matches_epoch() {
        let mut g = TraceGenerator::new(TraceConfig::tiny());
        let n_cells = g.config().n_cells;
        for _ in 0..3 {
            let s = g.next_snapshot().unwrap();
            let expected_ts = s.epoch.civil().compact();
            for r in &s.cdr {
                let cell = r.get(cdr::CELL_ID).as_i64().unwrap();
                assert!((0..i64::from(n_cells)).contains(&cell));
                assert_eq!(r.get(cdr::TS_START).as_text(), expected_ts);
            }
        }
    }

    #[test]
    fn busy_epochs_carry_more_records() {
        let config = TraceConfig::tiny();
        let snaps = TraceGenerator::new(config).generate_all();
        // Compare a 19:00 (evening peak) epoch to a 03:00 (night trough).
        let evening = &snaps[(19 * 2) as usize];
        let night = &snaps[(3 * 2) as usize];
        assert_eq!(evening.epoch.day_period(), DayPeriod::Evening);
        assert_eq!(night.epoch.day_period(), DayPeriod::Night);
        assert!(
            evening.cdr.len() > night.cdr.len(),
            "evening {} vs night {}",
            evening.cdr.len(),
            night.cdr.len()
        );
    }

    #[test]
    fn record_ids_are_unique_and_increasing() {
        let snaps = TraceGenerator::new(TraceConfig::tiny())
            .take(4)
            .collect::<Vec<_>>();
        let mut last = 0i64;
        for s in &snaps {
            for r in &s.cdr {
                let id = r.get(cdr::RECORD_ID).as_i64().unwrap();
                assert!(id > last);
                last = id;
            }
        }
    }

    #[test]
    fn nms_volume_dominates_cdr_volume() {
        // The paper: NMS is ~12x CDR by record count (21M vs 1.7M).
        let snaps = TraceGenerator::new(TraceConfig::tiny())
            .take(8)
            .collect::<Vec<_>>();
        let cdr_total: usize = snaps.iter().map(|s| s.cdr.len()).sum();
        let nms_total: usize = snaps.iter().map(|s| s.nms.len()).sum();
        let ratio = nms_total as f64 / cdr_total as f64;
        assert!(
            (4.0..40.0).contains(&ratio),
            "NMS:CDR ratio should be in the paper's ballpark, got {ratio:.1}"
        );
    }

    #[test]
    fn scaled_config_preserves_structure() {
        let c = TraceConfig::scaled(1.0 / 256.0);
        assert_eq!(c.days, 7);
        assert!(c.n_cells >= 24);
        assert!(c.n_antennas >= 8);
        assert!(c.n_users >= 64);
        let paper = TraceConfig::paper();
        assert!(c.n_cells < paper.n_cells);
        assert!(c.cdr_base_per_epoch < paper.cdr_base_per_epoch);
    }

    #[test]
    fn snapshot_wire_round_trip_at_generator_scale() {
        let mut g = TraceGenerator::new(TraceConfig::tiny());
        let s = g.next_snapshot().unwrap();
        let parsed = Snapshot::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(parsed.epoch, s.epoch);
        assert_eq!(parsed.cdr.len(), s.cdr.len());
        assert_eq!(parsed.nms.len(), s.nms.len());
        // Values survive textual round trip.
        assert_eq!(
            parsed.cdr[0].get(cdr::DOWNFLUX).as_i64(),
            s.cdr[0].get(cdr::DOWNFLUX).as_i64()
        );
    }
}
