//! Diurnal and weekday load model.
//!
//! The paper's experiments partition the trace by day period and weekday
//! precisely because "the data load varies among day periods" and "between
//! days" (§VIII-A/B). This module provides the activity multiplier that
//! makes those partitions carry different record volumes.

use crate::time::{EpochId, Weekday};

/// Relative activity by hour of day (0–23), normalized around 1.0.
/// Shape: quiet pre-dawn trough, morning ramp, lunchtime peak, evening
/// maximum, late-night decline — a standard mobile-network traffic curve.
const HOURLY: [f64; 24] = [
    0.30, 0.22, 0.18, 0.15, 0.15, 0.20, // 00–05
    0.45, 0.80, 1.10, 1.25, 1.30, 1.35, // 06–11
    1.40, 1.35, 1.25, 1.20, 1.25, 1.40, // 12–17
    1.55, 1.60, 1.45, 1.15, 0.80, 0.50, // 18–23
];

/// Relative activity by weekday (Mon..Sun): weekdays busier for voice,
/// weekend slightly lighter overall.
const DAILY: [f64; 7] = [1.00, 1.02, 1.03, 1.05, 1.15, 0.95, 0.85];

/// Activity multiplier for an epoch: product of hourly and weekday factors.
pub fn activity(epoch: EpochId) -> f64 {
    let hour = epoch.hour() as usize;
    let weekday = Weekday::ALL
        .iter()
        .position(|&w| w == epoch.weekday())
        .unwrap();
    HOURLY[hour] * DAILY[weekday]
}

/// Expected record count for a base rate at a given epoch (deterministic;
/// sub-integer remainders alternate by epoch parity so totals stay close to
/// the mean without randomness).
pub fn scaled_count(base: f64, epoch: EpochId) -> usize {
    let x = base * activity(epoch);
    let floor = x.floor();
    let frac = x - floor;
    let bump = if (f64::from(epoch.0) * 0.61803) % 1.0 < frac {
        1.0
    } else {
        0.0
    };
    (floor + bump).max(0.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{DayPeriod, EPOCHS_PER_DAY};

    #[test]
    fn evening_is_busier_than_night() {
        // Compare mean activity across one Monday.
        let mut by_period = std::collections::HashMap::new();
        for e in 0..EPOCHS_PER_DAY {
            let id = EpochId(e);
            let entry = by_period.entry(id.day_period()).or_insert((0.0, 0u32));
            entry.0 += activity(id);
            entry.1 += 1;
        }
        let mean = |p: DayPeriod| {
            let (sum, n) = by_period[&p];
            sum / f64::from(n)
        };
        assert!(mean(DayPeriod::Evening) > mean(DayPeriod::Morning));
        assert!(mean(DayPeriod::Morning) > mean(DayPeriod::Night));
        assert!(mean(DayPeriod::Afternoon) > mean(DayPeriod::Night));
    }

    #[test]
    fn friday_beats_sunday() {
        // Same epoch-in-day, different days.
        let fri = EpochId(4 * EPOCHS_PER_DAY + 20);
        let sun = EpochId(6 * EPOCHS_PER_DAY + 20);
        assert_eq!(fri.weekday(), Weekday::Fri);
        assert_eq!(sun.weekday(), Weekday::Sun);
        assert!(activity(fri) > activity(sun));
    }

    #[test]
    fn scaled_counts_track_the_mean() {
        let base = 100.0;
        let total: usize = (0..7 * EPOCHS_PER_DAY)
            .map(|e| scaled_count(base, EpochId(e)))
            .sum();
        let expected: f64 = (0..7 * EPOCHS_PER_DAY)
            .map(|e| base * activity(EpochId(e)))
            .sum();
        let diff = (total as f64 - expected).abs();
        assert!(
            diff / expected < 0.01,
            "deterministic rounding should stay within 1%: {total} vs {expected:.0}"
        );
    }

    #[test]
    fn activity_is_always_positive() {
        for e in 0..14 * EPOCHS_PER_DAY {
            assert!(activity(EpochId(e)) > 0.0);
        }
    }
}
