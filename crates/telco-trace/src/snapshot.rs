//! Snapshots: the 30-minute batches of CDR + NMS records that stream into
//! SPATE, and their text wire format (what the storage layer compresses).

use crate::record::Record;
use crate::schema::{cdr, nms};
use crate::time::EpochId;
use std::fmt;

/// One ingestion batch `d_i`: all user and network activity of one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    pub epoch: EpochId,
    pub cdr: Vec<Record>,
    pub nms: Vec<Record>,
}

/// Error parsing a serialized snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotParseError {
    MissingHeader,
    BadHeader(String),
    BadTableHeader(String),
    BadRow { table: &'static str, line: usize },
    RowCountMismatch { table: &'static str },
}

impl fmt::Display for SnapshotParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotParseError::MissingHeader => write!(f, "missing snapshot header"),
            SnapshotParseError::BadHeader(s) => write!(f, "bad snapshot header: {s}"),
            SnapshotParseError::BadTableHeader(s) => write!(f, "bad table header: {s}"),
            SnapshotParseError::BadRow { table, line } => {
                write!(f, "bad {table} row at line {line}")
            }
            SnapshotParseError::RowCountMismatch { table } => {
                write!(f, "{table} row count mismatch")
            }
        }
    }
}

impl std::error::Error for SnapshotParseError {}

impl Snapshot {
    pub fn new(epoch: EpochId, cdr: Vec<Record>, nms: Vec<Record>) -> Self {
        Self { epoch, cdr, nms }
    }

    pub fn total_records(&self) -> usize {
        self.cdr.len() + self.nms.len()
    }

    /// Serialize to the text wire format:
    ///
    /// ```text
    /// #SNAPSHOT epoch=<n> ts=<YYYYMMDDhhmm>
    /// #TABLE CDR rows=<n> cols=200
    /// <csv rows>
    /// #TABLE NMS rows=<n> cols=8
    /// <csv rows>
    /// ```
    pub fn to_bytes(&self) -> Vec<u8> {
        // Rough size estimate: CDR rows are wide (~200 cols), NMS narrow.
        let mut out = String::with_capacity(self.cdr.len() * 320 + self.nms.len() * 64 + 128);
        out.push_str(&format!(
            "#SNAPSHOT epoch={} ts={}\n",
            self.epoch.0,
            self.epoch.civil().compact()
        ));
        out.push_str(&format!(
            "#TABLE CDR rows={} cols={}\n",
            self.cdr.len(),
            cdr::WIDTH
        ));
        for r in &self.cdr {
            r.to_line(&mut out);
        }
        out.push_str(&format!(
            "#TABLE NMS rows={} cols={}\n",
            self.nms.len(),
            nms::WIDTH
        ));
        for r in &self.nms {
            r.to_line(&mut out);
        }
        out.into_bytes()
    }

    /// Parse the wire format back into a snapshot.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotParseError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| SnapshotParseError::BadHeader("not utf-8".into()))?;
        let mut lines = text.lines().enumerate();

        let (_, header) = lines.next().ok_or(SnapshotParseError::MissingHeader)?;
        let epoch = parse_kv(header, "#SNAPSHOT", "epoch")
            .ok_or_else(|| SnapshotParseError::BadHeader(header.to_string()))?;

        let read_table = |name: &'static str,
                          width: usize,
                          lines: &mut std::iter::Enumerate<std::str::Lines<'_>>|
         -> Result<Vec<Record>, SnapshotParseError> {
            let (_, th) = lines
                .next()
                .ok_or_else(|| SnapshotParseError::BadTableHeader("missing".into()))?;
            if !th.starts_with("#TABLE") || !th.contains(name) {
                return Err(SnapshotParseError::BadTableHeader(th.to_string()));
            }
            let rows: u32 = parse_kv(th, "#TABLE", "rows")
                .ok_or_else(|| SnapshotParseError::BadTableHeader(th.to_string()))?;
            let mut records = Vec::with_capacity(rows as usize);
            for _ in 0..rows {
                let (line_no, line) = lines
                    .next()
                    .ok_or(SnapshotParseError::RowCountMismatch { table: name })?;
                let rec = Record::parse_line(line, width).ok_or(SnapshotParseError::BadRow {
                    table: name,
                    line: line_no + 1,
                })?;
                records.push(rec);
            }
            Ok(records)
        };

        let cdr_rows = read_table("CDR", cdr::WIDTH, &mut lines)?;
        let nms_rows = read_table("NMS", nms::WIDTH, &mut lines)?;
        Ok(Snapshot::new(EpochId(epoch), cdr_rows, nms_rows))
    }
}

fn parse_kv<T: std::str::FromStr>(line: &str, prefix: &str, key: &str) -> Option<T> {
    if !line.starts_with(prefix) {
        return None;
    }
    for part in line.split_whitespace() {
        if let Some(rest) = part.strip_prefix(key) {
            if let Some(v) = rest.strip_prefix('=') {
                return v.parse().ok();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Value;

    fn tiny_snapshot() -> Snapshot {
        let mut cdr_row = vec![Value::Null; cdr::WIDTH];
        cdr_row[cdr::RECORD_ID] = Value::Int(1);
        cdr_row[cdr::UPFLUX] = Value::Int(1234);
        let mut nms_row = vec![Value::Null; nms::WIDTH];
        nms_row[nms::CELL_ID] = Value::Int(7);
        nms_row[nms::CALL_DROPS] = Value::Int(2);
        Snapshot::new(
            EpochId(31),
            vec![Record::new(cdr_row)],
            vec![Record::new(nms_row.clone()), Record::new(nms_row)],
        )
    }

    #[test]
    fn wire_round_trip() {
        let snap = tiny_snapshot();
        let bytes = snap.to_bytes();
        let parsed = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(parsed.epoch, snap.epoch);
        assert_eq!(parsed.cdr.len(), 1);
        assert_eq!(parsed.nms.len(), 2);
        assert_eq!(parsed.cdr[0].get(cdr::UPFLUX).as_i64(), Some(1234));
        assert_eq!(parsed.nms[0].get(nms::CELL_ID).as_i64(), Some(7));
    }

    #[test]
    fn header_contains_compact_timestamp() {
        let bytes = tiny_snapshot().to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(
            text.starts_with("#SNAPSHOT epoch=31 ts=201601181530\n"),
            "{text}"
        );
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot::new(EpochId(0), vec![], vec![]);
        let parsed = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Snapshot::from_bytes(b"").is_err());
        assert!(Snapshot::from_bytes(b"garbage\n").is_err());
        assert!(Snapshot::from_bytes(b"#SNAPSHOT epoch=xyz ts=0\n").is_err());
        // Declared rows missing.
        let text = "#SNAPSHOT epoch=1 ts=0\n#TABLE CDR rows=5 cols=200\n";
        assert_eq!(
            Snapshot::from_bytes(text.as_bytes()),
            Err(SnapshotParseError::RowCountMismatch { table: "CDR" })
        );
        // Row with wrong arity.
        let text = "#SNAPSHOT epoch=1 ts=0\n#TABLE CDR rows=1 cols=200\na,b,c\n";
        assert!(matches!(
            Snapshot::from_bytes(text.as_bytes()),
            Err(SnapshotParseError::BadRow { table: "CDR", .. })
        ));
    }

    #[test]
    fn total_records_counts_both_tables() {
        assert_eq!(tiny_snapshot().total_records(), 3);
    }

    #[test]
    fn error_display() {
        let e = SnapshotParseError::BadRow {
            table: "NMS",
            line: 3,
        };
        assert!(e.to_string().contains("NMS"));
        assert!(e.to_string().contains('3'));
    }
}
