//! Civil time for the trace: 30-minute ingestion epochs, day periods and
//! weekdays, anchored at the paper's trace start (January 2016).
//!
//! The paper partitions its week-long trace two ways (§VII-C):
//! * by *day period* — Morning 05:00–12:00, Afternoon 12:00–17:00,
//!   Evening 17:00–21:00, Night 21:00–05:00 (Figs. 7–8);
//! * by *weekday* — Monday through Sunday (Figs. 9–10).

/// Minutes per ingestion cycle ("epoch"): snapshots arrive every 30 minutes.
pub const EPOCH_MINUTES: u32 = 30;
/// 48 snapshots per day.
pub const EPOCHS_PER_DAY: u32 = 24 * 60 / EPOCH_MINUTES;

/// The trace timeline starts Monday 2016-01-18 00:00 (the paper's trace was
/// collected in January 2016; starting on a Monday makes weekday partitions
/// align with whole trace days).
pub const TRACE_START_YEAR: u32 = 2016;
pub const TRACE_START_MONTH: u32 = 1;
pub const TRACE_START_DAY: u32 = 18;

/// Index of a 30-minute ingestion cycle since the trace start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EpochId(pub u32);

/// The paper's four day-period partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DayPeriod {
    /// 05:00 – 12:00
    Morning,
    /// 12:00 – 17:00
    Afternoon,
    /// 17:00 – 21:00
    Evening,
    /// 21:00 – 05:00
    Night,
}

impl DayPeriod {
    pub const ALL: [DayPeriod; 4] = [
        DayPeriod::Morning,
        DayPeriod::Afternoon,
        DayPeriod::Evening,
        DayPeriod::Night,
    ];

    pub fn label(self) -> &'static str {
        match self {
            DayPeriod::Morning => "Morning",
            DayPeriod::Afternoon => "Afternoon",
            DayPeriod::Evening => "Evening",
            DayPeriod::Night => "Night",
        }
    }

    /// Classify an hour of day (0–23).
    pub fn of_hour(hour: u32) -> Self {
        match hour {
            5..=11 => DayPeriod::Morning,
            12..=16 => DayPeriod::Afternoon,
            17..=20 => DayPeriod::Evening,
            _ => DayPeriod::Night,
        }
    }
}

/// Days of the week, Monday first (paper Figs. 9–10 order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Weekday {
    Mon,
    Tue,
    Wed,
    Thu,
    Fri,
    Sat,
    Sun,
}

impl Weekday {
    pub const ALL: [Weekday; 7] = [
        Weekday::Mon,
        Weekday::Tue,
        Weekday::Wed,
        Weekday::Thu,
        Weekday::Fri,
        Weekday::Sat,
        Weekday::Sun,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Weekday::Mon => "Mon",
            Weekday::Tue => "Tue",
            Weekday::Wed => "Wed",
            Weekday::Thu => "Thu",
            Weekday::Fri => "Fri",
            Weekday::Sat => "Sat",
            Weekday::Sun => "Sun",
        }
    }

    fn from_index(i: u32) -> Self {
        Self::ALL[(i % 7) as usize]
    }
}

/// Gregorian leap-year rule.
pub fn is_leap(year: u32) -> bool {
    (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
}

/// Days in a civil month.
pub fn days_in_month(year: u32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => unreachable!("month {month}"),
    }
}

/// A broken-down civil timestamp within the trace calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CivilTime {
    pub year: u32,
    pub month: u32,
    pub day: u32,
    pub hour: u32,
    pub minute: u32,
}

impl CivilTime {
    /// Compact `YYYYMMDDhhmm` form, the timestamp format the paper's task
    /// queries use (e.g. `ts="201601221530"`).
    pub fn compact(&self) -> String {
        format!(
            "{:04}{:02}{:02}{:02}{:02}",
            self.year, self.month, self.day, self.hour, self.minute
        )
    }

    /// Parse a compact timestamp. Accepts prefixes (`"2016"`, `"201601"`,
    /// …), filling missing fields with their minimum — handy for range
    /// predicates like `ts >= "2015"`.
    pub fn parse_compact(s: &str) -> Option<Self> {
        if s.is_empty() || s.len() > 12 || !s.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let field = |range: std::ops::Range<usize>, default: u32| -> u32 {
            if s.len() >= range.end {
                s[range].parse().unwrap_or(default)
            } else {
                default
            }
        };
        Some(Self {
            year: field(0..4, 0),
            month: field(4..6, 1),
            day: field(6..8, 1),
            hour: field(8..10, 0),
            minute: field(10..12, 0),
        })
    }
}

impl EpochId {
    /// Day index since trace start.
    pub fn day_index(self) -> u32 {
        self.0 / EPOCHS_PER_DAY
    }

    /// Epoch within its day (0–47).
    pub fn epoch_in_day(self) -> u32 {
        self.0 % EPOCHS_PER_DAY
    }

    pub fn hour(self) -> u32 {
        self.epoch_in_day() * EPOCH_MINUTES / 60
    }

    pub fn minute(self) -> u32 {
        self.epoch_in_day() * EPOCH_MINUTES % 60
    }

    pub fn day_period(self) -> DayPeriod {
        DayPeriod::of_hour(self.hour())
    }

    /// The trace starts on a Monday, so weekday is just day-index mod 7.
    pub fn weekday(self) -> Weekday {
        Weekday::from_index(self.day_index())
    }

    /// Civil timestamp of the epoch's start.
    pub fn civil(self) -> CivilTime {
        let mut year = TRACE_START_YEAR;
        let mut month = TRACE_START_MONTH;
        let mut day = TRACE_START_DAY;
        let mut remaining = self.day_index();
        while remaining > 0 {
            let dim = days_in_month(year, month);
            if day < dim {
                day += 1;
            } else {
                day = 1;
                if month == 12 {
                    month = 1;
                    year += 1;
                } else {
                    month += 1;
                }
            }
            remaining -= 1;
        }
        CivilTime {
            year,
            month,
            day,
            hour: self.hour(),
            minute: self.minute(),
        }
    }

    /// Minutes since the trace start.
    pub fn start_minutes(self) -> u64 {
        u64::from(self.0) * u64::from(EPOCH_MINUTES)
    }

    /// The epoch covering a given minute offset from trace start.
    pub fn from_minutes(minutes: u64) -> Self {
        EpochId((minutes / u64::from(EPOCH_MINUTES)) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_period_boundaries_match_the_paper() {
        assert_eq!(DayPeriod::of_hour(5), DayPeriod::Morning);
        assert_eq!(DayPeriod::of_hour(11), DayPeriod::Morning);
        assert_eq!(DayPeriod::of_hour(12), DayPeriod::Afternoon);
        assert_eq!(DayPeriod::of_hour(16), DayPeriod::Afternoon);
        assert_eq!(DayPeriod::of_hour(17), DayPeriod::Evening);
        assert_eq!(DayPeriod::of_hour(20), DayPeriod::Evening);
        assert_eq!(DayPeriod::of_hour(21), DayPeriod::Night);
        assert_eq!(DayPeriod::of_hour(0), DayPeriod::Night);
        assert_eq!(DayPeriod::of_hour(4), DayPeriod::Night);
    }

    #[test]
    fn period_epoch_counts_per_day() {
        // 14 morning + 10 afternoon + 8 evening + 16 night = 48 epochs.
        let mut counts = [0u32; 4];
        for e in 0..EPOCHS_PER_DAY {
            let p = EpochId(e).day_period();
            counts[DayPeriod::ALL.iter().position(|&q| q == p).unwrap()] += 1;
        }
        assert_eq!(counts, [14, 10, 8, 16]);
    }

    #[test]
    fn weekdays_cycle_from_monday() {
        assert_eq!(EpochId(0).weekday(), Weekday::Mon);
        assert_eq!(EpochId(EPOCHS_PER_DAY - 1).weekday(), Weekday::Mon);
        assert_eq!(EpochId(EPOCHS_PER_DAY).weekday(), Weekday::Tue);
        assert_eq!(EpochId(6 * EPOCHS_PER_DAY).weekday(), Weekday::Sun);
        assert_eq!(EpochId(7 * EPOCHS_PER_DAY).weekday(), Weekday::Mon);
    }

    #[test]
    fn civil_time_advances_across_months_and_years() {
        let start = EpochId(0).civil();
        assert_eq!((start.year, start.month, start.day), (2016, 1, 18));
        assert_eq!((start.hour, start.minute), (0, 0));

        // 14 days later: Feb 1.
        let feb = EpochId(14 * EPOCHS_PER_DAY).civil();
        assert_eq!((feb.year, feb.month, feb.day), (2016, 2, 1));

        // 2016 is a leap year: Jan 18 + 42 days = Feb 29.
        let leap = EpochId(42 * EPOCHS_PER_DAY).civil();
        assert_eq!((leap.year, leap.month, leap.day), (2016, 2, 29));

        // 366 days later lands on Jan 18, 2017.
        let next_year = EpochId(366 * EPOCHS_PER_DAY).civil();
        assert_eq!(
            (next_year.year, next_year.month, next_year.day),
            (2017, 1, 18)
        );
    }

    #[test]
    fn compact_format_and_parse() {
        let e = EpochId(31); // day 0, epoch 31 → 15:30
        let c = e.civil();
        assert_eq!(c.compact(), "201601181530");
        assert_eq!(CivilTime::parse_compact("201601181530"), Some(c));
        // Prefix parsing fills minima.
        let y = CivilTime::parse_compact("2016").unwrap();
        assert_eq!(
            (y.year, y.month, y.day, y.hour, y.minute),
            (2016, 1, 1, 0, 0)
        );
        assert!(CivilTime::parse_compact("20x6").is_none());
        assert!(CivilTime::parse_compact("").is_none());
    }

    #[test]
    fn minutes_round_trip() {
        for e in [0u32, 1, 47, 48, 12345] {
            let id = EpochId(e);
            assert_eq!(EpochId::from_minutes(id.start_minutes()), id);
            assert_eq!(EpochId::from_minutes(id.start_minutes() + 29), id);
            assert_ne!(EpochId::from_minutes(id.start_minutes() + 30), id);
        }
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap(2016));
        assert!(!is_leap(2017));
        assert!(!is_leap(1900));
        assert!(is_leap(2000));
        assert_eq!(days_in_month(2016, 2), 29);
        assert_eq!(days_in_month(2017, 2), 28);
    }
}
