//! Relational records and their text wire format.
//!
//! Telco OSS/BSS data is "highly structured ... relational records based on
//! a predetermined schema ... mostly nominal text and interval-scaled
//! discrete numerical values" (paper §II-B). Records are serialized as
//! comma-separated lines, the format the paper's snapshots arrive in.

use std::fmt;

/// One attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Optional attribute left blank (the zero-entropy columns of Fig. 4).
    Null,
    /// Nominal text (call types, results, technology tags, ids).
    Str(String),
    /// Discrete numerical value (counters, byte volumes, durations).
    Int(i64),
    /// Continuous measurement (throughput, signal strength).
    Float(f64),
}

impl Value {
    /// Canonical text form used both on the wire and for entropy analysis.
    pub fn as_text(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Str(s) => s.clone(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format!("{f:.2}"),
        }
    }

    /// Numeric view: ints and parses of numeric strings; `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Str(s) => s.parse().ok(),
            Value::Null => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            Value::Str(s) => s.parse().ok(),
            Value::Null => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_text())
    }
}

/// A row: one value per schema column.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    pub values: Vec<Value>,
}

impl Record {
    pub fn new(values: Vec<Value>) -> Self {
        Self { values }
    }

    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Serialize as a CSV line. Values must not contain `,` or newlines —
    /// guaranteed by the generator, asserted here in debug builds.
    pub fn to_line(&self, out: &mut String) {
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let text = v.as_text();
            debug_assert!(
                !text.contains(',') && !text.contains('\n'),
                "value contains a delimiter: {text:?}"
            );
            out.push_str(&text);
        }
        out.push('\n');
    }

    /// Parse a CSV line. Every field comes back as `Str` (or `Null` when
    /// empty); numeric interpretation is deferred to `Value::as_f64`, which
    /// is what a schema-on-read big-data stack does.
    pub fn parse_line(line: &str, n_cols: usize) -> Option<Self> {
        let mut values = Vec::with_capacity(n_cols);
        for field in line.split(',') {
            values.push(if field.is_empty() {
                Value::Null
            } else {
                Value::Str(field.to_string())
            });
        }
        if values.len() != n_cols {
            return None;
        }
        Some(Self { values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_text_forms() {
        assert_eq!(Value::Null.as_text(), "");
        assert_eq!(Value::Str("LTE".into()).as_text(), "LTE");
        assert_eq!(Value::Int(-5).as_text(), "-5");
        assert_eq!(Value::Float(2.34567).as_text(), "2.35");
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(42).as_f64(), Some(42.0));
        assert_eq!(Value::Float(1.5).as_i64(), Some(1));
        assert_eq!(Value::Str("17".into()).as_i64(), Some(17));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn line_round_trip() {
        let rec = Record::new(vec![
            Value::Str("821000017".into()),
            Value::Null,
            Value::Int(1500),
            Value::Float(2.5),
        ]);
        let mut line = String::new();
        rec.to_line(&mut line);
        assert_eq!(line, "821000017,,1500,2.50\n");

        let parsed = Record::parse_line(line.trim_end(), 4).unwrap();
        assert_eq!(parsed.values[0], Value::Str("821000017".into()));
        assert_eq!(parsed.values[1], Value::Null);
        assert_eq!(parsed.values[2].as_i64(), Some(1500));
        assert_eq!(parsed.values[3].as_f64(), Some(2.5));
    }

    #[test]
    fn parse_rejects_wrong_arity() {
        assert!(Record::parse_line("a,b,c", 4).is_none());
        assert!(Record::parse_line("a,b,c,d,e", 4).is_none());
        assert!(Record::parse_line("a,b,c,d", 4).is_some());
    }

    #[test]
    fn empty_fields_become_null() {
        let rec = Record::parse_line(",,", 3).unwrap();
        assert!(rec.values.iter().all(Value::is_null));
    }
}
