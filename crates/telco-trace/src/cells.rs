//! Cellular layout: antennas over a ~6000 km² region, three sectors (cells)
//! per antenna, a 2G/3G/LTE technology mix, and Zipf-skewed cell popularity.
//!
//! "Every record is linked to a specific cell ID ... attached to a base
//! station that has a known location" (paper §II-B). Spatial predicates in
//! `Q(a,b,w)` resolve to sets of cells through this layout.

use crate::record::{Record, Value};
use crate::schema::cell;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Side of the square coverage region in meters (≈ 6000 km², paper §VII-C).
pub const REGION_SIDE_M: f64 = 77_500.0;

/// One cell: a sector of an antenna covering an area around its site.
#[derive(Debug, Clone)]
pub struct Cell {
    pub cell_id: u32,
    pub antenna_id: u32,
    pub x_m: f64,
    pub y_m: f64,
    pub tech: Tech,
    pub azimuth_deg: u32,
    pub range_m: u32,
    pub controller_id: u32,
    pub region: u32,
}

/// Radio technology generations (paper §II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tech {
    Gsm,
    Umts,
    Lte,
}

impl Tech {
    pub fn label(self) -> &'static str {
        match self {
            Tech::Gsm => "2G",
            Tech::Umts => "3G",
            Tech::Lte => "LTE",
        }
    }
}

/// An axis-aligned spatial bounding box in meters (the `b` of `Q(a,b,w)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    pub min_x: f64,
    pub min_y: f64,
    pub max_x: f64,
    pub max_y: f64,
}

impl BoundingBox {
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        assert!(min_x <= max_x && min_y <= max_y);
        Self {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// The whole coverage region.
    pub fn everything() -> Self {
        Self::new(0.0, 0.0, REGION_SIDE_M, REGION_SIDE_M)
    }

    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.min_x && x <= self.max_x && y >= self.min_y && y <= self.max_y
    }

    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }
}

/// The full static cell inventory plus popularity weights.
#[derive(Debug, Clone)]
pub struct CellLayout {
    pub cells: Vec<Cell>,
    /// Cumulative Zipf popularity over cells (for weighted sampling).
    popularity_cdf: Vec<f64>,
}

impl CellLayout {
    /// Generate a layout of `n_antennas` antennas carrying `n_cells` cells.
    ///
    /// Antennas cluster toward the region center (city core) with a uniform
    /// rural tail, so popular cells are spatially collocated — the property
    /// that makes spatial drill-downs interesting.
    pub fn generate(n_cells: u32, n_antennas: u32, seed: u64) -> Self {
        assert!(n_cells >= n_antennas && n_antennas > 0);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xCE11_1A70);
        let mut antennas = Vec::with_capacity(n_antennas as usize);
        for _ in 0..n_antennas {
            let (x, y) = if rng.gen_bool(0.7) {
                // Urban core: gaussian-ish cluster around the center.
                let cx = REGION_SIDE_M / 2.0;
                let spread = REGION_SIDE_M / 8.0;
                let gx: f64 = (0..4).map(|_| rng.gen_range(-1.0..1.0)).sum::<f64>() / 2.0;
                let gy: f64 = (0..4).map(|_| rng.gen_range(-1.0..1.0)).sum::<f64>() / 2.0;
                (
                    (cx + gx * spread).clamp(0.0, REGION_SIDE_M),
                    (cx + gy * spread).clamp(0.0, REGION_SIDE_M),
                )
            } else {
                (
                    rng.gen_range(0.0..REGION_SIDE_M),
                    rng.gen_range(0.0..REGION_SIDE_M),
                )
            };
            antennas.push((x, y));
        }

        let mut cells = Vec::with_capacity(n_cells as usize);
        for cell_idx in 0..n_cells {
            let antenna_id = cell_idx % n_antennas;
            let sector = cell_idx / n_antennas;
            let (ax, ay) = antennas[antenna_id as usize];
            let tech = match cell_idx % 5 {
                0 => Tech::Gsm,
                1 | 2 => Tech::Umts,
                _ => Tech::Lte,
            };
            let range_m = match tech {
                Tech::Gsm => rng.gen_range(800..3000),
                Tech::Umts => rng.gen_range(500..1500),
                Tech::Lte => rng.gen_range(200..900),
            };
            let region_grid = 4; // 4x4 administrative regions
            let rx = (ax / REGION_SIDE_M * f64::from(region_grid)).min(3.0) as u32;
            let ry = (ay / REGION_SIDE_M * f64::from(region_grid)).min(3.0) as u32;
            cells.push(Cell {
                cell_id: cell_idx,
                antenna_id,
                x_m: ax,
                y_m: ay,
                tech,
                azimuth_deg: (sector * 120) % 360,
                range_m,
                controller_id: antenna_id / 16,
                region: ry * region_grid + rx,
            });
        }

        // Zipf popularity with exponent ~0.8 over a random permutation of
        // cells (popularity is not spatially deterministic).
        let mut weights: Vec<f64> = (0..n_cells)
            .map(|i| 1.0 / f64::from(i + 1).powf(0.8))
            .collect();
        // Shuffle weight assignment.
        for i in (1..weights.len()).rev() {
            let j = rng.gen_range(0..=i);
            weights.swap(i, j);
        }
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let popularity_cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();

        Self {
            cells,
            popularity_cdf,
        }
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    pub fn get(&self, cell_id: u32) -> &Cell {
        &self.cells[cell_id as usize]
    }

    /// Sample a cell id according to Zipf popularity.
    pub fn sample_popular(&self, rng: &mut impl Rng) -> u32 {
        let u: f64 = rng.gen();
        match self
            .popularity_cdf
            .binary_search_by(|p| p.partial_cmp(&u).unwrap())
        {
            Ok(i) | Err(i) => (i.min(self.cells.len() - 1)) as u32,
        }
    }

    /// All cell ids whose site lies inside `bbox`.
    pub fn cells_in(&self, bbox: &BoundingBox) -> Vec<u32> {
        self.cells
            .iter()
            .filter(|c| bbox.contains(c.x_m, c.y_m))
            .map(|c| c.cell_id)
            .collect()
    }

    /// A nearby cell (same or adjacent antenna) for hand-over/mobility.
    pub fn neighbor(&self, cell_id: u32, rng: &mut impl Rng) -> u32 {
        let n = self.cells.len() as u32;
        let delta = rng.gen_range(1..=3);
        if rng.gen_bool(0.5) {
            (cell_id + delta) % n
        } else {
            (cell_id + n - delta) % n
        }
    }

    /// Serialize the inventory as CELL table records (paper Fig. 3 right).
    pub fn to_records(&self) -> Vec<Record> {
        self.cells
            .iter()
            .map(|c| {
                let mut values = vec![Value::Null; cell::WIDTH];
                values[cell::CELL_ID] = Value::Int(i64::from(c.cell_id));
                values[cell::ANTENNA_ID] = Value::Int(i64::from(c.antenna_id));
                values[cell::X_M] = Value::Int(c.x_m as i64);
                values[cell::Y_M] = Value::Int(c.y_m as i64);
                values[cell::TECH] = Value::Str(c.tech.label().to_string());
                values[cell::AZIMUTH_DEG] = Value::Int(i64::from(c.azimuth_deg));
                values[cell::RANGE_M] = Value::Int(i64::from(c.range_m));
                values[cell::CONTROLLER_ID] = Value::Int(i64::from(c.controller_id));
                values[cell::SITE_NAME] = Value::Str(format!("site-{:05}", c.antenna_id));
                values[cell::REGION] = Value::Int(i64::from(c.region));
                Record::new(values)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generation_is_deterministic() {
        let a = CellLayout::generate(366, 119, 42);
        let b = CellLayout::generate(366, 119, 42);
        assert_eq!(a.cells.len(), b.cells.len());
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.cell_id, cb.cell_id);
            assert_eq!(ca.x_m, cb.x_m);
            assert_eq!(ca.tech, cb.tech);
        }
    }

    #[test]
    fn cells_attach_to_antennas_in_region() {
        let layout = CellLayout::generate(366, 119, 7);
        assert_eq!(layout.len(), 366);
        for c in &layout.cells {
            assert!(c.antenna_id < 119);
            assert!((0.0..=REGION_SIDE_M).contains(&c.x_m));
            assert!((0.0..=REGION_SIDE_M).contains(&c.y_m));
        }
        // Sectors of the same antenna share a site.
        let c0 = &layout.cells[0];
        let c119 = &layout.cells[119];
        assert_eq!(c0.antenna_id, c119.antenna_id);
        assert_eq!(c0.x_m, c119.x_m);
        assert_ne!(c0.azimuth_deg, c119.azimuth_deg);
    }

    #[test]
    fn popularity_is_skewed() {
        let layout = CellLayout::generate(200, 67, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 200];
        for _ in 0..20_000 {
            counts[layout.sample_popular(&mut rng) as usize] += 1;
        }
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u32 = sorted[..10].iter().sum();
        let total: u32 = sorted.iter().sum();
        assert!(
            f64::from(top10) / f64::from(total) > 0.15,
            "Zipf skew should concentrate traffic"
        );
        assert_eq!(total, 20_000);
    }

    #[test]
    fn bbox_queries_select_subsets() {
        let layout = CellLayout::generate(400, 134, 9);
        let all = layout.cells_in(&BoundingBox::everything());
        assert_eq!(all.len(), 400);
        let quadrant = BoundingBox::new(0.0, 0.0, REGION_SIDE_M / 2.0, REGION_SIDE_M / 2.0);
        let some = layout.cells_in(&quadrant);
        assert!(!some.is_empty() && some.len() < 400);
        for id in some {
            let c = layout.get(id);
            assert!(quadrant.contains(c.x_m, c.y_m));
        }
    }

    #[test]
    fn bbox_intersection() {
        let a = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        let b = BoundingBox::new(5.0, 5.0, 15.0, 15.0);
        let c = BoundingBox::new(11.0, 11.0, 12.0, 12.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(b.intersects(&c));
    }

    #[test]
    fn neighbors_stay_in_range() {
        let layout = CellLayout::generate(50, 17, 11);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let n = layout.neighbor(0, &mut rng);
            assert!(n < 50);
        }
        // Wrap-around both directions works near the edges.
        for _ in 0..1000 {
            let n = layout.neighbor(49, &mut rng);
            assert!(n < 50);
        }
    }

    #[test]
    fn record_serialization_has_cell_width() {
        let layout = CellLayout::generate(30, 10, 2);
        let records = layout.to_records();
        assert_eq!(records.len(), 30);
        assert_eq!(records[0].values.len(), cell::WIDTH);
        assert_eq!(records[5].get(cell::CELL_ID).as_i64(), Some(5));
    }

    #[test]
    fn tech_mix_covers_all_generations() {
        let layout = CellLayout::generate(300, 100, 13);
        let gsm = layout.cells.iter().filter(|c| c.tech == Tech::Gsm).count();
        let umts = layout.cells.iter().filter(|c| c.tech == Tech::Umts).count();
        let lte = layout.cells.iter().filter(|c| c.tech == Tech::Lte).count();
        assert!(gsm > 0 && umts > 0 && lte > 0);
        assert_eq!(gsm + umts + lte, 300);
        assert!(lte > gsm, "LTE should dominate the mix");
    }
}
