//! Synthetic telco big-data trace generation.
//!
//! The SPATE paper evaluates on a proprietary 5GB anonymized trace from a
//! real operator: 1.7M call detail records (CDR), 21M network measurement
//! records (NMS) and 3660 cells on 1192 antennas over ~6000 km², produced
//! by ~300K users during one week, arriving in 30-minute snapshots.
//!
//! This crate substitutes a deterministic synthetic trace that preserves
//! every property the SPATE storage and indexing layers are sensitive to:
//!
//! * **Schema shape** — ~200 CDR attributes (many optional/blank, mostly
//!   nominal text and small integers), 8 NMS counter attributes, 10 CELL
//!   attributes ([`schema`]).
//! * **Entropy profile** — most CDR attributes below 1 bit, several at 0
//!   (paper Fig. 4); verified by [`entropy`].
//! * **Arrival pattern** — 48 epochs/day with a diurnal load curve and
//!   weekday variation ([`load`]), so the Morning/Afternoon/Evening/Night
//!   and Mon–Sun experiment partitions (Figs. 7–10) are meaningful.
//! * **Spatial structure** — cells attached to antennas laid out over a
//!   ~6000 km² region, with Zipf-skewed user attachment ([`cells`]).
//!
//! Generation is fully deterministic given a [`generator::TraceConfig`]
//! seed, so experiments are reproducible bit-for-bit.

pub mod cells;
pub mod entropy;
pub mod generator;
pub mod load;
pub mod record;
pub mod schema;
pub mod snapshot;
pub mod time;

pub use cells::CellLayout;
pub use generator::{TraceConfig, TraceGenerator};
pub use record::{Record, Value};
pub use schema::{Schema, TableKind};
pub use snapshot::Snapshot;
pub use time::{DayPeriod, EpochId, Weekday, EPOCHS_PER_DAY, EPOCH_MINUTES};
