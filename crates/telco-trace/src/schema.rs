//! Table schemas mirroring the paper's Figure 3: CDR with ~200 attributes
//! (most optional or low-entropy), NMS with 8 counter attributes, CELL with
//! 10 attributes.

/// The three file types arriving at the telco data center (paper Fig. 3/4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableKind {
    Cdr,
    Nms,
    Cell,
}

impl TableKind {
    pub fn name(self) -> &'static str {
        match self {
            TableKind::Cdr => "CDR",
            TableKind::Nms => "NMS",
            TableKind::Cell => "CELL",
        }
    }

    pub fn from_name(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "CDR" => Some(TableKind::Cdr),
            "NMS" => Some(TableKind::Nms),
            "CELL" => Some(TableKind::Cell),
            _ => None,
        }
    }
}

/// How the generator populates a non-core ("filler") CDR attribute. The mix
/// of classes is tuned so the per-attribute entropy distribution matches
/// Fig. 4: many attributes at zero entropy, most below 1 bit, a few up to
/// ~5 bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FillerClass {
    /// Optional attribute that is always blank — entropy 0.
    Blank,
    /// Constant literal — entropy 0.
    Zero,
    /// Low-cardinality nominal attribute. `skew` is the probability of the
    /// dominant value; the rest spread uniformly.
    Categorical { cardinality: u32, skew: f64 },
    /// Small integer counter, geometric-ish with a bias toward zero.
    Counter { max: u32, zero_bias: f64 },
}

/// One schema column.
#[derive(Debug, Clone)]
pub struct Column {
    pub name: String,
    /// `Some` for generated filler attributes; `None` for core attributes
    /// the generator fills from the simulation state.
    pub filler: Option<FillerClass>,
}

/// A table schema: ordered named columns.
#[derive(Debug, Clone)]
pub struct Schema {
    pub kind: TableKind,
    pub columns: Vec<Column>,
}

/// Core CDR column indices (the "first 10 of ~200 attributes" of Fig. 3,
/// plus the handful the task workloads T1–T8 touch).
pub mod cdr {
    pub const RECORD_ID: usize = 0;
    pub const CALLER_ID: usize = 1;
    pub const CALLEE_ID: usize = 2;
    pub const CELL_ID: usize = 3;
    pub const TS_START: usize = 4;
    pub const TS_END: usize = 5;
    pub const DURATION_S: usize = 6;
    pub const CALL_TYPE: usize = 7;
    pub const CALL_RESULT: usize = 8;
    pub const UPFLUX: usize = 9;
    pub const DOWNFLUX: usize = 10;
    pub const TECH: usize = 11;
    pub const ROAMING: usize = 12;
    pub const PLAN_CODE: usize = 13;
    pub const BSC_ID: usize = 14;
    pub const LAC: usize = 15;
    pub const BILLING_CLASS: usize = 16;
    pub const MCC_MNC: usize = 17;
    /// First generated filler column.
    pub const FILLER_START: usize = 18;
    /// Total CDR attribute count (~200 per the paper).
    pub const WIDTH: usize = 200;
}

/// NMS column indices (8 attributes, paper Fig. 3/4 center).
pub mod nms {
    pub const TS: usize = 0;
    pub const CELL_ID: usize = 1;
    pub const CALL_ATTEMPTS: usize = 2;
    pub const CALL_DROPS: usize = 3;
    pub const TOTAL_DURATION_S: usize = 4;
    pub const THROUGHPUT_KBPS: usize = 5;
    pub const RSSI_DBM: usize = 6;
    pub const HANDOVER_FAILURES: usize = 7;
    pub const WIDTH: usize = 8;
}

/// CELL column indices (10 attributes, paper Fig. 3/4 right).
pub mod cell {
    pub const CELL_ID: usize = 0;
    pub const ANTENNA_ID: usize = 1;
    pub const X_M: usize = 2;
    pub const Y_M: usize = 3;
    pub const TECH: usize = 4;
    pub const AZIMUTH_DEG: usize = 5;
    pub const RANGE_M: usize = 6;
    pub const CONTROLLER_ID: usize = 7;
    pub const SITE_NAME: usize = 8;
    pub const REGION: usize = 9;
    pub const WIDTH: usize = 10;
}

impl Schema {
    /// The ~200-attribute CDR schema.
    pub fn cdr() -> Self {
        let core = [
            "record_id",
            "caller_id",
            "callee_id",
            "cell_id",
            "ts_start",
            "ts_end",
            "duration_s",
            "call_type",
            "call_result",
            "upflux",
            "downflux",
            "tech",
            "roaming",
            "plan_code",
            "bsc_id",
            "lac",
            "billing_class",
            "mcc_mnc",
        ];
        debug_assert_eq!(core.len(), cdr::FILLER_START);
        let mut columns: Vec<Column> = core
            .iter()
            .map(|&name| Column {
                name: name.to_string(),
                filler: None,
            })
            .collect();
        for i in cdr::FILLER_START..cdr::WIDTH {
            // Class mix per ten columns: 3 blank, 1 constant, 2 binary
            // flags, 2 mid-cardinality nominals, 1 small counter, 1 wide
            // counter — reproducing Fig. 4's entropy histogram shape.
            let filler = match i % 10 {
                0..=2 => FillerClass::Blank,
                3 => FillerClass::Zero,
                4 | 5 => FillerClass::Categorical {
                    cardinality: 2,
                    skew: 0.95,
                },
                6 | 7 => FillerClass::Categorical {
                    cardinality: 6,
                    skew: 0.60,
                },
                8 => FillerClass::Counter {
                    max: 15,
                    zero_bias: 0.5,
                },
                _ => FillerClass::Counter {
                    max: 32,
                    zero_bias: 0.6,
                },
            };
            columns.push(Column {
                name: format!("opt_ctr_{i:03}"),
                filler: Some(filler),
            });
        }
        Self {
            kind: TableKind::Cdr,
            columns,
        }
    }

    /// The 8-attribute NMS schema.
    pub fn nms() -> Self {
        let names = [
            "ts",
            "cell_id",
            "call_attempts",
            "call_drops",
            "total_duration_s",
            "throughput_kbps",
            "rssi_dbm",
            "handover_failures",
        ];
        debug_assert_eq!(names.len(), nms::WIDTH);
        Self {
            kind: TableKind::Nms,
            columns: names
                .iter()
                .map(|&name| Column {
                    name: name.to_string(),
                    filler: None,
                })
                .collect(),
        }
    }

    /// The 10-attribute CELL schema.
    pub fn cell() -> Self {
        let names = [
            "cell_id",
            "antenna_id",
            "x_m",
            "y_m",
            "tech",
            "azimuth_deg",
            "range_m",
            "controller_id",
            "site_name",
            "region",
        ];
        debug_assert_eq!(names.len(), cell::WIDTH);
        Self {
            kind: TableKind::Cell,
            columns: names
                .iter()
                .map(|&name| Column {
                    name: name.to_string(),
                    filler: None,
                })
                .collect(),
        }
    }

    pub fn for_kind(kind: TableKind) -> Self {
        match kind {
            TableKind::Cdr => Self::cdr(),
            TableKind::Nms => Self::nms(),
            TableKind::Cell => Self::cell(),
        }
    }

    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Look up a column index by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn column_name(&self, idx: usize) -> &str {
        &self.columns[idx].name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdr_schema_has_paper_width() {
        let s = Schema::cdr();
        assert_eq!(s.width(), 200);
        assert_eq!(s.kind, TableKind::Cdr);
        // Core columns present at their indices.
        assert_eq!(s.column_index("upflux"), Some(cdr::UPFLUX));
        assert_eq!(s.column_index("downflux"), Some(cdr::DOWNFLUX));
        assert_eq!(s.column_index("cell_id"), Some(cdr::CELL_ID));
        assert_eq!(s.column_index("TS_START"), Some(cdr::TS_START));
        // Fillers carry classes; core columns don't.
        assert!(s.columns[cdr::UPFLUX].filler.is_none());
        assert!(s.columns[cdr::FILLER_START].filler.is_some());
    }

    #[test]
    fn filler_mix_includes_zero_entropy_columns() {
        let s = Schema::cdr();
        let blanks = s
            .columns
            .iter()
            .filter(|c| matches!(c.filler, Some(FillerClass::Blank)))
            .count();
        // ~30% of the filler columns are blank, matching Fig. 4's
        // zero-entropy optional attributes.
        assert!(blanks >= 50, "expected ≥50 blank columns, got {blanks}");
    }

    #[test]
    fn nms_and_cell_widths() {
        assert_eq!(Schema::nms().width(), 8);
        assert_eq!(Schema::cell().width(), 10);
        assert_eq!(
            Schema::nms().column_index("call_drops"),
            Some(nms::CALL_DROPS)
        );
        assert_eq!(Schema::cell().column_index("x_m"), Some(cell::X_M));
    }

    #[test]
    fn table_kind_names_round_trip() {
        for kind in [TableKind::Cdr, TableKind::Nms, TableKind::Cell] {
            assert_eq!(TableKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(TableKind::from_name("cdr"), Some(TableKind::Cdr));
        assert_eq!(TableKind::from_name("bogus"), None);
    }

    #[test]
    fn unique_column_names() {
        for schema in [Schema::cdr(), Schema::nms(), Schema::cell()] {
            let mut names: Vec<&str> = schema.columns.iter().map(|c| c.name.as_str()).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(
                names.len(),
                before,
                "{:?} has duplicate columns",
                schema.kind
            );
        }
    }
}
