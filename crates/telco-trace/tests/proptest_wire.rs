//! Property tests for the snapshot wire format and the civil calendar.

use proptest::prelude::*;
use telco_trace::record::{Record, Value};
use telco_trace::schema::{cdr, nms};
use telco_trace::time::{days_in_month, is_leap, CivilTime, EpochId, EPOCHS_PER_DAY};
use telco_trace::Snapshot;

/// Values that are legal on the wire (no delimiter characters).
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        "[A-Za-z0-9_.-]{1,12}".prop_map(Value::Str),
        any::<i32>().prop_map(|i| Value::Int(i64::from(i))),
        (-1_000_000i32..1_000_000).prop_map(|i| Value::Float(f64::from(i) / 100.0)),
    ]
}

fn arb_row(width: usize) -> impl Strategy<Value = Record> {
    proptest::collection::vec(arb_value(), width).prop_map(Record::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn snapshot_wire_round_trips(
        epoch in 0u32..100_000,
        cdr_rows in proptest::collection::vec(arb_row(cdr::WIDTH), 0..8),
        nms_rows in proptest::collection::vec(arb_row(nms::WIDTH), 0..20),
    ) {
        let snap = Snapshot::new(EpochId(epoch), cdr_rows, nms_rows);
        let bytes = snap.to_bytes();
        let parsed = Snapshot::from_bytes(&bytes).unwrap();
        prop_assert_eq!(parsed.epoch, snap.epoch);
        prop_assert_eq!(parsed.cdr.len(), snap.cdr.len());
        prop_assert_eq!(parsed.nms.len(), snap.nms.len());
        // Canonical form is a fixed point.
        prop_assert_eq!(parsed.to_bytes(), bytes);
    }

    #[test]
    fn snapshot_parse_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = Snapshot::from_bytes(&junk);
    }

    #[test]
    fn civil_time_is_monotone_and_consistent(epoch in 0u32..(20 * 366 * EPOCHS_PER_DAY)) {
        let id = EpochId(epoch);
        let c = id.civil();
        prop_assert!((1..=12).contains(&c.month));
        prop_assert!((1..=days_in_month(c.year, c.month)).contains(&c.day));
        prop_assert!(c.hour < 24 && c.minute < 60);
        // The compact form parses back to the same civil time.
        prop_assert_eq!(CivilTime::parse_compact(&c.compact()), Some(c));
        // Next epoch never goes backwards.
        let n = EpochId(epoch + 1).civil();
        prop_assert!(n >= c, "{c:?} -> {n:?}");
    }

    #[test]
    fn leap_year_days_sum_correctly(year in 1900u32..2400) {
        let days: u32 = (1..=12).map(|m| days_in_month(year, m)).sum();
        prop_assert_eq!(days, if is_leap(year) { 366 } else { 365 });
    }
}
