//! The shared, sharded decompressed-epoch cache of the serving tier.
//!
//! `ExplorerSession` caches decompressed windows *per session*; with many
//! concurrent clients zooming over the same recent epochs that wastes
//! both memory (N copies) and decompression work (N cold starts). The
//! serving tier instead shares one cache of `Arc<Snapshot>` entries,
//! keyed by epoch, across all clients:
//!
//! * **Sharded** — the epoch id picks a shard; each shard is an
//!   independent mutex so concurrent workers rarely contend.
//! * **LRU per shard** — a monotone tick stamps every touch; on overflow
//!   the stalest entry of that shard is evicted.
//! * **Coherent by construction** — a [`CacheInvalidator`] registered as
//!   a [`StoreObserver`] on the framework drops entries synchronously
//!   inside every mutation (ingest / decay / recovery), while that
//!   mutation still holds exclusive access to the framework. Workers
//!   only insert while holding the framework read lock, so a stale entry
//!   can never be re-populated concurrently with the eviction that
//!   removed it.
//! * **Accounting split** — the cache keeps *lifetime* hit/miss totals
//!   (the Stats frame); per-query outcomes flow into the active
//!   [`obs::cost`] profile, and per-epoch outcomes into the temporal
//!   index's heat ledger (`HeatLedger::record_cache`), the single source
//!   of truth for epoch heat.

use spate_core::StoreObserver;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use telco_trace::snapshot::Snapshot;
use telco_trace::time::EpochId;

/// Cache sizing.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    pub shards: usize,
    /// Max entries (epochs) per shard.
    pub capacity_per_shard: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            capacity_per_shard: 16,
        }
    }
}

struct Entry {
    snap: Arc<Snapshot>,
    last_used: u64,
}

struct Shard {
    map: HashMap<u32, Entry>,
    tick: u64,
}

/// Sharded LRU cache of decompressed epochs.
pub struct EpochCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

/// Counter snapshot of cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub evictions: u64,
    pub invalidations: u64,
}

impl CacheStats {
    /// Hit fraction of all lookups in `[0, 1]` (1 when idle).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl EpochCache {
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            capacity_per_shard: config.capacity_per_shard.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn shard(&self, epoch: EpochId) -> &Mutex<Shard> {
        &self.shards[epoch.0 as usize % self.shards.len()]
    }

    /// Look an epoch up, refreshing its recency on hit. Outcomes feed the
    /// active [`obs::cost`] profile (per-query accounting); *per-epoch*
    /// heat accounting lives in the temporal index's heat ledger, written
    /// by the serving paths that know which framework they evaluate
    /// against — the cache itself keeps only lifetime totals.
    pub fn get(&self, epoch: EpochId) -> Option<Arc<Snapshot>> {
        let mut sh = self.shard(epoch).lock().unwrap();
        sh.tick += 1;
        let tick = sh.tick;
        match sh.map.get_mut(&epoch.0) {
            Some(e) => {
                e.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::inc("serve.cache.hit");
                obs::cost::cache_hit();
                Some(e.snap.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                obs::inc("serve.cache.miss");
                obs::cost::cache_miss();
                None
            }
        }
    }

    /// Insert (or refresh) an epoch, evicting the shard's LRU entry on
    /// overflow. Callers must hold the framework read lock — see the
    /// coherence contract in the module docs.
    pub fn insert(&self, epoch: EpochId, snap: Arc<Snapshot>) {
        let mut sh = self.shard(epoch).lock().unwrap();
        sh.tick += 1;
        let tick = sh.tick;
        if sh.map.len() >= self.capacity_per_shard && !sh.map.contains_key(&epoch.0) {
            if let Some(&lru) = sh
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                sh.map.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                obs::inc("serve.cache.evict");
            }
        }
        sh.map.insert(
            epoch.0,
            Entry {
                snap,
                last_used: tick,
            },
        );
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop one epoch (mutation hook).
    pub fn invalidate(&self, epoch: EpochId) {
        let mut sh = self.shard(epoch).lock().unwrap();
        if sh.map.remove(&epoch.0).is_some() {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            obs::inc("serve.cache.invalidate");
        }
    }

    /// Drop many epochs (decay / recovery hook).
    pub fn invalidate_many(&self, epochs: &[EpochId]) {
        for &e in epochs {
            self.invalidate(e);
        }
    }

    /// Number of cached epochs across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

/// [`StoreObserver`] adapter dropping cache entries on every framework
/// mutation. Register on the framework *before* sharing it with workers.
pub struct CacheInvalidator(pub Arc<EpochCache>);

impl StoreObserver for CacheInvalidator {
    fn snapshot_ingested(&self, epoch: EpochId) {
        // A (re-)ingested epoch may shadow an entry cached from an
        // earlier life of that epoch id; drop defensively.
        self.0.invalidate(epoch);
    }

    fn epochs_evicted(&self, epochs: &[EpochId]) {
        self.0.invalidate_many(epochs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telco_trace::{TraceConfig, TraceGenerator};

    fn snaps(n: usize) -> Vec<Arc<Snapshot>> {
        TraceGenerator::new(TraceConfig::scaled(1.0 / 4096.0))
            .take(n)
            .map(Arc::new)
            .collect()
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let cache = EpochCache::new(CacheConfig {
            shards: 1,
            capacity_per_shard: 2,
        });
        let s = snaps(3);
        cache.insert(EpochId(0), s[0].clone());
        cache.insert(EpochId(1), s[1].clone());
        assert!(cache.get(EpochId(0)).is_some());
        // Epoch 1 is now the LRU entry; inserting epoch 2 evicts it.
        cache.insert(EpochId(2), s[2].clone());
        assert!(cache.get(EpochId(1)).is_none());
        assert!(cache.get(EpochId(0)).is_some());
        assert!(cache.get(EpochId(2)).is_some());
        let st = cache.stats();
        assert_eq!(st.evictions, 1);
        assert_eq!(st.hits, 3);
        assert_eq!(st.misses, 1);
    }

    #[test]
    fn invalidation_drops_exactly_the_named_epochs() {
        let cache = EpochCache::new(CacheConfig::default());
        let s = snaps(4);
        for (i, snap) in s.iter().enumerate() {
            cache.insert(EpochId(i as u32), snap.clone());
        }
        cache.invalidate_many(&[EpochId(1), EpochId(3), EpochId(99)]);
        assert!(cache.get(EpochId(0)).is_some());
        assert!(cache.get(EpochId(1)).is_none());
        assert!(cache.get(EpochId(2)).is_some());
        assert!(cache.get(EpochId(3)).is_none());
        assert_eq!(cache.stats().invalidations, 2, "missing epoch not counted");
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = Arc::new(EpochCache::new(CacheConfig::default()));
        let s = snaps(8);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = cache.clone();
                let s = s.clone();
                scope.spawn(move || {
                    for round in 0..50 {
                        let e = EpochId(((t + round) % 8) as u32);
                        match cache.get(e) {
                            Some(hit) => assert_eq!(hit.epoch, e),
                            None => cache.insert(e, s[e.0 as usize].clone()),
                        }
                    }
                });
            }
        });
        let st = cache.stats();
        assert_eq!(st.hits + st.misses, 200);
    }
}
