//! Two-priority admission control with per-client fairness.
//!
//! Interactive exploration queries (short windows, a human waiting) and
//! bulk scans (long windows, SQL over days) share one worker pool. The
//! admission queue keeps the pool from inverting their priorities:
//!
//! * **Two classes, strict priority** — [`Class::Interactive`] is always
//!   served before [`Class::Scan`]; a pile of day-long scans can never
//!   starve a zooming explorer.
//! * **Bounded depth, shed on overflow** — each class has its own depth
//!   bound; a push over the bound is rejected *immediately* with the
//!   current depth, which the server turns into a `Shed` frame the
//!   client can retry on. Queueing unboundedly would just convert
//!   overload into latency.
//! * **Per-client round-robin** — within a class, each client has its
//!   own FIFO lane and lanes are drained round-robin, so one client
//!   pipelining hundreds of requests cannot monopolize the pool.
//!
//! Deadline-based shedding is the *worker's* job (the queue cannot know
//! how long an item sat after pop); items carry their enqueue sequence
//! and the server compares wall-clock age on pop.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Scheduling class of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Short-window, latency-sensitive exploration.
    Interactive,
    /// Long-window bulk work (SQL aggregations, wide scans).
    Scan,
}

impl Class {
    pub fn label(&self) -> &'static str {
        match self {
            Class::Interactive => "interactive",
            Class::Scan => "scan",
        }
    }
}

/// Why a push was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shed {
    /// Depth of the rejected class's queue at rejection time.
    pub queue_depth: u32,
}

/// Per-class depth bounds.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    pub interactive_depth: usize,
    pub scan_depth: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            interactive_depth: 64,
            scan_depth: 16,
        }
    }
}

struct Lane<T> {
    // Client id → that client's FIFO. BTreeMap gives a deterministic
    // round-robin order.
    per_client: BTreeMap<u64, VecDeque<T>>,
    // Last client id served; the next pop starts strictly after it.
    cursor: u64,
    len: usize,
    depth: usize,
}

impl<T> Lane<T> {
    fn new(depth: usize) -> Self {
        Self {
            per_client: BTreeMap::new(),
            cursor: 0,
            len: 0,
            depth,
        }
    }

    fn push(&mut self, client: u64, item: T) -> Result<(), Shed> {
        if self.len >= self.depth {
            return Err(Shed {
                queue_depth: self.len as u32,
            });
        }
        self.per_client.entry(client).or_default().push_back(item);
        self.len += 1;
        Ok(())
    }

    /// Pop from the first non-empty client lane strictly after the
    /// cursor, wrapping — classic round-robin.
    fn pop(&mut self) -> Option<(u64, T)> {
        if self.len == 0 {
            return None;
        }
        let next = self
            .per_client
            .range((
                std::ops::Bound::Excluded(self.cursor),
                std::ops::Bound::Unbounded,
            ))
            .next()
            .map(|(&c, _)| c)
            .or_else(|| self.per_client.keys().next().copied())?;
        let lane = self.per_client.get_mut(&next)?;
        let item = lane.pop_front()?;
        if lane.is_empty() {
            self.per_client.remove(&next);
        }
        self.len -= 1;
        self.cursor = next;
        Some((next, item))
    }
}

/// The two-class bounded admission queue.
pub struct AdmissionQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    admitted: AtomicU64,
    shed: AtomicU64,
}

struct State<T> {
    interactive: Lane<T>,
    scan: Lane<T>,
    closed: bool,
}

impl<T> AdmissionQueue<T> {
    pub fn new(config: AdmissionConfig) -> Self {
        Self {
            state: Mutex::new(State {
                interactive: Lane::new(config.interactive_depth.max(1)),
                scan: Lane::new(config.scan_depth.max(1)),
                closed: false,
            }),
            available: Condvar::new(),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Try to admit an item. Rejects immediately (never blocks) when the
    /// class is at depth or the queue is shut down.
    pub fn push(&self, client: u64, class: Class, item: T) -> Result<(), Shed> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err(Shed { queue_depth: 0 });
        }
        let lane = match class {
            Class::Interactive => &mut st.interactive,
            Class::Scan => &mut st.scan,
        };
        match lane.push(client, item) {
            Ok(()) => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
                let depth = (st.interactive.len + st.scan.len) as i64;
                obs::gauge_set("serve.queue.depth", depth);
                self.available.notify_one();
                Ok(())
            }
            Err(shed) => {
                self.shed.fetch_add(1, Ordering::Relaxed);
                obs::inc("serve.queue.shed");
                Err(shed)
            }
        }
    }

    /// Blocking pop: interactive first, then scan, round-robin over
    /// clients within the class. `None` once the queue is closed *and*
    /// drained (graceful shutdown finishes admitted work).
    pub fn pop(&self) -> Option<(u64, Class, T)> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some((client, item)) = st.interactive.pop() {
                obs::gauge_set(
                    "serve.queue.depth",
                    (st.interactive.len + st.scan.len) as i64,
                );
                return Some((client, Class::Interactive, item));
            }
            if let Some((client, item)) = st.scan.pop() {
                obs::gauge_set(
                    "serve.queue.depth",
                    (st.interactive.len + st.scan.len) as i64,
                );
                return Some((client, Class::Scan, item));
            }
            if st.closed {
                return None;
            }
            st = self.available.wait(st).unwrap();
        }
    }

    /// Current combined depth (for `Shed` frames and gauges).
    pub fn depth(&self) -> usize {
        let st = self.state.lock().unwrap();
        st.interactive.len + st.scan.len
    }

    /// Per-class depths `(interactive, scan)` for introspection frames.
    pub fn depths(&self) -> (usize, usize) {
        let st = self.state.lock().unwrap();
        (st.interactive.len, st.scan.len)
    }

    /// Stop admitting; wake all poppers so workers can drain and exit.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        self.available.notify_all();
    }

    /// (admitted, shed) totals so far.
    pub fn totals(&self) -> (u64, u64) {
        (
            self.admitted.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interactive_preempts_scan() {
        let q = AdmissionQueue::new(AdmissionConfig::default());
        q.push(1, Class::Scan, "s1").unwrap();
        q.push(1, Class::Scan, "s2").unwrap();
        q.push(2, Class::Interactive, "i1").unwrap();
        let (_, class, item) = q.pop().unwrap();
        assert_eq!((class, item), (Class::Interactive, "i1"));
        let (_, class, _) = q.pop().unwrap();
        assert_eq!(class, Class::Scan);
    }

    #[test]
    fn round_robin_across_clients_within_a_class() {
        let q = AdmissionQueue::new(AdmissionConfig::default());
        // Client 1 floods; client 2 submits one item.
        for i in 0..5 {
            q.push(1, Class::Interactive, format!("c1-{i}")).unwrap();
        }
        q.push(2, Class::Interactive, "c2-0".to_string()).unwrap();
        let order: Vec<u64> = (0..6).map(|_| q.pop().unwrap().0).collect();
        // Client 2 is served second, not sixth.
        assert_eq!(order[..3], [1, 2, 1], "{order:?}");
    }

    #[test]
    fn overflow_sheds_immediately_with_depth() {
        let q = AdmissionQueue::new(AdmissionConfig {
            interactive_depth: 2,
            scan_depth: 1,
        });
        q.push(1, Class::Interactive, 0).unwrap();
        q.push(1, Class::Interactive, 1).unwrap();
        assert_eq!(
            q.push(1, Class::Interactive, 2),
            Err(Shed { queue_depth: 2 })
        );
        // Scan class has its own independent bound.
        q.push(1, Class::Scan, 3).unwrap();
        assert_eq!(q.push(1, Class::Scan, 4), Err(Shed { queue_depth: 1 }));
        assert_eq!(q.totals(), (3, 2));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = AdmissionQueue::new(AdmissionConfig::default());
        q.push(1, Class::Scan, "tail").unwrap();
        q.close();
        assert!(q.push(1, Class::Scan, "late").is_err());
        assert_eq!(q.pop().map(|(_, _, i)| i), Some("tail"));
        assert_eq!(q.pop().map(|(_, _, i)| i), None);
    }

    #[test]
    fn blocked_poppers_wake_on_push_and_close() {
        let q = std::sync::Arc::new(AdmissionQueue::new(AdmissionConfig::default()));
        let popper = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some((_, _, item)) = q.pop() {
                    got.push(item);
                }
                got
            })
        };
        q.push(7, Class::Interactive, 1).unwrap();
        q.push(7, Class::Scan, 2).unwrap();
        // Give the popper a moment to drain, then close.
        while q.depth() > 0 {
            std::thread::yield_now();
        }
        q.close();
        assert_eq!(popper.join().unwrap(), vec![1, 2]);
    }
}
