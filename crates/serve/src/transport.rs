//! In-process duplex byte transport.
//!
//! The serving tier is hermetic: instead of TCP sockets it speaks the
//! frame protocol over a pair of bounded in-memory byte pipes (one per
//! direction), built from `std::sync` primitives only. The essential
//! socket-like properties are preserved:
//!
//! * **Byte stream, not message queue** — frames are flattened to bytes
//!   and reassembled by header parsing, so the protocol's truncation and
//!   length-bound handling is actually exercised.
//! * **Backpressure** — each direction holds at most [`PIPE_CAPACITY`]
//!   buffered bytes; a writer outrunning a slow reader blocks, which is
//!   what bounds the memory of streaming a huge result.
//! * **Frame-atomic writes** — one frame is appended under one lock
//!   acquisition, so several server workers may answer pipelined
//!   requests over the same connection without interleaving bytes
//!   *within* a frame (frames of different request ids may interleave;
//!   ids disambiguate).

use crate::proto::{FrameHeader, ProtoError, Request, Response, HEADER_LEN};
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Per-direction buffer bound in bytes.
pub const PIPE_CAPACITY: usize = 1 << 20;

/// Transport failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer closed; no further bytes will arrive (clean at a frame
    /// boundary) — or the send side found the pipe closed.
    Closed,
    /// The peer closed mid-frame, or a malformed frame arrived.
    Proto(ProtoError),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Closed => write!(f, "connection closed"),
            TransportError::Proto(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<ProtoError> for TransportError {
    fn from(e: ProtoError) -> Self {
        TransportError::Proto(e)
    }
}

struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

/// One direction of the duplex channel.
struct Pipe {
    state: Mutex<PipeState>,
    readable: Condvar,
    writable: Condvar,
}

impl Pipe {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(PipeState {
                buf: VecDeque::new(),
                closed: false,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        })
    }

    /// Append `bytes` atomically, blocking while the pipe is over
    /// capacity. Oversize single frames are still written whole once the
    /// buffer drains below capacity (capacity is a soft high-water mark,
    /// not a hard bound, so a frame is never split across lock drops).
    fn write_all(&self, bytes: &[u8]) -> Result<(), TransportError> {
        let mut st = self.state.lock().unwrap();
        while st.buf.len() >= PIPE_CAPACITY && !st.closed {
            st = self.writable.wait(st).unwrap();
        }
        if st.closed {
            return Err(TransportError::Closed);
        }
        st.buf.extend(bytes);
        self.readable.notify_all();
        Ok(())
    }

    /// Read exactly `n` bytes, blocking until available. `Ok(None)` means
    /// the pipe closed cleanly before the first byte; a close mid-read is
    /// a truncation error.
    fn read_exact(&self, n: usize) -> Result<Option<Vec<u8>>, TransportError> {
        let mut out = Vec::with_capacity(n);
        let mut st = self.state.lock().unwrap();
        while out.len() < n {
            while st.buf.is_empty() && !st.closed {
                st = self.readable.wait(st).unwrap();
            }
            if st.buf.is_empty() {
                // Closed and drained.
                if out.is_empty() {
                    return Ok(None);
                }
                return Err(TransportError::Proto(ProtoError::Truncated));
            }
            while out.len() < n {
                match st.buf.pop_front() {
                    Some(b) => out.push(b),
                    None => break,
                }
            }
            self.writable.notify_all();
        }
        Ok(Some(out))
    }

    fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        self.readable.notify_all();
        self.writable.notify_all();
    }
}

/// One end of a duplex connection. Cloning shares the same two pipes, so
/// multiple worker threads can send over one connection safely.
#[derive(Clone)]
pub struct Endpoint {
    tx: Arc<Pipe>,
    rx: Arc<Pipe>,
}

/// Create a connected pair of endpoints.
pub fn duplex() -> (Endpoint, Endpoint) {
    let a_to_b = Pipe::new();
    let b_to_a = Pipe::new();
    (
        Endpoint {
            tx: a_to_b.clone(),
            rx: b_to_a.clone(),
        },
        Endpoint {
            tx: b_to_a,
            rx: a_to_b,
        },
    )
}

impl Endpoint {
    /// Send one already-encoded frame.
    pub fn send_bytes(&self, frame: &[u8]) -> Result<(), TransportError> {
        self.tx.write_all(frame)
    }

    pub fn send_request(&self, req: &Request) -> Result<(), TransportError> {
        self.send_bytes(&req.encode())
    }

    pub fn send_response(&self, resp: &Response) -> Result<(), TransportError> {
        self.send_bytes(&resp.encode())
    }

    /// Receive one raw frame: header first (validated, bounding the
    /// payload length before allocation), then the payload. `Ok(None)`
    /// on clean close.
    pub fn recv_frame(&self) -> Result<Option<(u8, Vec<u8>)>, TransportError> {
        let Some(head) = self.rx.read_exact(HEADER_LEN)? else {
            return Ok(None);
        };
        let header: [u8; HEADER_LEN] = head.try_into().expect("read_exact length");
        let h = FrameHeader::parse(&header)?;
        if h.payload_len == 0 {
            return Ok(Some((h.kind, Vec::new())));
        }
        match self.rx.read_exact(h.payload_len)? {
            Some(payload) => Ok(Some((h.kind, payload))),
            None => Err(TransportError::Proto(ProtoError::Truncated)),
        }
    }

    /// Receive and decode one request frame; `Ok(None)` on clean close.
    pub fn recv_request(&self) -> Result<Option<Request>, TransportError> {
        match self.recv_frame()? {
            Some((kind, payload)) => Ok(Some(Request::decode(kind, &payload)?)),
            None => Ok(None),
        }
    }

    /// Receive and decode one response frame; `Ok(None)` on clean close.
    pub fn recv_response(&self) -> Result<Option<Response>, TransportError> {
        match self.recv_frame()? {
            Some((kind, payload)) => Ok(Some(Response::decode(kind, &payload)?)),
            None => Ok(None),
        }
    }

    /// Close the outbound direction; the peer's reads drain then end.
    /// Also wakes our own blocked reads via the peer's close when both
    /// sides call it.
    pub fn close(&self) {
        self.tx.close();
    }

    /// Close both directions (abort).
    pub fn close_both(&self) {
        self.tx.close();
        self.rx.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{RequestBody, ResponseBody};

    #[test]
    fn frames_cross_the_duplex_channel() {
        let (client, server) = duplex();
        let req = Request {
            id: 42,
            body: RequestBody::Sql {
                window: (0, 3),
                sql: "SELECT COUNT(*) FROM CDR".into(),
                deadline_ms: 0,
            },
        };
        client.send_request(&req).unwrap();
        assert_eq!(server.recv_request().unwrap().unwrap(), req);

        let resp = Response {
            id: 42,
            body: ResponseBody::Done { rows: 7 },
        };
        server.send_response(&resp).unwrap();
        assert_eq!(client.recv_response().unwrap().unwrap(), resp);
    }

    #[test]
    fn clean_close_yields_none_midframe_close_errors() {
        let (client, server) = duplex();
        client.close();
        assert_eq!(server.recv_request().unwrap(), None);

        let (client, server) = duplex();
        let frame = Request {
            id: 1,
            body: RequestBody::Sql {
                window: (0, 0),
                sql: "SELECT 1".into(),
                deadline_ms: 0,
            },
        }
        .encode();
        // Half a frame, then hang up.
        client.send_bytes(&frame[..frame.len() / 2]).unwrap();
        client.close();
        assert!(matches!(
            server.recv_request(),
            Err(TransportError::Proto(ProtoError::Truncated))
        ));
    }

    #[test]
    fn concurrent_senders_never_interleave_within_a_frame() {
        let (client, server) = duplex();
        let n_threads = 4;
        let frames_each = 50;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let server = server.clone();
                s.spawn(move || {
                    for i in 0..frames_each {
                        let resp = Response {
                            id: (t * 1000 + i) as u64,
                            body: ResponseBody::Done { rows: i as u64 },
                        };
                        server.send_response(&resp).unwrap();
                    }
                });
            }
            s.spawn(|| {
                // Every frame must decode — any byte-level interleaving
                // would corrupt the stream immediately.
                let mut seen = 0;
                while seen < n_threads * frames_each {
                    let resp = client.recv_response().unwrap().expect("early close");
                    assert!(matches!(resp.body, ResponseBody::Done { .. }));
                    seen += 1;
                }
            });
        });
    }

    #[test]
    fn backpressure_blocks_then_drains() {
        let (client, server) = duplex();
        let big = vec![0xAB; 100_000];
        let writer = std::thread::spawn(move || {
            for _ in 0..20 {
                // 2 MB total, twice the pipe capacity: must block until
                // the reader drains.
                server
                    .send_response(&Response {
                        id: 0,
                        body: ResponseBody::Error {
                            code: 0,
                            message: String::from_utf8(big.iter().map(|_| b'x').collect()).unwrap(),
                        },
                    })
                    .unwrap();
            }
            server.close();
        });
        let mut n = 0;
        while let Some(resp) = client.recv_response().unwrap() {
            assert!(matches!(resp.body, ResponseBody::Error { .. }));
            n += 1;
        }
        assert_eq!(n, 20);
        writer.join().unwrap();
    }
}
